"""Setup shim so that editable installs work offline (no wheel package)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of SLaDe: A Portable Small Language Model Decompiler "
        "for Optimized Assembly (CGO 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
