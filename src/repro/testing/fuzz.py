"""Differential fuzzing CLI: ``python -m repro.testing.fuzz``.

Generates seeded random Mini-C programs, runs each through the four-way
oracle (interpreter / optimised IR / native -O0 / native -O3) and, on the
first divergence, minimises the failing program with the delta-debugging
reducer and prints a ready-to-commit reproducer.

Throughput machinery (all verdict-preserving):

* **Batched native execution** (default): cases are evaluated in batches of
  ``--batch-size`` through :meth:`Oracle.check_batch`, which compiles each
  batch into one translation unit per native leg — O(legs) toolchain
  invocations per batch instead of O(cases x legs).
* **Fork-server execution** (default): each batch leg runs as one
  persistent process that ``fork()``s per (case, input) pair, so traps
  cost a dead child instead of a process relaunch and clean pairs never
  re-exec.  ``--no-fork-server`` restores the one-subprocess-per-leg
  path, kept as the byte-identical parity reference; ``--no-batch``
  restores the original one-case-at-a-time path.
* **Compile-while-execute pipelining**: native builds are launched
  asynchronously and joined only when their outcomes are needed, and the
  batched loop prepares batch N+1 (generate, lower, launch builds) before
  draining batch N, so the compiler runs under the Python front half and
  the executing servers.
* **Parallel evaluation**: ``--jobs N`` shards the case indices round-robin
  across N worker processes.  Each case's verdict depends only on its seed,
  so results are aggregated deterministically by case index regardless of
  worker scheduling.

Static/dynamic analysis legs (see :mod:`repro.analysis`):

* The **IR verifier** runs on every case by default, after lowering and
  after each -O3 pass, before any differential leg executes; a violation
  is a first-class ``ir-verifier`` divergence with a pass-attributed
  diagnostic (``--no-verify-ir`` disables it).
* ``--sanitize`` adds the report-only UBSan-instrumented C leg; its
  reports surface as ``sanitizer`` divergences.
* ``--inject-ir-miscompile`` drops the first re-extension cast from the
  lowered IR — the IR-level analogue of ``--inject-miscompile`` — which
  the verifier must catch *before* the differential legs run.
* ``--json-report PATH`` writes a machine-readable campaign report whose
  failures carry their category (``io`` / ``ir-verifier`` / ``sanitizer``
  / ``build-error``).

Typical invocations::

    python -m repro.testing.fuzz --seed 0 --count 500
    python -m repro.testing.fuzz --seed 0 --count 500 --jobs 4
    python -m repro.testing.fuzz --seed 3 --count 50 --max-stmts 6 --backend none
    python -m repro.testing.fuzz --seed 0 --count 20 --inject-miscompile
    python -m repro.testing.fuzz --seed 0 --count 20 --inject-ir-miscompile
    python -m repro.testing.fuzz --seed 0 --count 100 --sanitize --json-report out.json

Exit status is 0 when every case agreed on every substrate, 1 when a
divergence was found (or a leg failed to build).
"""

from __future__ import annotations

import argparse
import multiprocessing
import sys
import time
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.testing.generator import GeneratedCase, ProgramGenerator
from repro.testing.oracle import Oracle, OracleError
from repro.testing.reduce import oracle_interestingness, reduce_case

#: Offset that decorrelates per-case generator seeds from the base seed.
_SEED_STRIDE = 1 << 20


def case_seed(base_seed: int, index: int) -> int:
    """The deterministic per-case seed for case ``index`` of a run."""
    return base_seed * _SEED_STRIDE + index


def strip_cltd(assembly: str) -> str:
    """Deliberate miscompile: drop the first ``cltd`` (the sign extension of
    ``%eax`` into ``%edx`` that must precede ``idivl``), leaving whatever
    garbage ``%edx`` holds to corrupt the quotient."""
    lines = assembly.splitlines()
    for index, line in enumerate(lines):
        if line.strip() == "cltd":
            del lines[index]
            break
    return "\n".join(lines) + "\n"


def strip_reextension(ir_func) -> None:
    """Deliberate IR-level miscompile: replace the first width cast with a
    plain move, silently dropping the re-extension the typed-invariant
    discipline requires.  The IR verifier must refuse the function before
    any differential leg runs (the pass label in the diagnostic reads
    ``inject:strip_reextension``)."""
    from repro.compiler import ir

    for index, instr in enumerate(ir_func.instrs):
        if isinstance(instr, ir.IRCast) and instr.kind in ir.WIDTH_CASTS:
            ir_func.instrs[index] = ir.IRMove(instr.dst, instr.src)
            return


@dataclass(frozen=True)
class FuzzConfig:
    """Picklable campaign configuration (shared with worker processes)."""

    backends: Tuple[str, ...] = ("x86",)
    inject_miscompile: bool = False
    require_native: bool = False
    max_stmts: int = 12
    batch_size: int = 32
    use_batch: bool = True
    verify_ir: bool = True
    inject_ir_miscompile: bool = False
    sanitize: bool = False
    fork_server: bool = True


@dataclass
class CaseResult:
    """One case's verdict, independent of evaluation order or sharding."""

    index: int
    seed: int
    status: str  # "ok" | "divergence" | "build-error"
    detail: str = ""
    #: Failure taxonomy: "" for ok, "io" / "ir-verifier" / "sanitizer" for
    #: divergences, "build-error" for legs that could not be built.
    category: str = ""

    @property
    def failed(self) -> bool:
        return self.status != "ok"


def build_oracle(config: FuzzConfig) -> Oracle:
    return Oracle(
        backends=list(config.backends),
        asm_transform=strip_cltd if config.inject_miscompile else None,
        require_native=config.require_native,
        verify_ir=config.verify_ir,
        ir_transform=strip_reextension if config.inject_ir_miscompile else None,
        sanitize=config.sanitize,
        fork_server=config.fork_server,
    )


def generate(config: FuzzConfig, base_seed: int, index: int) -> GeneratedCase:
    return ProgramGenerator(
        case_seed(base_seed, index), max_stmts=config.max_stmts
    ).generate()


def evaluate_cases(
    oracle: Oracle, config: FuzzConfig, base_seed: int, indices: Sequence[int]
) -> List[CaseResult]:
    """Evaluate the given case indices (batched unless disabled)."""
    results: List[CaseResult] = []
    if not config.use_batch:
        for index in indices:
            case = generate(config, base_seed, index)
            seed = case_seed(base_seed, index)
            try:
                divergence = oracle.check_case(case.source, case.name, case.inputs)
            except Exception as exc:  # build failures are findings, not crashes
                results.append(
                    CaseResult(index, seed, "build-error", str(exc), "build-error")
                )
                continue
            if divergence is None:
                results.append(CaseResult(index, seed, "ok"))
            else:
                results.append(
                    CaseResult(
                        index,
                        seed,
                        "divergence",
                        divergence.describe(),
                        divergence.category,
                    )
                )
        return results

    for chunk_results in iter_batched_results(oracle, config, base_seed, indices):
        results.extend(chunk_results)
    return results


def _chunk_results(
    chunk: Sequence[int], verdicts, base_seed: int
) -> List[CaseResult]:
    results: List[CaseResult] = []
    for index, verdict in zip(chunk, verdicts):
        seed = case_seed(base_seed, index)
        if verdict is None:
            results.append(CaseResult(index, seed, "ok"))
        elif isinstance(verdict, Exception):
            results.append(
                CaseResult(index, seed, "build-error", str(verdict), "build-error")
            )
        else:
            results.append(
                CaseResult(
                    index, seed, "divergence", verdict.describe(), verdict.category
                )
            )
    return results


def iter_batched_results(
    oracle: Oracle, config: FuzzConfig, base_seed: int, indices: Sequence[int]
):
    """Yield each batch's results with one-batch lookahead.

    Batch N+1 is *prepared* (generated, lowered, native builds launched,
    reference legs run) before batch N is drained, so N+1's compilers run
    underneath N's native execution — the cross-batch half of the
    compile-while-execute pipeline.
    """
    pending: Optional[Tuple[List[int], Any]] = None
    try:
        for start in range(0, len(indices), config.batch_size):
            chunk = list(indices[start : start + config.batch_size])
            cases = [generate(config, base_seed, index) for index in chunk]
            prepared = oracle.prepare_batch(cases)
            if pending is not None:
                done_chunk, done_prepared = pending
                pending = None
                yield _chunk_results(
                    done_chunk, oracle.finish_batch(done_prepared), base_seed
                )
            pending = (chunk, prepared)
        if pending is not None:
            done_chunk, done_prepared = pending
            pending = None
            yield _chunk_results(
                done_chunk, oracle.finish_batch(done_prepared), base_seed
            )
    finally:
        # A consumer that stops early (first divergence) leaves one batch
        # prepared but never drained; reap its background compilers.
        if pending is not None:
            for batch, _ in pending[1].batches.values():
                batch.abandon()


def _campaign_worker(payload) -> List[CaseResult]:
    config, base_seed, indices = payload
    return evaluate_cases(build_oracle(config), config, base_seed, indices)


def run_campaign(
    config: FuzzConfig,
    base_seed: int,
    count: int,
    jobs: int = 1,
    oracle: Optional[Oracle] = None,
) -> List[CaseResult]:
    """Evaluate ``count`` cases and return per-case results sorted by index.

    With ``jobs > 1`` the indices are striped round-robin over a process
    pool; every case's verdict depends only on its seed, so the aggregated
    result list is byte-identical to a single-process run.
    """
    indices = list(range(count))
    if jobs <= 1:
        working_oracle = oracle if oracle is not None else build_oracle(config)
        return evaluate_cases(working_oracle, config, base_seed, indices)
    shards = [indices[worker::jobs] for worker in range(jobs)]
    payloads = [(config, base_seed, shard) for shard in shards if shard]
    with multiprocessing.Pool(processes=len(payloads)) as pool:
        shard_results = pool.map(_campaign_worker, payloads)
    results = [result for shard in shard_results for result in shard]
    results.sort(key=lambda result: result.index)
    return results


def _report_failure(
    result: CaseResult, case: GeneratedCase, oracle: Oracle, args: argparse.Namespace
) -> None:
    if result.status == "build-error":
        print(
            f"\ncase {result.index} (seed {result.seed}): "
            f"leg failed to build: {result.detail}"
        )
        print(case.source)
        return
    print(f"\ncase {result.index} (seed {result.seed}) DIVERGES:")
    print(result.detail)
    print("--- program ---")
    print(case.source)
    if args.no_reduce:
        return
    if result.category not in ("", "io"):
        # Verifier violations and sanitizer reports already carry their own
        # attribution (pass label / source location); the delta reducer only
        # adds value for observable IO mismatches.
        return
    print("--- reducing ---")
    predicate = oracle_interestingness(oracle, case.name)
    reduced = reduce_case(
        case.source,
        case.name,
        case.inputs,
        predicate,
        max_attempts=args.reduce_attempts,
    )
    final = oracle.check_case(reduced.source, case.name, reduced.inputs)
    print(
        f"reduced after {reduced.attempts} attempts "
        f"({reduced.accepted} accepted edits) to "
        f"{len(reduced.source.strip().splitlines())} lines:"
    )
    print(reduced.source)
    print(f"inputs: {reduced.inputs!r}")
    if final is not None:
        print(final.describe())


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.fuzz",
        description="Property-based differential fuzzing of the Mini-C substrates.",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
    parser.add_argument("--count", type=int, default=100, help="number of programs")
    parser.add_argument(
        "--max-stmts", type=int, default=12, help="statement budget per program"
    )
    parser.add_argument(
        "--backend",
        choices=("x86", "arm", "both", "none"),
        default="x86",
        help="native legs to run (default x86; 'none' keeps interp vs IR only)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; case indices are sharded round-robin and "
        "results aggregated deterministically by index (default 1)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=32,
        help="cases per native batch build (default 32)",
    )
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="evaluate one case per native build/run (the pre-batching path; "
        "slower, used as the parity reference)",
    )
    parser.add_argument(
        "--no-fork-server",
        action="store_true",
        help="run batches through the one-subprocess-per-leg harness instead "
        "of the persistent fork server (the byte-identical parity reference)",
    )
    parser.add_argument(
        "--require-native",
        action="store_true",
        help="fail instead of silently dropping unavailable native toolchains",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="keep fuzzing after a divergence instead of stopping at the first",
    )
    parser.add_argument(
        "--no-reduce",
        action="store_true",
        help="report divergences without minimising them",
    )
    parser.add_argument(
        "--reduce-attempts",
        type=int,
        default=600,
        help="oracle-invocation budget for the reducer (default 600)",
    )
    parser.add_argument(
        "--inject-miscompile",
        action="store_true",
        help="strip the first cltd from the x86 output (harness self-test: "
        "the oracle must catch and reduce the resulting miscompile)",
    )
    parser.add_argument(
        "--inject-ir-miscompile",
        action="store_true",
        help="replace the first re-extension cast in the lowered IR with a "
        "move (verifier self-test: caught before any differential leg runs)",
    )
    parser.add_argument(
        "--no-verify-ir",
        action="store_true",
        help="skip the IR verifier (on by default after lowering and after "
        "every -O3 pass)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="add the report-only UBSan-instrumented C leg (needs host gcc); "
        "reports surface as 'sanitizer' divergences",
    )
    parser.add_argument(
        "--json-report",
        metavar="PATH",
        help="write a machine-readable campaign report (failures carry their "
        "category: io / ir-verifier / sanitizer / build-error)",
    )
    args = parser.parse_args(argv)

    if args.inject_ir_miscompile and args.no_verify_ir:
        print(
            "error: --inject-ir-miscompile tests the IR verifier and is "
            "meaningless with --no-verify-ir",
            file=sys.stderr,
        )
        return 2

    backends: Tuple[str, ...]
    if args.backend == "none":
        backends = ()
    elif args.backend == "both":
        backends = ("x86", "arm")
    else:
        backends = (args.backend,)
    config = FuzzConfig(
        backends=backends,
        inject_miscompile=args.inject_miscompile,
        require_native=args.require_native,
        max_stmts=args.max_stmts,
        batch_size=max(1, args.batch_size),
        use_batch=not args.no_batch,
        verify_ir=not args.no_verify_ir,
        inject_ir_miscompile=args.inject_ir_miscompile,
        sanitize=args.sanitize,
        fork_server=not args.no_fork_server,
    )

    try:
        oracle = build_oracle(config)
    except OracleError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"legs: {', '.join(oracle.legs())}")
    if len(oracle.legs()) < 2:
        print(
            "error: fewer than two legs available; nothing to compare", file=sys.stderr
        )
        return 2
    if args.inject_miscompile and "x86-O0" not in oracle.legs():
        # The injected bug lives in x86 assembly; without that leg the
        # self-test would silently test nothing and report success.
        print(
            "error: --inject-miscompile needs the x86 native leg "
            "(use --backend x86/both on an x86-64 host with gcc)",
            file=sys.stderr,
        )
        return 2
    if args.sanitize and oracle.sanitizer_config is None:
        print(
            "error: --sanitize needs the host gcc toolchain "
            "(the instrumented leg compiles each case's source as C)",
            file=sys.stderr,
        )
        return 2

    started = time.time()
    failures = 0
    checked = 0
    failed_results: List[CaseResult] = []

    if args.jobs > 1:
        # Parallel: evaluate everything, then report in deterministic order.
        results = run_campaign(config, args.seed, args.count, jobs=args.jobs)
        checked = len(results)
        for result in results:
            if not result.failed:
                continue
            failures += 1
            failed_results.append(result)
            _report_failure(
                result, generate(config, args.seed, result.index), oracle, args
            )
            if not args.keep_going:
                break
    else:
        # Sequential: evaluate in chunks so a failure can stop the run early.
        # The batched iterator keeps one batch in flight ahead of the one
        # being drained (its builds compile in the background); stopping
        # early just abandons that lookahead batch.
        if config.use_batch:
            result_chunks = iter_batched_results(
                oracle, config, args.seed, list(range(args.count))
            )
        else:
            result_chunks = (
                evaluate_cases(oracle, config, args.seed, [index])
                for index in range(args.count)
            )
        last_progress = 0
        for results in result_chunks:
            checked += len(results)
            stop = False
            for result in results:
                if not result.failed:
                    continue
                failures += 1
                failed_results.append(result)
                _report_failure(
                    result, generate(config, args.seed, result.index), oracle, args
                )
                if not args.keep_going:
                    stop = True
                    break
            if stop:
                break
            # Progress roughly every 25 cases (and at the end), independent
            # of chunk size and of earlier --keep-going failures.
            if checked - last_progress >= 25 or checked >= args.count:
                rate = checked / max(1e-9, time.time() - started)
                label = "ok" if not failures else "checked"
                print(f"  {checked}/{args.count} cases {label} ({rate:.1f}/s)")
                last_progress = checked

    elapsed = time.time() - started
    if args.json_report:
        import json
        from dataclasses import asdict
        from pathlib import Path

        by_category: dict = {}
        for result in failed_results:
            by_category[result.category] = by_category.get(result.category, 0) + 1
        report = {
            "seed": args.seed,
            "count": args.count,
            "checked": checked,
            "elapsed_seconds": round(elapsed, 3),
            "legs": oracle.legs(),
            "config": asdict(config),
            "failures": [asdict(result) for result in failed_results],
            "failures_by_category": by_category,
        }
        Path(args.json_report).write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written to {args.json_report}")
    if failures:
        print(f"\n{failures} diverging case(s) out of {checked} in {elapsed:.1f}s")
        return 1
    print(f"\nall {checked} cases agree on every leg ({elapsed:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
