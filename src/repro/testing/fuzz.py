"""Differential fuzzing CLI: ``python -m repro.testing.fuzz``.

Generates seeded random Mini-C programs, runs each through the four-way
oracle (interpreter / optimised IR / native -O0 / native -O3) and, on the
first divergence, minimises the failing program with the delta-debugging
reducer and prints a ready-to-commit reproducer.

Typical invocations::

    python -m repro.testing.fuzz --seed 0 --count 500
    python -m repro.testing.fuzz --seed 3 --count 50 --max-stmts 6 --backend none
    python -m repro.testing.fuzz --seed 0 --count 20 --inject-miscompile

Exit status is 0 when every case agreed on every substrate, 1 when a
divergence was found (or a leg failed to build).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.testing.generator import ProgramGenerator
from repro.testing.oracle import Oracle, OracleError
from repro.testing.reduce import oracle_interestingness, reduce_case

#: Offset that decorrelates per-case generator seeds from the base seed.
_SEED_STRIDE = 1 << 20


def case_seed(base_seed: int, index: int) -> int:
    """The deterministic per-case seed for case ``index`` of a run."""
    return base_seed * _SEED_STRIDE + index


def strip_cltd(assembly: str) -> str:
    """Deliberate miscompile: drop the first ``cltd`` (the sign extension of
    ``%eax`` into ``%edx`` that must precede ``idivl``), leaving whatever
    garbage ``%edx`` holds to corrupt the quotient."""
    lines = assembly.splitlines()
    for index, line in enumerate(lines):
        if line.strip() == "cltd":
            del lines[index]
            break
    return "\n".join(lines) + "\n"


def _build_oracle(args: argparse.Namespace) -> Oracle:
    backends: List[str]
    if args.backend == "none":
        backends = []
    elif args.backend == "both":
        backends = ["x86", "arm"]
    else:
        backends = [args.backend]
    asm_transform = strip_cltd if args.inject_miscompile else None
    return Oracle(
        backends=backends,
        asm_transform=asm_transform,
        require_native=args.require_native,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing.fuzz",
        description="Property-based differential fuzzing of the Mini-C substrates.",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
    parser.add_argument("--count", type=int, default=100, help="number of programs")
    parser.add_argument(
        "--max-stmts", type=int, default=12, help="statement budget per program"
    )
    parser.add_argument(
        "--backend",
        choices=("x86", "arm", "both", "none"),
        default="x86",
        help="native legs to run (default x86; 'none' keeps interp vs IR only)",
    )
    parser.add_argument(
        "--require-native",
        action="store_true",
        help="fail instead of silently dropping unavailable native toolchains",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="keep fuzzing after a divergence instead of stopping at the first",
    )
    parser.add_argument(
        "--no-reduce",
        action="store_true",
        help="report divergences without minimising them",
    )
    parser.add_argument(
        "--reduce-attempts",
        type=int,
        default=600,
        help="oracle-invocation budget for the reducer (default 600)",
    )
    parser.add_argument(
        "--inject-miscompile",
        action="store_true",
        help="strip the first cltd from the x86 output (harness self-test: "
        "the oracle must catch and reduce the resulting miscompile)",
    )
    args = parser.parse_args(argv)

    try:
        oracle = _build_oracle(args)
    except OracleError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"legs: {', '.join(oracle.legs())}")
    if len(oracle.legs()) < 2:
        print("error: fewer than two legs available; nothing to compare", file=sys.stderr)
        return 2
    if args.inject_miscompile and "x86-O0" not in oracle.legs():
        # The injected bug lives in x86 assembly; without that leg the
        # self-test would silently test nothing and report success.
        print(
            "error: --inject-miscompile needs the x86 native leg "
            "(use --backend x86/both on an x86-64 host with gcc)",
            file=sys.stderr,
        )
        return 2

    started = time.time()
    failures = 0
    checked = 0
    for index in range(args.count):
        checked = index + 1
        seed = case_seed(args.seed, index)
        case = ProgramGenerator(seed, max_stmts=args.max_stmts).generate()
        try:
            divergence = oracle.check_case(case.source, case.name, case.inputs)
        except Exception as exc:  # build failures are findings, not crashes
            failures += 1
            print(f"\ncase {index} (seed {seed}): leg failed to build: {exc}")
            print(case.source)
            if not args.keep_going:
                break
            continue
        if divergence is None:
            if (index + 1) % 25 == 0:
                rate = (index + 1) / (time.time() - started)
                print(f"  {index + 1}/{args.count} cases ok ({rate:.1f}/s)")
            continue

        failures += 1
        print(f"\ncase {index} (seed {seed}) DIVERGES:")
        print(divergence.describe())
        print("--- program ---")
        print(case.source)
        if not args.no_reduce:
            print("--- reducing ---")
            predicate = oracle_interestingness(oracle, case.name)
            result = reduce_case(
                case.source,
                case.name,
                case.inputs,
                predicate,
                max_attempts=args.reduce_attempts,
            )
            final = oracle.check_case(result.source, case.name, result.inputs)
            print(
                f"reduced after {result.attempts} attempts "
                f"({result.accepted} accepted edits) to "
                f"{len(result.source.strip().splitlines())} lines:"
            )
            print(result.source)
            print(f"inputs: {result.inputs!r}")
            if final is not None:
                print(final.describe())
        if not args.keep_going:
            break

    elapsed = time.time() - started
    if failures:
        print(f"\n{failures} diverging case(s) out of {checked} in {elapsed:.1f}s")
        return 1
    print(f"\nall {checked} cases agree on every leg ({elapsed:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
