"""Four-way differential oracle for Mini-C programs.

One case (program, entry point, argument vectors) is executed on up to four
independent substrates and the first observable divergence is reported:

* ``interp``   — the reference: :class:`repro.lang.interpreter.Interpreter`;
* ``ir-O3``    — the lowered, -O3-optimised IR executed directly
                 (:mod:`repro.testing.irexec`), pinning down the middle end
                 including the IR constant folder;
* ``x86-O0`` / ``x86-O3`` — the compiled assembly assembled with the system
                 GNU toolchain and executed natively on the host via
                 :mod:`repro.testing.native` (skipped when no toolchain);
* ``arm-O0`` / ``arm-O3`` — optionally, the AArch64 output under
                 ``qemu-aarch64`` with a cross toolchain.

Observable state is the paper's IO-equivalence notion: return value,
final contents of pointer arguments, and final global values.  A runtime
trap (division by zero, step-budget exhaustion, SIGFPE) is itself an
observation: every leg must trap for the comparison to pass.

Each case's front half (parse → typecheck → lower) runs **once** and is
shared by every leg and every input vector (:class:`CaseContext`).
:meth:`Oracle.check_batch` goes further and executes the native legs of a
whole batch of cases through :class:`repro.testing.native.NativeBatch` —
one toolchain invocation and one subprocess per leg instead of per case —
which is where the fuzz pipeline's throughput comes from.  Verdicts are
identical between :meth:`check_case` and :meth:`check_batch` by
construction: both feed the same per-(case, input) observations through
the same comparison.
"""

from __future__ import annotations

import math
import subprocess
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.sanitize import SanitizerBatch, SanitizerConfig
from repro.analysis.verifier import IRVerificationError
from repro.lang.interpreter import CInterpreterError, RuntimeLimitExceeded
from repro.testing import native
from repro.testing.frontend import CaseContext
from repro.testing.irexec import IRExecutor


def values_equal(left: Any, right: Any) -> bool:
    """Structural equality with float tolerance."""
    if isinstance(left, float) or isinstance(right, float):
        return math.isclose(float(left), float(right), rel_tol=1e-9, abs_tol=1e-9)
    if isinstance(left, list) and isinstance(right, list):
        return len(left) == len(right) and all(
            values_equal(a, b) for a, b in zip(left, right)
        )
    if isinstance(left, dict) and isinstance(right, dict):
        return left.keys() == right.keys() and all(
            values_equal(left[k], right[k]) for k in left
        )
    return left == right


@dataclass
class LegOutcome:
    """What one substrate observed for one argument vector.

    ``trap`` is a semantic observation (division by zero, SIGFPE) that every
    leg must share; ``limit`` is resource exhaustion (step budget, execution
    timeout) and renders the input inconclusive rather than divergent — the
    substrates meter work in incomparable units.
    """

    leg: str
    status: str  # "ok" | "trap" | "limit" | "error"
    detail: str = ""
    return_value: Any = None
    arg_values: List[Any] = field(default_factory=list)
    globals: Dict[str, Any] = field(default_factory=dict)

    def summary(self) -> str:
        if self.status != "ok":
            return f"{self.leg}: {self.status} ({self.detail})"
        return (
            f"{self.leg}: ret={self.return_value!r} "
            f"args={self.arg_values!r} globals={self.globals!r}"
        )


@dataclass
class Divergence:
    """The first observed disagreement between two legs on one input.

    ``category`` distinguishes the three first-class failure kinds the
    harness reports: ``"io"`` (the classic observable-state mismatch),
    ``"ir-verifier"`` (a typed-invariant violation caught *before* any leg
    executed — ``diverging_leg`` names the offending pass and ``detail``
    carries the pass-attributed diagnostics) and ``"sanitizer"`` (UBSan/
    ASan reports from the instrumented C leg, in ``detail``).  The latter
    two have no per-input outcomes (``input_index`` is -1).
    """

    source: str
    name: str
    inputs: List[Tuple]
    input_index: int
    reference_leg: str
    diverging_leg: str
    field: str  # "status" | "return_value" | "arg_values" | "globals"
    outcomes: List[LegOutcome]
    category: str = "io"  # "io" | "ir-verifier" | "sanitizer"
    detail: str = ""

    def describe(self) -> str:
        if self.category == "ir-verifier":
            lines = [
                f"IR invariant violation in {self.name} "
                f"(caught before execution, after {self.diverging_leg}):"
            ]
            lines.extend("  " + line for line in self.detail.splitlines())
            return "\n".join(lines)
        if self.category == "sanitizer":
            lines = [f"sanitizer report for {self.name}:"]
            lines.extend("  " + line for line in self.detail.splitlines())
            return "\n".join(lines)
        lines = [
            f"divergence on input #{self.input_index} "
            f"{self.inputs[self.input_index]!r}: "
            f"{self.diverging_leg} disagrees with {self.reference_leg} on {self.field}",
        ]
        for outcome in self.outcomes:
            lines.append("  " + outcome.summary())
        return "\n".join(lines)


class OracleError(Exception):
    """Raised when a leg cannot be built at all (infrastructure failure)."""


#: One case handed to :meth:`Oracle.check_batch`: anything exposing
#: ``source``, ``name`` and ``inputs`` (e.g. the generator's GeneratedCase).
CaseLike = Any

#: What check_batch records per case: clean (None), a Divergence, or the
#: exception a leg raised while building.
CaseVerdict = Union[None, Divergence, Exception]


@dataclass
class PreparedBatch:
    """In-flight state between :meth:`Oracle.prepare_batch` and
    :meth:`Oracle.finish_batch`: native builds are compiling in the
    background and the pure-Python reference legs have already run."""

    cases: List[CaseLike]
    contexts: List[Optional[CaseContext]]
    verdicts: List[CaseVerdict]
    active: List[int]
    batches: Dict[str, Tuple["native.NativeBatch", Dict[Tuple[int, str], int]]]
    reference: Dict[int, List[List["LegOutcome"]]]
    fallback: bool = False


class Oracle:
    """Differential harness comparing the available substrates.

    ``backends`` selects the native legs: any subset of ``("x86", "arm")``.
    Unavailable toolchains are dropped automatically (``require_native=True``
    turns that into an error instead).  ``asm_transform`` rewrites the
    generated assembly before it is assembled — used to prove the harness
    catches deliberately injected miscompiles.

    ``verify_ir`` (on by default) runs the typed-invariant verifier of
    :mod:`repro.analysis.verifier` after lowering and after every -O3 pass
    of each case, *before* any leg executes; a violation is reported as a
    first-class :class:`Divergence` with ``category="ir-verifier"``.
    ``ir_transform`` mutates the lowered IR first — the IR-level analogue
    of ``asm_transform``, used to prove the verifier catches injected
    breakage.  ``sanitize`` adds the report-only UBSan/ASan C leg of
    :mod:`repro.analysis.sanitize` (requires the x86 toolchain); pass
    ``True`` for the default config or a :class:`SanitizerConfig`.
    ``fork_server`` selects the batched execution strategy: the default
    fork-server harness, or (``False``) the one-subprocess-per-leg path
    kept as the byte-identical parity reference.
    """

    def __init__(
        self,
        backends: Sequence[str] = ("x86",),
        workdir: Optional[Path] = None,
        asm_transform: Optional[Callable[[str], str]] = None,
        require_native: bool = False,
        include_ir_leg: bool = True,
        verify_ir: bool = True,
        ir_transform=None,
        sanitize: Union[bool, SanitizerConfig, None] = None,
        fork_server: bool = True,
    ) -> None:
        self.asm_transform = asm_transform
        self.fork_server = fork_server
        self.include_ir_leg = include_ir_leg
        self.verify_ir = verify_ir
        self.ir_transform = ir_transform
        self.sanitizer_config: Optional[SanitizerConfig] = None
        if sanitize:
            self.sanitizer_config = (
                sanitize if isinstance(sanitize, SanitizerConfig) else SanitizerConfig()
            )
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        if workdir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="minic-fuzz-")
            workdir = Path(self._tmp.name)
        self.workdir = Path(workdir)
        self._batch_counter = 0
        self.native_backends: List[str] = []
        for backend in [b for b in backends if b]:
            available = (
                native.have_native_toolchain()
                if backend == "x86"
                else native.have_arm_toolchain()
            )
            if available:
                self.native_backends.append(backend)
            elif require_native:
                raise OracleError(f"no toolchain for the {backend!r} backend")
        if self.sanitizer_config is not None and not native.have_native_toolchain():
            if require_native:
                raise OracleError("no host toolchain for the sanitizer leg")
            self.sanitizer_config = None

    def legs(self) -> List[str]:
        names = ["interp"]
        if self.include_ir_leg:
            names.append("ir-O3")
        for backend in self.native_backends:
            names.extend([f"{backend}-O0", f"{backend}-O3"])
        return names

    # -- static gate (IR verifier) --------------------------------------------

    def _make_context(self, source: str, name: str, **kwargs) -> CaseContext:
        return CaseContext(
            source,
            name,
            verify_ir=self.verify_ir,
            ir_transform=self.ir_transform,
            **kwargs,
        )

    def _verifier_divergence(
        self, source: str, name: str, inputs: List[Tuple], exc: IRVerificationError
    ) -> Divergence:
        return Divergence(
            source,
            name,
            list(inputs),
            -1,
            "ir-verifier",
            exc.pass_name,
            "invariant",
            [],
            category="ir-verifier",
            detail=str(exc),
        )

    def _verify_context(
        self, context: CaseContext, inputs: List[Tuple]
    ) -> Optional[Divergence]:
        """Force both lowerings so the verifier runs before any leg does.

        Returns the pass-attributed verdict for a broken middle end; all
        other build errors propagate unchanged (the legs would have raised
        them anyway, just later).
        """
        if not (self.verify_ir or self.ir_transform is not None):
            return None
        try:
            context.lowered("O0")
            context.lowered("O3")
        except IRVerificationError as exc:
            return self._verifier_divergence(
                context.source, context.name, inputs, exc
            )
        return None

    # -- sanitizer leg ---------------------------------------------------------

    def _sanitize_cases(
        self, entries: List[Tuple[CaseContext, List[Tuple]]]
    ) -> Dict[int, Divergence]:
        """Run the instrumented C leg over clean cases; verdicts by position.

        ``entries`` holds (context, inputs) pairs; the returned dict maps
        positions in that list to ``category="sanitizer"`` divergences.
        Raises :class:`OracleError` when the instrumented binary itself is
        broken (build failure, death outside any case).
        """
        if self.sanitizer_config is None or not entries:
            return {}
        batch_cases = [
            native.BatchCase(
                source=context.source,
                name=context.name,
                inputs=list(inputs),
                context=context,
            )
            for context, inputs in entries
        ]
        self._batch_counter += 1
        try:
            batch = SanitizerBatch(
                batch_cases,
                self.workdir,
                self.sanitizer_config,
                tag=f"san{self._batch_counter}",
            )
            by_case = batch.reports_by_case()
        except native.BatchExecutionError as exc:
            raise OracleError(f"sanitizer leg failed: {exc}") from exc
        verdicts: Dict[int, Divergence] = {}
        for position, reports in by_case.items():
            context, inputs = entries[position]
            verdicts[position] = Divergence(
                context.source,
                context.name,
                list(inputs),
                -1,
                "interp",
                "sanitizer",
                "report",
                [],
                category="sanitizer",
                detail="\n".join(str(report) for report in reports),
            )
        return verdicts

    # -- leg execution --------------------------------------------------------

    def _run_interp(self, context: CaseContext, args: Tuple) -> LegOutcome:
        try:
            result = context.interpreter().run_function(context.name, args)
        except RuntimeLimitExceeded as exc:
            return LegOutcome("interp", "limit", str(exc))
        except CInterpreterError as exc:
            return LegOutcome("interp", "trap", str(exc))
        return LegOutcome(
            "interp", "ok", "", result.return_value, result.arg_values, result.globals
        )

    def _run_ir(self, context: CaseContext, args: Tuple) -> LegOutcome:
        try:
            result = IRExecutor(
                context.program,
                opt_level="O3",
                lowering_cache=context.ir_cache(),
                checker=context.checker,
            ).run_function(context.name, args)
        except RuntimeLimitExceeded as exc:
            return LegOutcome("ir-O3", "limit", str(exc))
        except CInterpreterError as exc:
            return LegOutcome("ir-O3", "trap", str(exc))
        return LegOutcome(
            "ir-O3", "ok", "", result.return_value, result.arg_values, result.globals
        )

    def _build_native(
        self, context: CaseContext, inputs: List[Tuple], backend: str, opt: str
    ) -> native.NativeFunction:
        return native.NativeFunction(
            context.source,
            context.name,
            inputs,
            opt,
            self.workdir,
            isa=backend,
            asm_transform=self.asm_transform,
            context=context,
        )

    def _run_native(self, native_fn, leg: str, index: int) -> LegOutcome:
        try:
            result = native_fn.run(index)
        except subprocess.CalledProcessError as exc:
            return LegOutcome(leg, "trap", f"exit status {exc.returncode}")
        except subprocess.TimeoutExpired:
            return LegOutcome(leg, "limit", "execution timeout")
        return LegOutcome(
            leg, "ok", "", result.return_value, result.arg_values, result.globals
        )

    @staticmethod
    def _batch_outcome_to_leg(outcome: Tuple[str, Any], leg: str) -> LegOutcome:
        status, payload = outcome
        if status == "ok":
            return LegOutcome(
                leg, "ok", "", payload.return_value, payload.arg_values, payload.globals
            )
        return LegOutcome(leg, status, payload)

    # -- comparison -----------------------------------------------------------

    @staticmethod
    def _compare(reference: LegOutcome, other: LegOutcome) -> Optional[str]:
        """The first field the two outcomes disagree on, or None."""
        if reference.status == "limit" or other.status == "limit":
            # Budget exhaustion on either side: inconclusive, not divergent
            # (substrates meter work in different units, so one hitting its
            # budget while another finishes proves nothing).
            return None
        if reference.status != other.status:
            return "status"
        if reference.status != "ok":
            return None  # both trapped: equivalent observation
        if reference.return_value is not None and not values_equal(
            reference.return_value, other.return_value
        ):
            return "return_value"
        if not values_equal(reference.arg_values, other.arg_values):
            return "arg_values"
        # Native legs only observe globals that appear in the assembly;
        # compare the keys both sides report.
        common = reference.globals.keys() & other.globals.keys()
        for key in sorted(common):
            if not values_equal(reference.globals[key], other.globals[key]):
                return "globals"
        return None

    def _reference_outcomes(
        self, context: CaseContext, args: Tuple
    ) -> List[LegOutcome]:
        outcomes = [self._run_interp(context, args)]
        if self.include_ir_leg:
            outcomes.append(self._run_ir(context, args))
        return outcomes

    def _first_divergence(
        self,
        context: CaseContext,
        inputs: List[Tuple],
        native_outcomes: Callable[[int], List[LegOutcome]],
        reference_legs: Optional[List[List[LegOutcome]]] = None,
    ) -> Optional[Divergence]:
        """Run the reference legs per input, splice in the native outcomes,
        and report the first divergence — shared by the per-case and the
        batched paths so their verdicts cannot drift.  ``reference_legs``
        passes pre-computed interpreter/IR outcomes (the batched path runs
        them while the native builds compile in the background); the
        comparison itself is identical either way.
        """
        for index in range(len(inputs)):
            if reference_legs is not None:
                outcomes = list(reference_legs[index])
            else:
                outcomes = self._reference_outcomes(context, inputs[index])
            outcomes.extend(native_outcomes(index))
            reference = outcomes[0]
            for other in outcomes[1:]:
                mismatch = self._compare(reference, other)
                if mismatch is not None:
                    return Divergence(
                        context.source,
                        context.name,
                        inputs,
                        index,
                        reference.leg,
                        other.leg,
                        mismatch,
                        outcomes,
                    )
        return None

    def check_case(
        self, source: str, name: str, inputs: List[Tuple]
    ) -> Optional[Divergence]:
        """Run every leg on every input vector; report the first divergence.

        Raises :class:`repro.compiler.CompileError` (or assembler errors as
        :class:`OracleError`) when a leg cannot be built — the caller decides
        whether that is interesting.
        """
        inputs = list(inputs)
        # The front half (parse, typecheck, lowering) runs once per case and
        # is shared by every leg and every input vector.
        context = self._make_context(source, name)
        verifier_verdict = self._verify_context(context, inputs)
        if verifier_verdict is not None:
            return verifier_verdict
        natives: Dict[str, native.NativeFunction] = {}
        for backend in self.native_backends:
            for opt in ("O0", "O3"):
                try:
                    natives[f"{backend}-{opt}"] = self._build_native(
                        context, inputs, backend, opt
                    )
                except subprocess.CalledProcessError as exc:
                    stderr = (exc.stderr or b"").decode("utf-8", "replace")[-2000:]
                    raise OracleError(
                        f"native build failed for {backend}-{opt}: {stderr}"
                    ) from exc

        def native_outcomes(index: int) -> List[LegOutcome]:
            return [
                self._run_native(native_fn, leg, index)
                for leg, native_fn in natives.items()
            ]

        divergence = self._first_divergence(context, inputs, native_outcomes)
        if divergence is None:
            divergence = self._sanitize_cases([(context, inputs)]).get(0)
        return divergence

    # -- batched evaluation ----------------------------------------------------

    def check_batch(self, cases: Sequence[CaseLike]) -> List[CaseVerdict]:
        """Evaluate many cases with one native build/run per leg.

        Returns one verdict per case, in order: ``None`` (all legs agree),
        a :class:`Divergence`, or the exception raised while building one of
        the case's legs.  Verdicts are identical to running
        :meth:`check_case` on each case individually; if the combined batch
        binary cannot be built or dies outside any case, the batch falls
        back to exactly that per-case path.

        Internally this is :meth:`prepare_batch` + :meth:`finish_batch`;
        callers that have a next batch ready can call them separately to
        pipeline one batch's native builds under the next batch's Python
        front half.
        """
        return self.finish_batch(self.prepare_batch(cases))

    def prepare_batch(self, cases: Sequence[CaseLike]) -> PreparedBatch:
        """Front half of :meth:`check_batch`: parse, verify, lower and emit
        every case, launch the native builds asynchronously, and run the
        pure-Python reference legs while those builds compile."""
        contexts: List[Optional[CaseContext]] = []
        verdicts: List[CaseVerdict] = []
        for case in cases:
            try:
                context = self._make_context(
                    case.source,
                    case.name,
                    program=getattr(case, "program", None),
                    checker=getattr(case, "checker", None),
                )
            except Exception as exc:  # unparseable case: per-case verdict
                context = None
                verdicts.append(exc)
            else:
                verdicts.append(None)
            contexts.append(context)

        # The static gate runs before any leg is built: a case whose IR
        # breaks an invariant gets its pass-attributed divergence here and
        # never reaches the differential legs.
        for index, context in enumerate(contexts):
            if context is None or verdicts[index] is not None:
                continue
            try:
                verdict = self._verify_context(context, list(cases[index].inputs))
            except Exception as exc:  # lowering itself failed: build error
                verdicts[index] = exc
            else:
                if verdict is not None:
                    verdicts[index] = verdict

        # Compile every native leg of every case up front; a case whose
        # assembly cannot be built gets its exception as the verdict and
        # drops out of the batch (matching check_case, where the same
        # exception propagates to the caller per case).
        assemblies: Dict[Tuple[int, str, str], str] = {}
        for index, context in enumerate(contexts):
            if context is None or verdicts[index] is not None:
                continue
            try:
                for backend in self.native_backends:
                    for opt in ("O0", "O3"):
                        assemblies[(index, backend, opt)] = context.assembly(
                            backend, opt
                        )
            except IRVerificationError as exc:
                verdicts[index] = self._verifier_divergence(
                    cases[index].source,
                    cases[index].name,
                    list(cases[index].inputs),
                    exc,
                )
            except Exception as exc:
                verdicts[index] = exc

        active = [
            index
            for index in range(len(contexts))
            if contexts[index] is not None and verdicts[index] is None
        ]

        # One batch binary per backend holds BOTH opt levels (entries are
        # interleaved per case), halving the build/run subprocesses again.
        # Constructing a NativeBatch only *launches* its build — every
        # backend's compiler runs concurrently in the background from here.
        prepared = PreparedBatch(list(cases), contexts, verdicts, active, {}, {})
        try:
            for backend in self.native_backends:
                batch_cases: List[native.BatchCase] = []
                position: Dict[Tuple[int, str], int] = {}
                for index in active:
                    for opt in ("O0", "O3"):
                        position[(index, opt)] = len(batch_cases)
                        batch_cases.append(
                            native.BatchCase(
                                source=cases[index].source,
                                name=cases[index].name,
                                inputs=list(cases[index].inputs),
                                context=contexts[index],
                                assembly=assemblies[(index, backend, opt)],
                            )
                        )
                self._batch_counter += 1
                batch = native.NativeBatch(
                    batch_cases,
                    "mix",
                    self.workdir,
                    isa=backend,
                    asm_transform=self.asm_transform,
                    tag=f"batch{self._batch_counter}",
                    fork_server=self.fork_server,
                )
                prepared.batches[backend] = (batch, position)
        except (
            subprocess.CalledProcessError,  # cached control-loop object build
            subprocess.TimeoutExpired,
            OSError,
        ):
            # Whole-batch infrastructure failure: fall back to the per-case
            # path, which attributes build problems to the right case.
            prepared.fallback = True
            return prepared

        # The pure-Python reference legs run while the native builds
        # compile — this is the compile-while-execute pipeline.
        for index in active:
            context = contexts[index]
            assert context is not None
            prepared.reference[index] = [
                self._reference_outcomes(context, args)
                for args in list(cases[index].inputs)
            ]
        return prepared

    def finish_batch(self, prepared: PreparedBatch) -> List[CaseVerdict]:
        """Back half of :meth:`check_batch`: join the native builds, stream
        every (case, input) pair through the batch executors, compare, and
        run the sanitizer leg over the still-clean cases."""
        cases = prepared.cases
        contexts = prepared.contexts
        verdicts = prepared.verdicts
        if not prepared.fallback:
            try:
                for batch, _ in prepared.batches.values():
                    batch.ensure_built()
            except (
                subprocess.CalledProcessError,
                subprocess.TimeoutExpired,  # the batch build itself can time out
                native.BatchExecutionError,
                OSError,
            ):
                prepared.fallback = True
        if prepared.fallback:
            return self._check_batch_fallback(cases, verdicts)

        for index in prepared.active:
            context = contexts[index]
            assert context is not None
            inputs = list(cases[index].inputs)

            def native_outcomes(input_index: int, index=index) -> List[LegOutcome]:
                outcomes = []
                for backend in self.native_backends:
                    batch, position = prepared.batches[backend]
                    for opt in ("O0", "O3"):
                        outcomes.append(
                            self._batch_outcome_to_leg(
                                batch.outcome(position[(index, opt)], input_index),
                                f"{backend}-{opt}",
                            )
                        )
                return outcomes

            try:
                verdicts[index] = self._first_divergence(
                    context,
                    inputs,
                    native_outcomes,
                    reference_legs=prepared.reference[index],
                )
            except native.BatchExecutionError:
                verdicts[index] = self.check_case(
                    cases[index].source, cases[index].name, inputs
                )

        # Instrumented C leg, last: report-only, so IO divergences keep
        # precedence and only still-clean cases are submitted.
        if self.sanitizer_config is not None:
            clean = [index for index in prepared.active if verdicts[index] is None]
            entries = []
            for index in clean:
                context = contexts[index]
                assert context is not None
                entries.append((context, list(cases[index].inputs)))
            for position, verdict in self._sanitize_cases(entries).items():
                verdicts[clean[position]] = verdict
        return verdicts

    def _check_batch_fallback(
        self, cases: Sequence[CaseLike], verdicts: List[CaseVerdict]
    ) -> List[CaseVerdict]:
        for index, case in enumerate(cases):
            if verdicts[index] is not None:
                continue
            try:
                verdicts[index] = self.check_case(
                    case.source, case.name, list(case.inputs)
                )
            except Exception as exc:
                verdicts[index] = exc
        return verdicts
