"""Four-way differential oracle for Mini-C programs.

One case (program, entry point, argument vectors) is executed on up to four
independent substrates and the first observable divergence is reported:

* ``interp``   — the reference: :class:`repro.lang.interpreter.Interpreter`;
* ``ir-O3``    — the lowered, -O3-optimised IR executed directly
                 (:mod:`repro.testing.irexec`), pinning down the middle end
                 including the IR constant folder;
* ``x86-O0`` / ``x86-O3`` — the compiled assembly assembled with the system
                 GNU toolchain and executed natively on the host via
                 ``tests/native_runner.py`` (skipped when no toolchain);
* ``arm-O0`` / ``arm-O3`` — optionally, the AArch64 output under
                 ``qemu-aarch64`` with a cross toolchain.

Observable state is the paper's IO-equivalence notion: return value,
final contents of pointer arguments, and final global values.  A runtime
trap (division by zero, step-budget exhaustion, SIGFPE) is itself an
observation: every leg must trap for the comparison to pass.
"""

from __future__ import annotations

import math
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.lang.interpreter import CInterpreterError, Interpreter, RuntimeLimitExceeded
from repro.lang.parser import parse_program
from repro.testing.irexec import IRExecutor


def values_equal(left: Any, right: Any) -> bool:
    """Structural equality with float tolerance."""
    if isinstance(left, float) or isinstance(right, float):
        return math.isclose(float(left), float(right), rel_tol=1e-9, abs_tol=1e-9)
    if isinstance(left, list) and isinstance(right, list):
        return len(left) == len(right) and all(
            values_equal(a, b) for a, b in zip(left, right)
        )
    if isinstance(left, dict) and isinstance(right, dict):
        return left.keys() == right.keys() and all(
            values_equal(left[k], right[k]) for k in left
        )
    return left == right


def _native_runner():
    """Import ``tests/native_runner.py`` (adding the repo's tests/ dir if
    needed — the testing package lives in src/, the native harness with the
    test suite)."""
    try:
        import native_runner  # type: ignore[import-not-found]
    except ImportError:
        tests_dir = Path(__file__).resolve().parents[3] / "tests"
        if tests_dir.is_dir() and str(tests_dir) not in sys.path:
            sys.path.append(str(tests_dir))
        import native_runner  # type: ignore[import-not-found]
    return native_runner


@dataclass
class LegOutcome:
    """What one substrate observed for one argument vector.

    ``trap`` is a semantic observation (division by zero, SIGFPE) that every
    leg must share; ``limit`` is resource exhaustion (step budget, execution
    timeout) and renders the input inconclusive rather than divergent — the
    substrates meter work in incomparable units.
    """

    leg: str
    status: str  # "ok" | "trap" | "limit" | "error"
    detail: str = ""
    return_value: Any = None
    arg_values: List[Any] = field(default_factory=list)
    globals: Dict[str, Any] = field(default_factory=dict)

    def summary(self) -> str:
        if self.status != "ok":
            return f"{self.leg}: {self.status} ({self.detail})"
        return f"{self.leg}: ret={self.return_value!r} args={self.arg_values!r} globals={self.globals!r}"


@dataclass
class Divergence:
    """The first observed disagreement between two legs on one input."""

    source: str
    name: str
    inputs: List[Tuple]
    input_index: int
    reference_leg: str
    diverging_leg: str
    field: str  # "status" | "return_value" | "arg_values" | "globals"
    outcomes: List[LegOutcome]

    def describe(self) -> str:
        lines = [
            f"divergence on input #{self.input_index} "
            f"{self.inputs[self.input_index]!r}: "
            f"{self.diverging_leg} disagrees with {self.reference_leg} on {self.field}",
        ]
        for outcome in self.outcomes:
            lines.append("  " + outcome.summary())
        return "\n".join(lines)


class OracleError(Exception):
    """Raised when a leg cannot be built at all (infrastructure failure)."""


class Oracle:
    """Differential harness comparing the available substrates.

    ``backends`` selects the native legs: any subset of ``("x86", "arm")``.
    Unavailable toolchains are dropped automatically (``require_native=True``
    turns that into an error instead).  ``asm_transform`` rewrites the
    generated assembly before it is assembled — used to prove the harness
    catches deliberately injected miscompiles.
    """

    def __init__(
        self,
        backends: Sequence[str] = ("x86",),
        workdir: Optional[Path] = None,
        asm_transform: Optional[Callable[[str], str]] = None,
        require_native: bool = False,
        include_ir_leg: bool = True,
    ) -> None:
        self.asm_transform = asm_transform
        self.include_ir_leg = include_ir_leg
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        if workdir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="minic-fuzz-")
            workdir = Path(self._tmp.name)
        self.workdir = Path(workdir)
        self.native_backends: List[str] = []
        self._runner = None
        wanted = [b for b in backends if b]
        if wanted:
            try:
                runner = _native_runner()
            except ImportError:
                runner = None
                if require_native:
                    raise OracleError("tests/native_runner.py is not importable")
            if runner is not None:
                self._runner = runner
                for backend in wanted:
                    available = (
                        runner.have_native_toolchain()
                        if backend == "x86"
                        else runner.have_arm_toolchain()
                    )
                    if available:
                        self.native_backends.append(backend)
                    elif require_native:
                        raise OracleError(f"no toolchain for the {backend!r} backend")

    def legs(self) -> List[str]:
        names = ["interp"]
        if self.include_ir_leg:
            names.append("ir-O3")
        for backend in self.native_backends:
            names.extend([f"{backend}-O0", f"{backend}-O3"])
        return names

    # -- leg execution --------------------------------------------------------

    def _run_interp(self, program, name: str, args: Tuple) -> LegOutcome:
        try:
            result = Interpreter(program).run_function(name, args)
        except RuntimeLimitExceeded as exc:
            return LegOutcome("interp", "limit", str(exc))
        except CInterpreterError as exc:
            return LegOutcome("interp", "trap", str(exc))
        return LegOutcome(
            "interp", "ok", "", result.return_value, result.arg_values, result.globals
        )

    def _run_ir(self, program, name: str, args: Tuple, lowering_cache: Dict) -> LegOutcome:
        try:
            result = IRExecutor(
                program, opt_level="O3", lowering_cache=lowering_cache
            ).run_function(name, args)
        except RuntimeLimitExceeded as exc:
            return LegOutcome("ir-O3", "limit", str(exc))
        except CInterpreterError as exc:
            return LegOutcome("ir-O3", "trap", str(exc))
        return LegOutcome(
            "ir-O3", "ok", "", result.return_value, result.arg_values, result.globals
        )

    def _build_native(self, source: str, name: str, inputs: List[Tuple], backend: str, opt: str):
        assert self._runner is not None
        return self._runner.NativeFunction(
            source,
            name,
            inputs,
            opt,
            self.workdir,
            isa=backend,
            asm_transform=self.asm_transform,
        )

    def _run_native(self, native, leg: str, index: int) -> LegOutcome:
        try:
            result = native.run(index)
        except subprocess.CalledProcessError as exc:
            return LegOutcome(leg, "trap", f"exit status {exc.returncode}")
        except subprocess.TimeoutExpired:
            return LegOutcome(leg, "limit", "execution timeout")
        return LegOutcome(
            leg, "ok", "", result.return_value, result.arg_values, result.globals
        )

    # -- comparison -----------------------------------------------------------

    @staticmethod
    def _compare(reference: LegOutcome, other: LegOutcome) -> Optional[str]:
        """The first field the two outcomes disagree on, or None."""
        if reference.status == "limit" or other.status == "limit":
            # Budget exhaustion on either side: inconclusive, not divergent
            # (substrates meter work in different units, so one hitting its
            # budget while another finishes proves nothing).
            return None
        if reference.status != other.status:
            return "status"
        if reference.status != "ok":
            return None  # both trapped: equivalent observation
        if reference.return_value is not None and not values_equal(
            reference.return_value, other.return_value
        ):
            return "return_value"
        if not values_equal(reference.arg_values, other.arg_values):
            return "arg_values"
        # Native legs only observe globals that appear in the assembly;
        # compare the keys both sides report.
        common = reference.globals.keys() & other.globals.keys()
        for key in sorted(common):
            if not values_equal(reference.globals[key], other.globals[key]):
                return "globals"
        return None

    def check_case(
        self, source: str, name: str, inputs: List[Tuple]
    ) -> Optional[Divergence]:
        """Run every leg on every input vector; report the first divergence.

        Raises :class:`repro.compiler.CompileError` (or assembler errors as
        :class:`OracleError`) when a leg cannot be built — the caller decides
        whether that is interesting.
        """
        inputs = list(inputs)
        # Parse once per case; interpreter/IR executors are rebuilt per
        # input (each needs fresh global state) but share the AST and one
        # lowering cache, so the middle end runs once per case, not per
        # input vector.
        program = parse_program(source)
        lowering_cache: Dict = {}
        natives: Dict[str, Any] = {}
        for backend in self.native_backends:
            for opt in ("O0", "O3"):
                try:
                    natives[f"{backend}-{opt}"] = self._build_native(
                        source, name, inputs, backend, opt
                    )
                except subprocess.CalledProcessError as exc:
                    stderr = (exc.stderr or b"").decode("utf-8", "replace")[-2000:]
                    raise OracleError(
                        f"native build failed for {backend}-{opt}: {stderr}"
                    ) from exc

        for index in range(len(inputs)):
            outcomes = [self._run_interp(program, name, inputs[index])]
            if self.include_ir_leg:
                outcomes.append(self._run_ir(program, name, inputs[index], lowering_cache))
            for leg, native in natives.items():
                outcomes.append(self._run_native(native, leg, index))
            reference = outcomes[0]
            for other in outcomes[1:]:
                mismatch = self._compare(reference, other)
                if mismatch is not None:
                    return Divergence(
                        source,
                        name,
                        inputs,
                        index,
                        reference.leg,
                        other.leg,
                        mismatch,
                        outcomes,
                    )
        return None
