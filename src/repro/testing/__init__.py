"""Property-based differential testing for the Mini-C substrates.

This package is the reproduction's analogue of the paper's evaluation loop:
SLaDe judges decompilations by IO equivalence against the binary, so the
equivalence machinery itself (interpreter, compiler, native execution) must
agree on every program it can ever be shown.  The fuzzer generates random
well-typed Mini-C programs, runs them through four independent substrates
and reports the first observable divergence:

* :mod:`repro.testing.generator` — seeded, size-bounded random program and
  argument-vector sampler, emitted through the real printer and re-checked
  by the real parser/type checker;
* :mod:`repro.testing.irexec` — a direct executor for the compiler's IR,
  exercising lowering and the -O3 IR optimiser (constant folder, copy
  propagation, strength reduction, DCE) without any backend;
* :mod:`repro.testing.oracle` — the four-way differential harness
  (interpreter / IR / compiled -O0 / compiled -O3 run natively);
* :mod:`repro.testing.reduce` — delta-debugging minimiser that shrinks a
  failing program while preserving its divergence;
* :mod:`repro.testing.frontend` — the per-case front-end context (parse /
  typecheck / lower once, share across every leg and input vector);
* :mod:`repro.testing.native` — the native build-and-execute harnesses,
  including :class:`NativeBatch` (N cases -> one binary per leg, one
  subprocess per run);
* :mod:`repro.testing.fuzz` — the ``python -m repro.testing.fuzz`` CLI
  (``--jobs N`` worker pool, ``--batch-size``, deterministic aggregation).
"""

from typing import List

__all__: List[str] = [
    "GeneratedCase",
    "ProgramGenerator",
    "Divergence",
    "Oracle",
    "IRExecutor",
    "reduce_case",
    "CaseContext",
    "NativeBatch",
    "NativeFunction",
    "FuzzConfig",
    "run_campaign",
]


def __getattr__(name: str):
    if name in ("GeneratedCase", "ProgramGenerator"):
        from repro.testing import generator

        return getattr(generator, name)
    if name in ("Divergence", "Oracle"):
        from repro.testing import oracle

        return getattr(oracle, name)
    if name == "IRExecutor":
        from repro.testing.irexec import IRExecutor

        return IRExecutor
    if name == "reduce_case":
        from repro.testing.reduce import reduce_case

        return reduce_case
    if name == "CaseContext":
        from repro.testing.frontend import CaseContext

        return CaseContext
    if name in ("NativeBatch", "NativeFunction"):
        from repro.testing import native

        return getattr(native, name)
    if name in ("FuzzConfig", "run_campaign"):
        from repro.testing import fuzz

        return getattr(fuzz, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
