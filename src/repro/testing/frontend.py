"""Shared per-case front-end context for the differential pipeline.

Every oracle leg used to re-run the front half of the pipeline privately:
the interpreter type-checked once per *input vector*, the IR executor once
more (plus its own lowering), and each native leg parsed, type-checked and
lowered yet again inside ``compile_function``.  For a four-way oracle over
five input vectors that was ~14 semantic-analysis passes per case.

:class:`CaseContext` computes the front half once — parse, type-check,
AST-optimise, lower, IR-optimise — and every leg consumes the shared
result:

* interpreter legs are constructed with the shared, already-run
  :class:`~repro.lang.typecheck.TypeChecker`;
* the ``ir-O3`` leg executes the shared lowered IR via a pre-seeded
  lowering cache;
* the native legs emit assembly from the same
  :class:`~repro.compiler.driver.LoweredFunction` (the IR is copied before
  register allocation, which mutates it).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.compiler.driver import (
    LoweredFunction,
    emit_from_lowered,
    lower_for_backend,
)
from repro.lang import ast_nodes as ast
from repro.lang import ctypes as ct
from repro.lang.interpreter import Interpreter
from repro.lang.parser import parse_program
from repro.lang.typecheck import TypeChecker


class CaseContext:
    """One case's parse → typecheck → lower front half, computed once."""

    def __init__(
        self,
        source: str,
        name: Optional[str] = None,
        program: Optional[ast.Program] = None,
        checker: Optional[TypeChecker] = None,
        verify_ir: bool = False,
        ir_transform=None,
    ) -> None:
        self.source = source
        #: When set, :meth:`lowered` runs the IR verifier after lowering and
        #: after every -O3 pass (``ir_transform`` injects an IR-level
        #: miscompile first — the fuzzer's self-test hook).
        self.verify_ir = verify_ir
        self.ir_transform = ir_transform
        self.program = program if program is not None else parse_program(source)
        if name is None:
            functions = self.program.functions()
            if not functions:
                raise ValueError("program defines no function with a body")
            name = functions[0].name
        self.name = name
        if checker is None:
            # ``checker`` (over the same program, already run) lets producers
            # like the generator's round-trip validation donate their pass.
            checker = TypeChecker(self.program)
            checker.check()
        self.checker = checker
        self.check_result = getattr(checker, "last_result", checker.result)
        cache = getattr(checker, "resolve_cache", None)
        if cache is None:
            cache = {}
            # Share the resolution memo with every Interpreter built from
            # this checker (the interpreter looks for this attribute).
            checker.resolve_cache = cache  # type: ignore[attr-defined]
        self._resolve_cache: Dict[ct.CType, ct.CType] = cache
        self._lowered: Dict[str, LoweredFunction] = {}
        self._assembly: Dict[Tuple[str, str], str] = {}
        self._ir_cache: Optional[Dict] = None

    # -- legs -----------------------------------------------------------------

    def interpreter(self, **kwargs) -> Interpreter:
        """A fresh interpreter (fresh memory/globals) over the shared AST."""
        return Interpreter(self.program, checker=self.checker, **kwargs)

    def lowered(self, opt_level: str) -> LoweredFunction:
        """The lowered (and, at -O3, IR-optimised) entry function."""
        cached = self._lowered.get(opt_level)
        if cached is None:
            cached = lower_for_backend(
                self.program,
                name=self.name,
                opt_level=opt_level,
                checker=self.checker,
                verify_ir=self.verify_ir,
                ir_transform=self.ir_transform,
            )
            self._lowered[opt_level] = cached
        return cached

    def ir_cache(self) -> Dict:
        """A lowering cache pre-seeded with the -O3 IR, for ``IRExecutor``.

        The executor treats the IR as read-only, so one cache serves every
        input vector — and the native -O3 leg emits from the same IR.
        """
        if self._ir_cache is None:
            lowered = self.lowered("O3")
            self._ir_cache = {self.name: (lowered.ir_func, lowered.strings)}
        return self._ir_cache

    def assembly(self, isa: str, opt_level: str) -> str:
        """Assembly for one (ISA, opt level), emitted from the shared IR."""
        key = (isa, opt_level)
        cached = self._assembly.get(key)
        if cached is None:
            cached = emit_from_lowered(self.lowered(opt_level), isa).assembly
            self._assembly[key] = cached
        return cached

    def seed_assembly(self, isa: str, opt_level: str, text: str) -> None:
        """Pre-populate one (ISA, opt level) assembly leg with known text.

        Callers holding already-emitted assembly (a dataset entry's grid,
        a cache hit) seed it here so :meth:`assembly` returns it without
        re-lowering — the text must be what emission would produce.
        """
        self._assembly[(isa, opt_level)] = text

    # -- type information (used by the native harnesses) ----------------------

    def resolve(self, t: ct.CType) -> ct.CType:
        try:
            cached = self._resolve_cache.get(t)
        except TypeError:  # StructType is unhashable
            return self._resolve_uncached(t)
        if cached is None:
            cached = self._resolve_uncached(t)
            self._resolve_cache[t] = cached
        return cached

    def _resolve_uncached(self, t: ct.CType) -> ct.CType:
        if isinstance(t, ct.NamedType) and t.name in self.checker.typedefs:
            return self.resolve(self.checker.typedefs[t.name])
        if isinstance(
            t, ct.StructType
        ) and not t.fields and t.tag in self.checker.structs:
            return self.checker.structs[t.tag]
        if isinstance(t, ct.PointerType):
            return ct.PointerType(self.resolve(t.pointee))
        if isinstance(t, ct.ArrayType):
            return ct.ArrayType(self.resolve(t.element), t.length)
        return t

    def function(self) -> ast.FunctionDef:
        func = self.program.function(self.name)
        assert func is not None, f"no function {self.name!r}"
        return func

    def param_types(self) -> List[ct.CType]:
        return [ct.decay(self.resolve(p.type)) for p in self.function().params]

    def return_type(self) -> ct.CType:
        return self.resolve(self.function().return_type)

    def global_type(self, name: str) -> ct.CType:
        return self.resolve(self.checker.global_scope.vars[name])
