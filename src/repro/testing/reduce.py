"""Delta-debugging minimiser for diverging Mini-C programs.

Given a program the differential oracle flags, the reducer greedily applies
semantic shrinking edits — drop statements, unwrap branches and loops,
replace expressions by their sub-expressions or by small literals, shrink
literal values, drop unused parameters and globals — re-running the oracle
after each candidate edit and keeping only edits that (a) still parse and
type-check and (b) still diverge.  The result is the small reproducer that
gets checked into ``tests/corpus.py`` as a regression.

The reducer is deliberately oracle-agnostic: it takes an *interestingness*
predicate ``(source, inputs) -> bool``, so the same machinery minimises
interpreter-vs-native bugs, middle-end bugs and injected miscompiles alike.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from repro.lang import ast_nodes as ast
from repro.lang.parser import ParseError, parse_program
from repro.lang.lexer import LexError
from repro.lang.printer import print_program
from repro.lang.typecheck import check_program

Interesting = Callable[[str, List[Tuple]], bool]


@dataclass
class ReductionResult:
    source: str
    inputs: List[Tuple]
    attempts: int
    accepted: int


def _valid(source: str) -> bool:
    """A candidate must still round-trip through the real front end."""
    try:
        program = parse_program(source)
    except (ParseError, LexError, RecursionError):
        return False
    result = check_program(program)
    return not result.errors and result.missing.is_empty()


# ---------------------------------------------------------------------------
# Candidate edits
# ---------------------------------------------------------------------------


def walk_stmt_lists(node: ast.Node) -> Iterator[List[ast.Stmt]]:
    """Yield every statement list (block bodies) reachable from ``node``.

    Public because the mutation-based pseudo-decompiler
    (:mod:`repro.eval.mutate`) edits programs through the same slots the
    reducer shrinks them through.
    """
    if isinstance(node, ast.Block):
        yield node.stmts
    for value in vars(node).values():
        if isinstance(value, ast.Node):
            yield from walk_stmt_lists(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.Node):
                    yield from walk_stmt_lists(item)


def expr_slots(node: ast.Node) -> Iterator[Tuple[ast.Node, str, Optional[int]]]:
    """Yield (parent, attribute, list_index) for every expression position."""
    for attr, value in vars(node).items():
        if attr == "ctype":
            continue
        if isinstance(value, ast.Expr):
            yield node, attr, None
        if isinstance(value, ast.Node):
            yield from expr_slots(value)
        elif isinstance(value, list):
            for index, item in enumerate(value):
                if isinstance(item, ast.Expr):
                    yield node, attr, index
                if isinstance(item, ast.Node):
                    yield from expr_slots(item)


def get_slot(parent: ast.Node, attr: str, index: Optional[int]) -> ast.Expr:
    value = getattr(parent, attr)
    return value[index] if index is not None else value


def set_slot(parent: ast.Node, attr: str, index: Optional[int], expr: ast.Expr) -> None:
    if index is not None:
        getattr(parent, attr)[index] = expr
    else:
        setattr(parent, attr, expr)


def subexpressions(expr: ast.Expr) -> List[ast.Expr]:
    """Direct Expr children of ``expr`` (replacement candidates).

    Public because the repair search (:mod:`repro.eval.repair`) collapses
    expressions through the same slots the reducer shrinks them through —
    replacing an expression by one of its children undoes wrapper-style
    breaking mutations such as ``bump_return``'s ``x`` -> ``x + 1``.
    """
    out: List[ast.Expr] = []
    for attr, value in vars(expr).items():
        if attr == "ctype":
            continue
        if isinstance(value, ast.Expr):
            out.append(value)
        elif isinstance(value, list):
            out.extend(v for v in value if isinstance(v, ast.Expr))
    return out


def _render(program: ast.Program) -> str:
    return print_program(program)


def _candidate_sources(program: ast.Program, name: str) -> Iterator[str]:
    """Enumerate shrunken variants of ``program``, most aggressive first.

    Every yielded source is rendered from a deep copy, so candidates are
    independent of one another.
    """
    func = program.function(name)
    if func is None or func.body is None:
        return

    # 1. Drop whole statements (later statements first: return stays last).
    lists = list(walk_stmt_lists(func))
    for list_index, stmts in enumerate(lists):
        for stmt_index in reversed(range(len(stmts))):
            if isinstance(stmts[stmt_index], ast.Return):
                continue
            clone = copy.deepcopy(program)
            clone_lists = list(walk_stmt_lists(clone.function(name)))
            del clone_lists[list_index][stmt_index]
            yield _render(clone)

    # 2. Unwrap control flow: if -> branch body, loop -> its body once.
    for list_index, stmts in enumerate(lists):
        for stmt_index, stmt in enumerate(stmts):
            replacements: List[List[ast.Stmt]] = []
            if isinstance(stmt, ast.If):
                replacements.append([stmt.then])
                if stmt.otherwise is not None:
                    replacements.append([stmt.otherwise])
            elif isinstance(stmt, (ast.While, ast.DoWhile)):
                replacements.append([stmt.body])
            elif isinstance(stmt, ast.For):
                body = [stmt.body]
                if isinstance(stmt.init, ast.Stmt):
                    body = [stmt.init, stmt.body]
                replacements.append(body)
            elif isinstance(stmt, ast.Block):
                replacements.append(list(stmt.stmts))
            for replacement in replacements:
                clone = copy.deepcopy(program)
                clone_lists = list(walk_stmt_lists(clone.function(name)))
                clone_repl = copy.deepcopy(replacement)
                clone_lists[list_index][stmt_index : stmt_index + 1] = clone_repl
                yield _render(clone)

    # 3. Replace expressions by their sub-expressions or by 0/1.  Loop
    # conditions never get a nonzero literal: `while (1)` would turn a
    # shrink candidate into an infinite loop the native legs can only
    # escape via their execution timeout.
    slots = list(expr_slots(func))
    for slot_index, (parent, attr, index) in enumerate(slots):
        original = get_slot(parent, attr, index)
        is_loop_cond = attr == "cond" and isinstance(
            parent, (ast.While, ast.DoWhile, ast.For)
        )
        replacements = subexpressions(original)
        if not isinstance(original, ast.IntLiteral):
            replacements = replacements + [ast.IntLiteral(0)]
            if not is_loop_cond:
                replacements.append(ast.IntLiteral(1))
        for replacement in replacements:
            clone = copy.deepcopy(program)
            clone_slots = list(expr_slots(clone.function(name)))
            cparent, cattr, cindex = clone_slots[slot_index]
            set_slot(cparent, cattr, cindex, copy.deepcopy(replacement))
            yield _render(clone)

    # 4. Shrink literals toward zero.
    for slot_index, (parent, attr, index) in enumerate(slots):
        original = get_slot(parent, attr, index)
        if not isinstance(original, ast.IntLiteral) or original.value in (0, 1):
            continue
        for shrunk in (0, 1, original.value // 2, -original.value):
            if shrunk == original.value:
                continue
            clone = copy.deepcopy(program)
            clone_slots = list(expr_slots(clone.function(name)))
            cparent, cattr, cindex = clone_slots[slot_index]
            set_slot(cparent, cattr, cindex, ast.IntLiteral(shrunk))
            yield _render(clone)

    # 5. Drop unused top-level globals.
    used = _used_names(func)
    for decl_index, decl in enumerate(program.decls):
        if isinstance(decl, ast.Declaration) and decl.name not in used:
            clone = copy.deepcopy(program)
            del clone.decls[decl_index]
            yield _render(clone)


def _used_names(node: ast.Node) -> set:
    found = set()
    if isinstance(node, ast.Identifier):
        found.add(node.name)
    for value in vars(node).values():
        if isinstance(value, ast.Node):
            found |= _used_names(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.Node):
                    found |= _used_names(item)
    return found


def _drop_param_candidates(
    program: ast.Program, name: str, inputs: List[Tuple]
) -> Iterator[Tuple[str, List[Tuple]]]:
    """Try removing each unused parameter together with its argument column."""
    func = program.function(name)
    if func is None or func.body is None:
        return
    used = _used_names(func.body)
    for param_index in reversed(range(len(func.params))):
        if func.params[param_index].name in used:
            continue
        clone = copy.deepcopy(program)
        del clone.function(name).params[param_index]
        new_inputs = [
            tuple(v for j, v in enumerate(vector) if j != param_index)
            for vector in inputs
        ]
        yield _render(clone), new_inputs


# ---------------------------------------------------------------------------
# The reduction loop
# ---------------------------------------------------------------------------


def reduce_case(
    source: str,
    name: str,
    inputs: List[Tuple],
    is_interesting: Interesting,
    max_attempts: int = 600,
) -> ReductionResult:
    """Greedily minimise ``source``/``inputs`` while staying interesting.

    ``is_interesting(source, inputs)`` must return True for the inputs as
    given (the caller should pass a case the oracle already flagged).  The
    predicate is expected to swallow its own build errors and return False
    for programs that no longer trigger the bug.
    """
    attempts = 0
    accepted = 0

    def try_candidate(candidate_source: str, candidate_inputs: List[Tuple]) -> bool:
        nonlocal attempts, accepted
        if attempts >= max_attempts:
            return False
        if candidate_source == source or not _valid(candidate_source):
            return False
        attempts += 1
        if is_interesting(candidate_source, candidate_inputs):
            accepted += 1
            return True
        return False

    # Shrink the input list to a single diverging vector first — every
    # later oracle invocation then runs one vector instead of five.
    for vector in inputs:
        attempts += 1
        if is_interesting(source, [vector]):
            inputs = [vector]
            break
        if attempts >= max_attempts:
            break

    changed = True
    while changed and attempts < max_attempts:
        changed = False
        program = parse_program(source)

        for candidate_source, candidate_inputs in _drop_param_candidates(
            program, name, inputs
        ):
            if attempts >= max_attempts:
                break
            if not _valid(candidate_source):
                continue
            attempts += 1
            if is_interesting(candidate_source, candidate_inputs):
                source, inputs = candidate_source, candidate_inputs
                accepted += 1
                changed = True
                break
        if changed:
            continue

        for candidate_source in _candidate_sources(program, name):
            if try_candidate(candidate_source, inputs):
                source = candidate_source
                changed = True
                break
            if attempts >= max_attempts:
                break

    return ReductionResult(source, inputs, attempts, accepted)


def oracle_interestingness(oracle, name: str) -> Interesting:
    """An interestingness predicate from a configured oracle: the candidate
    is interesting when the oracle still reports *any* divergence."""

    def predicate(source: str, inputs: List[Tuple]) -> bool:
        try:
            return oracle.check_case(source, name, inputs) is not None
        except Exception:
            return False

    return predicate
