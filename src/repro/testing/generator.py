"""Seeded random well-typed Mini-C program generator.

The sampler builds a :class:`repro.lang.ast_nodes` tree directly — so every
program is well-typed by construction — then renders it through the real
pretty printer and re-parses/re-typechecks the text, guaranteeing that what
the differential oracle executes round-trips through the production lexer,
parser and type checker.

Design constraints that keep every generated program executable on all four
oracle substrates (interpreter, IR executor, native -O0/-O3):

* **Termination** — loops are counted with literal trip counts and their
  induction variables are never assigned in the body, so the interpreter's
  step budget is never at risk.
* **No traps** — every division/modulo divisor has the shape
  ``(expr & mask) + k`` with ``k >= 1``, which is always a small positive
  number: no division by zero, and no ``INT_MIN / -1`` (the one signed
  division x86 faults on).  Shift counts are masked the same way the
  hardware and :func:`repro.lang.ctypes.int_binop` mask them, so any count
  is well-defined and identical everywhere.
* **No uninitialised reads** — every local is initialised at its
  declaration (native stack frames hold garbage; the interpreter's memory
  is zero-filled).

Within those constraints the sampler deliberately leans into the corners
the width-annotated IR has to get right: ``char``/``short`` locals and
parameters of both signednesses, mixed signed/unsigned comparisons and
arithmetic, narrowing casts, compound assignments, pre/post increments,
pointer-to-scalar out-parameters and initialised globals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.lang import ast_nodes as ast
from repro.lang import ctypes as ct
from repro.lang.parser import parse_program
from repro.lang.printer import print_program
from repro.lang.typecheck import TypeChecker

#: The integer scalar types the sampler draws from.
SCALAR_TYPES: Tuple[ct.IntType, ...] = (
    ct.CHAR,
    ct.UCHAR,
    ct.SHORT,
    ct.USHORT,
    ct.INT,
    ct.UINT,
    ct.LONG,
    ct.ULONG,
)

#: Wider accumulator-friendly types used for locals that aggregate results.
ACC_TYPES: Tuple[ct.IntType, ...] = (ct.INT, ct.UINT, ct.LONG, ct.ULONG)

_COMPARISONS = ("==", "!=", "<", "<=", ">", ">=")
_ARITH_OPS = ("+", "-", "*", "&", "|", "^")
_COMPOUND_OPS = ("+=", "-=", "*=", "&=", "|=", "^=")


@dataclass
class GeneratedCase:
    """One fuzzing case: a program, its entry point and argument vectors.

    ``program``/``checker`` carry the round-trip parse and its type-check
    forward so downstream consumers (the oracle's :class:`CaseContext`)
    don't parse and analyse the same text a second time.
    """

    source: str
    name: str
    inputs: List[Tuple]
    seed: int
    program: Optional[ast.Program] = None
    checker: Optional[object] = None


@dataclass
class _Var:
    name: str
    type: ct.CType
    mutable: bool = True
    is_pointer: bool = False


@dataclass
class _Scope:
    """Variables visible while generating one statement sequence."""

    vars: List[_Var] = field(default_factory=list)

    def readable(self) -> List[_Var]:
        return list(self.vars)

    def assignable(self) -> List[_Var]:
        return [v for v in self.vars if v.mutable]


class ProgramGenerator:
    """Deterministic random Mini-C sampler (one instance per seed)."""

    def __init__(
        self,
        seed: int,
        max_stmts: int = 12,
        max_depth: int = 3,
        max_loop_nest: int = 2,
        function_name: str = "fuzz_target",
    ) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.max_stmts = max(1, max_stmts)
        self.max_depth = max(1, max_depth)
        self.max_loop_nest = max_loop_nest
        self.function_name = function_name
        self._counter = 0
        self._loop_depth = 0
        self.globals: List[_Var] = []

    # -- naming ---------------------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    # -- literals -------------------------------------------------------------

    def _literal_value(self, t: ct.IntType) -> int:
        """A literal that is interesting for ``t`` but safe to spell in source.

        Magnitudes stay strictly below 2**31 for narrow types (so the
        literal's own C type is ``int``) and below 2**62 for long types.
        """
        rng = self.rng
        choice = rng.random()
        if choice < 0.35:
            return rng.randint(0, 9)
        if choice < 0.55:
            return rng.randint(-64, 200) if not t.unsigned else rng.randint(0, 255)
        if choice < 0.8:
            boundaries = [1, 2, 7, 100, 127, 128, 255, 256, 32767, 32768, 65535]
            value = rng.choice(boundaries)
            return value if t.unsigned or rng.random() < 0.7 else -value
        if t.rank >= ct.LONG.rank and choice < 0.9:
            return rng.randint(-(2**62), 2**62)
        value = rng.randint(0, 2**31 - 1)
        return value if t.unsigned or rng.random() < 0.6 else -value

    def _int_literal(self, t: Optional[ct.IntType] = None) -> ast.IntLiteral:
        return ast.IntLiteral(self._literal_value(t or ct.INT))

    # -- expressions ----------------------------------------------------------

    def _leaf(self, scope: _Scope) -> ast.Expr:
        rng = self.rng
        readable = scope.readable()
        if readable and rng.random() < 0.72:
            var = rng.choice(readable)
            if var.is_pointer:
                return ast.UnaryOp("*", ast.Identifier(var.name))
            return ast.Identifier(var.name)
        return self._int_literal(self.rng.choice(SCALAR_TYPES))

    def _guarded_divisor(self, scope: _Scope, depth: int) -> ast.Expr:
        """An always-positive, never-huge divisor: ``(expr & mask) + k``."""
        mask = self.rng.choice((3, 7, 15, 31, 63))
        k = self.rng.randint(1, 4)
        inner = self._expr(scope, depth - 1)
        return ast.BinaryOp(
            "+", ast.BinaryOp("&", inner, ast.IntLiteral(mask)), ast.IntLiteral(k)
        )

    def _shift_count(self, scope: _Scope, depth: int) -> ast.Expr:
        if self.rng.random() < 0.5:
            return ast.IntLiteral(self.rng.randint(0, 31))
        mask = self.rng.choice((7, 15, 31))
        return ast.BinaryOp("&", self._expr(scope, depth - 1), ast.IntLiteral(mask))

    def _comparison(self, scope: _Scope, depth: int) -> ast.Expr:
        op = self.rng.choice(_COMPARISONS)
        return ast.BinaryOp(
            op, self._expr(scope, depth - 1), self._expr(scope, depth - 1)
        )

    def _condition(self, scope: _Scope, depth: int) -> ast.Expr:
        rng = self.rng
        choice = rng.random()
        if choice < 0.55:
            return self._comparison(scope, depth)
        if choice < 0.7:
            op = rng.choice(("&&", "||"))
            return ast.BinaryOp(
                op, self._comparison(scope, depth), self._comparison(scope, depth)
            )
        if choice < 0.8:
            return ast.UnaryOp("!", self._expr(scope, depth - 1))
        return self._expr(scope, depth - 1)

    def _expr(self, scope: _Scope, depth: int) -> ast.Expr:
        """A random integer-valued expression of bounded depth."""
        rng = self.rng
        if depth <= 0:
            return self._leaf(scope)
        choice = rng.random()
        if choice < 0.3:
            return self._leaf(scope)
        if choice < 0.62:
            op = rng.choice(_ARITH_OPS)
            return ast.BinaryOp(
                op, self._expr(scope, depth - 1), self._expr(scope, depth - 1)
            )
        if choice < 0.72:
            op = rng.choice(("/", "%"))
            return ast.BinaryOp(
                op, self._expr(scope, depth - 1), self._guarded_divisor(scope, depth)
            )
        if choice < 0.8:
            op = rng.choice(("<<", ">>"))
            return ast.BinaryOp(
                op, self._expr(scope, depth - 1), self._shift_count(scope, depth)
            )
        if choice < 0.86:
            op = rng.choice(("-", "~", "!"))
            return ast.UnaryOp(op, self._expr(scope, depth - 1))
        if choice < 0.92:
            target = rng.choice(SCALAR_TYPES)
            return ast.Cast(target, self._expr(scope, depth - 1))
        if choice < 0.97:
            return self._comparison(scope, depth)
        return ast.Conditional(
            self._condition(scope, depth - 1),
            self._expr(scope, depth - 1),
            self._expr(scope, depth - 1),
        )

    # -- statements -----------------------------------------------------------

    def _declaration(self, scope: _Scope) -> ast.Stmt:
        t = self.rng.choice(SCALAR_TYPES)
        name = self._fresh("v")
        init = self._expr(scope, self.max_depth - 1)
        scope.vars.append(_Var(name, t))
        return ast.Declaration(name, t, init)

    def _assignment(self, scope: _Scope) -> Optional[ast.Stmt]:
        targets = scope.assignable()
        if not targets:
            return None
        var = self.rng.choice(targets)
        target: ast.Expr
        if var.is_pointer:
            target = ast.UnaryOp("*", ast.Identifier(var.name))
        else:
            target = ast.Identifier(var.name)
        roll = self.rng.random()
        if roll < 0.55:
            value = self._expr(scope, self.max_depth - 1)
            return ast.ExprStmt(ast.Assignment("=", target, value))
        if roll < 0.8:
            op = self.rng.choice(_COMPOUND_OPS)
            value = self._expr(scope, self.max_depth - 2)
            return ast.ExprStmt(ast.Assignment(op, target, value))
        if roll < 0.9:
            op = self.rng.choice(("/=", "%="))
            return ast.ExprStmt(
                ast.Assignment(op, target, self._guarded_divisor(scope, 2))
            )
        op = self.rng.choice(("<<=", ">>="))
        return ast.ExprStmt(ast.Assignment(op, target, self._shift_count(scope, 2)))

    def _incdec(self, scope: _Scope) -> Optional[ast.Stmt]:
        targets = [v for v in scope.assignable() if not v.is_pointer]
        if not targets:
            return None
        var = self.rng.choice(targets)
        op = self.rng.choice(("++", "--"))
        node: ast.Expr
        if self.rng.random() < 0.5:
            node = ast.UnaryOp(op, ast.Identifier(var.name))
        else:
            node = ast.PostfixOp(op, ast.Identifier(var.name))
        return ast.ExprStmt(node)

    def _if(self, scope: _Scope, budget: int) -> ast.Stmt:
        # Branches get a copy of the scope: declarations inside a block are
        # invisible after it in C, so they must not leak into the generator's
        # view of what later statements may reference.
        cond = self._condition(scope, self.max_depth - 1)
        then = ast.Block(self._stmts(_Scope(list(scope.vars)), max(1, budget // 2)))
        otherwise = None
        if self.rng.random() < 0.45:
            otherwise = ast.Block(
                self._stmts(_Scope(list(scope.vars)), max(1, budget // 2))
            )
        return ast.If(cond, then, otherwise)

    def _for_loop(self, scope: _Scope, budget: int) -> ast.Stmt:
        name = self._fresh("i")
        trip = self.rng.randint(1, 8)
        self._loop_depth += 1
        inner = _Scope(list(scope.vars) + [_Var(name, ct.INT, mutable=False)])
        body = ast.Block(self._stmts(inner, max(1, budget // 2)))
        self._loop_depth -= 1
        init = ast.Declaration(name, ct.INT, ast.IntLiteral(0))
        cond = ast.BinaryOp("<", ast.Identifier(name), ast.IntLiteral(trip))
        step: ast.Expr
        if self.rng.random() < 0.8:
            step = ast.PostfixOp("++", ast.Identifier(name))
        else:
            step = ast.Assignment("+=", ast.Identifier(name), ast.IntLiteral(1))
        return ast.For(init, cond, step, body)

    def _while_loop(self, scope: _Scope, budget: int) -> List[ast.Stmt]:
        name = self._fresh("t")
        trip = self.rng.randint(1, 8)
        counter = ast.Declaration(name, ct.INT, ast.IntLiteral(trip))
        self._loop_depth += 1
        inner = _Scope(list(scope.vars) + [_Var(name, ct.INT, mutable=False)])
        body_stmts = self._stmts(inner, max(1, budget // 2))
        self._loop_depth -= 1
        decrement = ast.ExprStmt(
            ast.Assignment(
                "=",
                ast.Identifier(name),
                ast.BinaryOp("-", ast.Identifier(name), ast.IntLiteral(1)),
            )
        )
        cond = ast.BinaryOp(">", ast.Identifier(name), ast.IntLiteral(0))
        loop = ast.While(cond, ast.Block(body_stmts + [decrement]))
        if self.rng.random() < 0.25:
            loop = ast.DoWhile(ast.Block(body_stmts + [decrement]), cond)
        return [counter, loop]

    def _stmts(self, scope: _Scope, budget: int) -> List[ast.Stmt]:
        stmts: List[ast.Stmt] = []
        remaining = budget
        while remaining > 0:
            roll = self.rng.random()
            produced: List[ast.Stmt] = []
            if roll < 0.3:
                produced = [self._declaration(scope)]
            elif roll < 0.62:
                stmt = self._assignment(scope)
                produced = [stmt] if stmt is not None else [self._declaration(scope)]
            elif roll < 0.72:
                stmt = self._incdec(scope)
                produced = [stmt] if stmt is not None else [self._declaration(scope)]
            elif roll < 0.86:
                produced = [self._if(scope, remaining)]
                remaining -= 1  # branches are costlier
            elif self._loop_depth < self.max_loop_nest:
                if self.rng.random() < 0.6:
                    produced = [self._for_loop(scope, remaining)]
                else:
                    produced = self._while_loop(scope, remaining)
                remaining -= 1
            else:
                produced = [self._declaration(scope)]
            stmts.extend(produced)
            remaining -= len(produced)
        return stmts

    # -- whole programs -------------------------------------------------------

    def _make_globals(self) -> List[ast.Declaration]:
        decls: List[ast.Declaration] = []
        for _ in range(self.rng.randint(0, 2)):
            t = self.rng.choice(SCALAR_TYPES)
            name = self._fresh("g")
            init: Optional[ast.Node] = None
            if self.rng.random() < 0.6:
                init = ast.IntLiteral(t.wrap(self._literal_value(t)))
            self.globals.append(_Var(name, t))
            decls.append(ast.Declaration(name, t, init))
        return decls

    def _make_params(self) -> List[ast.Param]:
        params: List[ast.Param] = []
        for _ in range(self.rng.randint(1, 3)):
            params.append(ast.Param(self._fresh("p"), self.rng.choice(SCALAR_TYPES)))
        for _ in range(self.rng.randint(0, 2)):
            pointee = self.rng.choice(SCALAR_TYPES)
            params.append(ast.Param(self._fresh("q"), ct.PointerType(pointee)))
        self.rng.shuffle(params)
        return params

    def _argument_for(self, t: ct.CType):
        if isinstance(t, ct.PointerType):
            pointee = t.pointee
            assert isinstance(pointee, ct.IntType)
            return [self._argument_for(pointee)]
        assert isinstance(t, ct.IntType)
        rng = self.rng
        roll = rng.random()
        if roll < 0.25:
            return rng.randint(0, 3)
        if roll < 0.5:
            return rng.randint(t.min_value(), t.max_value())
        if roll < 0.75:
            return rng.choice([t.min_value(), t.max_value(), t.max_value() - 1])
        return rng.choice([-1, 0, 1, 7, 100, -100 if not t.unsigned else 100])

    def generate(self) -> GeneratedCase:
        """Build one program plus argument vectors and round-trip it."""
        global_decls = self._make_globals()
        params = self._make_params()
        return_type = self.rng.choice(ACC_TYPES)

        scope = _Scope(
            [
                _Var(p.name, p.type, is_pointer=isinstance(p.type, ct.PointerType))
                for p in params
            ]
            + list(self.globals)
        )
        body_stmts = self._stmts(scope, self.rng.randint(3, self.max_stmts))
        body_stmts.append(ast.Return(self._expr(scope, self.max_depth)))

        func = ast.FunctionDef(
            self.function_name, return_type, params, ast.Block(body_stmts)
        )
        program = ast.Program(list(global_decls) + [func])
        source = print_program(program)

        # Round-trip: the text must survive the real front end unchanged in
        # meaning, and type-check cleanly.  The reparsed program and its
        # checker ride along on the case so the oracle starts from them.
        reparsed = parse_program(source)
        checker = TypeChecker(reparsed)
        result = checker.check()
        if result.errors or not result.missing.is_empty():
            raise AssertionError(
                f"generator produced an ill-typed program (seed {self.seed}): "
                f"{result.errors} / missing {result.missing}\n{source}"
            )

        inputs = [
            tuple(self._argument_for(p.type) for p in params)
            for _ in range(self.rng.randint(3, 5))
        ]
        return GeneratedCase(
            source, self.function_name, inputs, self.seed, reparsed, checker
        )


def generate_case(seed: int, max_stmts: int = 12) -> GeneratedCase:
    """Convenience wrapper: one deterministic case for ``seed``."""
    return ProgramGenerator(seed, max_stmts=max_stmts).generate()
