"""Native build-and-execute harnesses for compiled Mini-C assembly.

This is the "run the ground truth for real" half of the paper's
IO-equivalence check.  Two harnesses share the same encoding/decoding
machinery:

* :class:`NativeFunction` — one case per binary, one subprocess per input
  vector.  Simple, fully isolated; used by the native execution tests and
  as the oracle's sequential reference path.
* :class:`NativeBatch` — N cases compiled into **one** translation unit
  per (ISA, opt level), linked against a single dispatching harness and
  executed by a **fork server**: one persistent process whose control
  loop reads (case, input) requests over a pipe and ``fork()``s per
  pair.  Each child inherits pristine globals through copy-on-write, so
  trap isolation and state reset come for free — a trapping pair kills
  only its child, and the server keeps answering without any re-exec.
  The control loop is generic C compiled **once per process** into a
  cached object file; per batch only a tiny symbol-table TU and the
  concatenated assembly are compiled, and the build runs asynchronously
  so callers can overlap it with other work (``ensure_built()`` joins
  it).  The ARM leg runs the same server statically linked under one
  persistent ``qemu-aarch64`` process.  The previous one-subprocess-per-
  leg path (trap-attributing resume, globals snapshot/restore) is kept,
  byte-identical in its verdicts, as the parity reference behind
  ``fork_server=False``.

Batching shares one process across cases, so per-case symbols are made
unique: the entry point and every global are renamed ``__caseN_<name>``
(whole-word textual rename — safe for generator-produced programs, whose
identifiers never collide with assembly keywords), and local labels get a
per-case prefix.  Each case's globals are snapshotted at process start and
restored before every call so every (case, input) pair still observes the
pristine initialisers, exactly like a fresh per-case process would.

Argument buffers use the interpreter's packed memory layout (structs have
no padding), so they are encoded/decoded here as raw bytes rather than
declared as C aggregates.  Scalar parameters are passed through ``long
long``/``double`` prototypes: the compiled code expects integer arguments
sign- or zero-extended to the full 64-bit register, which is exactly what
a ``long long`` prototype makes the C caller do.
"""

from __future__ import annotations

import atexit
import os
import platform
import re
import select
import shutil
import signal
import struct
import subprocess
import tempfile
import threading
import time
import weakref
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.lang import ctypes as ct
from repro.testing.frontend import CaseContext


def have_native_toolchain() -> bool:
    """True when the host can assemble and run x86-64 code."""
    return (
        platform.machine() in ("x86_64", "AMD64")
        and shutil.which("as") is not None
        and shutil.which("gcc") is not None
    )


_toolchain_ids: Dict[str, str] = {}


def _toolchain_id(isa: str) -> str:
    """Compiler identity folded into artifact-cache keys (once per process).

    A compiler upgrade changes the emitted harness ABI/code, so cached
    binaries keyed under the old identity become unreachable rather than
    stale.  ``platform.machine()`` rides along because the same cache
    directory may be shared across differently-architected runners.
    """
    cached = _toolchain_ids.get(isa)
    if cached is not None:
        return cached
    if isa == "arm" and platform.machine() != "aarch64":
        cc = _arm_cross_compiler() or "missing-arm-cc"
    else:
        cc = "gcc"
    try:
        proc = subprocess.run(
            [cc, "--version"], capture_output=True, text=True, timeout=30
        )
        version = proc.stdout.splitlines()[0] if proc.stdout else cc
    except (OSError, subprocess.TimeoutExpired, IndexError):
        version = cc
    identity = f"{platform.machine()}:{cc}:{version}"
    _toolchain_ids[isa] = identity
    return identity

def _arm_cross_compiler() -> Optional[str]:
    for cc in ("aarch64-linux-gnu-gcc", "aarch64-unknown-linux-gnu-gcc"):
        if shutil.which(cc):
            return cc
    return None


def _arm_emulator() -> Optional[List[str]]:
    if platform.machine() == "aarch64":
        return []  # run directly on the host
    for emulator in ("qemu-aarch64", "qemu-aarch64-static"):
        if shutil.which(emulator):
            return [emulator]
    return None


def have_arm_toolchain() -> bool:
    """True when AArch64 output can be assembled and executed.

    Either the host itself is aarch64 with a GNU toolchain, or a cross
    compiler plus ``qemu-aarch64`` user-mode emulation is installed.
    """
    if platform.machine() == "aarch64":
        return shutil.which("gcc") is not None
    return _arm_cross_compiler() is not None and _arm_emulator() is not None


# ---------------------------------------------------------------------------
# Packed-byte encoding of Python argument values (mirrors the interpreter's
# marshalling in Interpreter._marshal_argument / read_typed / write_typed).
# ---------------------------------------------------------------------------


def _encode_scalar(value: Any, t: ct.CType) -> bytes:
    if isinstance(t, ct.FloatType):
        return struct.pack("<f" if t.sizeof() == 4 else "<d", float(value))
    size = t.sizeof()
    return (int(value) & ((1 << (8 * size)) - 1)).to_bytes(size, "little")


def _decode_scalar(data: bytes, t: ct.CType) -> Any:
    if isinstance(t, ct.FloatType):
        return struct.unpack("<f" if t.sizeof() == 4 else "<d", data)[0]
    signed = not (isinstance(t, ct.IntType) and t.unsigned)
    if isinstance(t, (ct.PointerType, ct.ArrayType)):
        signed = False
    return int.from_bytes(data, "little", signed=signed)


@dataclass
class _Buffer:
    """A pointer argument's backing bytes and how to read it back."""

    data: bytearray
    elem: Optional[ct.CType] = None  # list arguments
    count: int = 0
    struct_type: Optional[ct.StructType] = None  # dict arguments
    as_string: bool = False


def _encode_argument(value: Any, ptype: ct.CType, resolve) -> Optional[_Buffer]:
    """Encode a Python pointer-argument into packed bytes (None for scalars)."""
    if isinstance(value, str) and isinstance(ptype, ct.PointerType):
        data = bytearray(len(value) + 16)
        raw = value.encode("latin-1", errors="replace")
        data[: len(raw)] = raw
        return _Buffer(data, elem=ct.CHAR, count=len(value) + 1, as_string=True)
    if isinstance(value, (list, tuple)) and isinstance(ptype, ct.PointerType):
        elem = resolve(ptype.pointee)
        if isinstance(elem, ct.VoidType):
            elem = ct.CHAR
        data = bytearray(max(1, len(value)) * elem.sizeof() + 16)
        for index, item in enumerate(value):
            encoded = _encode_scalar(item, elem)
            data[index * elem.sizeof() : index * elem.sizeof() + len(encoded)] = encoded
        return _Buffer(data, elem=elem, count=len(value))
    if isinstance(value, dict) and isinstance(ptype, ct.PointerType):
        struct_type = resolve(ptype.pointee)
        data = bytearray(max(struct_type.sizeof(), 8) + 8)
        for fname, fvalue in value.items():
            if struct_type.has_field(fname):
                ftype = resolve(struct_type.field_type(fname))
                encoded = _encode_scalar(fvalue, ftype)
                offset = struct_type.field_offset(fname)
                data[offset : offset + len(encoded)] = encoded
        return _Buffer(data, struct_type=struct_type)
    return None


def _decode_buffer(data: bytes, buf: _Buffer, resolve) -> Any:
    if buf.struct_type is not None:
        out: Dict[str, Any] = {}
        for fld in buf.struct_type.fields:
            ftype = resolve(fld.type)
            offset = buf.struct_type.field_offset(fld.name)
            out[fld.name] = _decode_scalar(
                data[offset : offset + ftype.sizeof()], ftype
            )
        return out
    elem = buf.elem or ct.CHAR
    values = [
        _decode_scalar(data[i * elem.sizeof() : (i + 1) * elem.sizeof()], elem)
        for i in range(buf.count)
    ]
    if buf.as_string:
        chars: List[str] = []
        for v in values:
            if v == 0:
                break
            chars.append(chr(int(v) & 0xFF))
        return "".join(chars)
    return values


def _decode_global(data: bytes, gtype: ct.CType) -> Any:
    if isinstance(gtype, ct.ArrayType):
        elem = gtype.element
        return [
            _decode_scalar(data[i * elem.sizeof() : (i + 1) * elem.sizeof()], elem)
            for i in range(gtype.length or 0)
        ]
    return _decode_scalar(data, gtype)


# ---------------------------------------------------------------------------
# Harness generation
# ---------------------------------------------------------------------------

_DUMP_HELPER = """
static void dump(const char *tag, const unsigned char *p, long n) {
    printf("%s ", tag);
    if (n == 0) { printf("-\\n"); return; }
    for (long i = 0; i < n; i++) printf("%02x", p[i]);
    printf("\\n");
}
"""

_BITS_HELPER = """
static double bits_to_double(unsigned long long u) {
    union { unsigned long long u; double d; } cvt; cvt.u = u; return cvt.d;
}
"""


def _scalar_literal(value: Any, t: ct.CType) -> str:
    if isinstance(t, ct.FloatType):
        bits = struct.unpack("<Q", struct.pack("<d", float(value)))[0]
        return f"bits_to_double(0x{bits:016x}ULL)"
    wrapped = t.wrap(int(value)) if isinstance(t, ct.IntType) else int(value)
    return f"(long long)0x{wrapped & 0xFFFFFFFFFFFFFFFF:016x}ULL"


def _prototype(
    symbol: str, param_types: Sequence[ct.CType], return_type: ct.CType
) -> str:
    args = ", ".join(
        "double" if isinstance(t, ct.FloatType) else "long long" for t in param_types
    ) or "void"
    if ct.is_void(return_type):
        ret = "void"
    elif isinstance(return_type, ct.FloatType):
        ret = "double"
    else:
        ret = "long long"
    return f"extern {ret} {symbol}({args});"


def _assembly_globals(assembly: str) -> List[Tuple[str, int]]:
    """(name, size) for every global data symbol the assembly defines.

    Covers both zero-filled ``.comm`` symbols and initialised ``.data``
    objects (recognised by their ``.size name, N`` directive; function
    symbols use ``.size name, .-name`` and so never match).
    """
    found = [
        (name, int(size))
        for name, size in re.findall(r"^\t\.comm\t([A-Za-z_]\w*),(\d+)", assembly, re.M)
    ]
    found.extend(
        (name, int(size))
        for name, size in re.findall(
            r"^\t\.size\t([A-Za-z_]\w*), (\d+)$", assembly, re.M
        )
    )
    return found


def _build_command(
    isa: str, binary: Path, sources: Sequence[Path]
) -> Tuple[List[str], List[str]]:
    """(build command, execution prefix) for one linked harness binary."""
    if isa == "arm" and platform.machine() != "aarch64":
        cc = _arm_cross_compiler()
        assert cc is not None, "no AArch64 cross compiler available"
        build = [cc, "-static", "-o", str(binary), *map(str, sources)]
        return build, _arm_emulator() or []
    build = ["gcc", "-no-pie", "-o", str(binary), *map(str, sources)]
    return build, []


@dataclass
class NativeResult:
    """Observable state of one native execution."""

    return_value: Any
    arg_values: List[Any]
    globals: Dict[str, Any]


class NativeFunction:
    """A corpus function assembled to a host executable (one case, one
    subprocess per input vector).

    ``isa`` selects the backend: ``"x86"`` builds with the host toolchain,
    ``"arm"`` builds a static binary with the AArch64 cross compiler and
    executes it under ``qemu-aarch64`` (or directly on aarch64 hosts).
    ``asm_transform``, when given, rewrites the assembly text before it is
    assembled — the fuzzer uses this to inject deliberate miscompiles.
    ``context`` shares an already-computed front half (parse/typecheck/
    lowered IR) so repeated builds of one case do not repeat it.
    """

    def __init__(
        self,
        source: str,
        name: str,
        inputs: Sequence[Tuple[Any, ...]],
        opt_level: str,
        workdir: Path,
        isa: str = "x86",
        asm_transform: Optional[Callable[[str], str]] = None,
        run_timeout: float = 10.0,
        context: Optional[CaseContext] = None,
        cache=None,
    ) -> None:
        self.source = source
        self.name = name
        self.inputs = list(inputs)
        self.opt_level = opt_level
        self.isa = isa
        self.run_timeout = run_timeout
        self._context = context if context is not None else CaseContext(source, name)
        self._resolve = self._context.resolve
        self.param_types = self._context.param_types()
        self.return_type = self._context.return_type()
        assembly = self._context.assembly(isa, opt_level)
        if asm_transform is not None:
            assembly = asm_transform(assembly)
        self.globals = _assembly_globals(assembly)
        self._buffers: List[List[Optional[_Buffer]]] = []
        harness = self._generate_harness()
        self.binary = workdir / f"{name}_{isa}_{opt_level}"
        if cache is not None:
            key = cache.key("binary", isa, "func", _toolchain_id(isa), assembly, harness)
            if cache.get_file("binary", key, self.binary):
                if isa == "arm" and platform.machine() != "aarch64":
                    self._exec_prefix = _arm_emulator() or []
                else:
                    self._exec_prefix = []
                return
        asm_path = workdir / f"{name}_{isa}_{opt_level}.s"
        asm_path.write_text(assembly)
        harness_path = workdir / f"{name}_{isa}_{opt_level}_main.c"
        harness_path.write_text(harness)
        build, self._exec_prefix = _build_command(
            isa, self.binary, [harness_path, asm_path]
        )
        subprocess.run(build, check=True, capture_output=True, timeout=120)
        if cache is not None:
            cache.put_file("binary", key, self.binary)

    # -- C generation --------------------------------------------------------

    def _generate_harness(self) -> str:
        lines = [
            "#include <stdio.h>",
            "#include <stdlib.h>",
            "",
            _prototype(self.name, self.param_types, self.return_type),
        ]
        for gname, _ in self.globals:
            lines.append(f"extern unsigned char {gname}[];")
        lines.append(_DUMP_HELPER)
        lines.append(_BITS_HELPER)
        body: List[str] = []
        for index, args in enumerate(self.inputs):
            buffers: List[Optional[_Buffer]] = []
            call_args: List[str] = []
            decls: List[str] = []
            for j, (value, ptype) in enumerate(zip(args, self.param_types)):
                buf = _encode_argument(value, ptype, self._resolve)
                buffers.append(buf)
                if buf is None:
                    call_args.append(_scalar_literal(value, ptype))
                else:
                    cname = f"in{index}_{j}"
                    data = ", ".join(str(b) for b in buf.data)
                    decls.append(f"static unsigned char {cname}[] = {{ {data} }};")
                    call_args.append(f"(long long){cname}")
            self._buffers.append(buffers)
            body.append(f"    if (idx == {index}) {{")
            for decl in decls:
                body.append(f"        {decl}")
            call = f"{self.name}({', '.join(call_args)})"
            if ct.is_void(self.return_type):
                body.append(f"        {call};")
            elif isinstance(self.return_type, ct.FloatType):
                body.append(f"        printf(\"RETF %.17g\\n\", {call});")
            else:
                body.append(f"        printf(\"RET %lld\\n\", {call});")
            for j, buf in enumerate(buffers):
                if buf is not None:
                    body.append(
                        f"        dump(\"ARG{j}\", in{index}_{j}, {len(buf.data)});"
                    )
            for gname, gsize in self.globals:
                body.append(f"        dump(\"GLB:{gname}\", {gname}, {gsize});")
            body.append("    }")
        lines.append("int main(int argc, char **argv) {")
        lines.append("    int idx = argc > 1 ? atoi(argv[1]) : 0;")
        lines.extend(body)
        lines.append("    return 0;")
        lines.append("}")
        return "\n".join(lines) + "\n"

    # -- execution -----------------------------------------------------------

    def run(self, index: int) -> NativeResult:
        """Execute input set ``index`` natively and decode the output."""
        # The timeout guards the differential oracle/reducer against
        # candidate programs that loop forever (the interpreter leg traps on
        # its step budget; the native binary has no such budget).
        proc = subprocess.run(
            self._exec_prefix + [str(self.binary), str(index)],
            check=True,
            capture_output=True,
            text=True,
            timeout=self.run_timeout,
        )
        return_value: Any = None
        arg_values: List[Any] = list(self.inputs[index])
        global_values: Dict[str, Any] = {}
        for line in proc.stdout.splitlines():
            tag, _, payload = line.partition(" ")
            if tag == "RET":
                raw = int(payload)
                if isinstance(self.return_type, ct.IntType):
                    raw = self.return_type.wrap(raw)
                return_value = raw
            elif tag == "RETF":
                return_value = float(payload)
            elif tag.startswith("ARG"):
                j = int(tag[3:])
                buf = self._buffers[index][j]
                data = b"" if payload == "-" else bytes.fromhex(payload)
                if buf is not None:
                    arg_values[j] = _decode_buffer(data, buf, self._resolve)
            elif tag.startswith("GLB:"):
                gname = tag[4:]
                data = b"" if payload == "-" else bytes.fromhex(payload)
                global_values[gname] = _decode_global(
                    data, self._context.global_type(gname)
                )
        return NativeResult(return_value, arg_values, global_values)

    def expected(self, index: int):
        """The interpreter's observable state on the same input."""
        return self._context.interpreter().run_function(self.name, self.inputs[index])


# ---------------------------------------------------------------------------
# Batched execution
# ---------------------------------------------------------------------------


@dataclass
class BatchCase:
    """One case submitted to a :class:`NativeBatch`."""

    source: str
    name: str
    inputs: List[Tuple]
    context: Optional[CaseContext] = None
    #: Pre-compiled assembly (before renaming).  When None the batch
    #: compiles it from the context.
    assembly: Optional[str] = None


@dataclass
class _BatchEntry:
    """Internal per-case build products."""

    case: BatchCase
    context: CaseContext
    symbol: str  # mangled entry-point name
    globals: List[Tuple[str, int]] = field(default_factory=list)  # original names
    buffers: List[List[Optional[_Buffer]]] = field(default_factory=list)


class BatchExecutionError(Exception):
    """The batch binary failed outside any case (infrastructure problem)."""


def _mangle(index: int, name: str) -> str:
    return f"__case{index}_{name}"


def _rename_case_symbols(assembly: str, index: int, names: Sequence[str]) -> str:
    """Make one case's assembly link-safe inside a many-case TU.

    Local labels (``.L...``) get a per-case prefix; the entry point and the
    globals in ``names`` are renamed to their mangled form.  The rename is
    textual but whole-word, which is sound for generator-produced programs:
    their identifiers are fresh (``g4``, ``fuzz_target``) and never collide
    with mnemonics, registers or directives.
    """
    out = re.sub(r"\.L(?=[A-Za-z0-9_])", f".Lc{index}_", assembly)
    for name in names:
        out = re.sub(rf"\b{re.escape(name)}\b", _mangle(index, name), out)
    return out


# ---------------------------------------------------------------------------
# Fork-server harness
# ---------------------------------------------------------------------------

#: Shared struct layout between the precompiled control loop and the
#: generated per-batch symbol table.  Repeated verbatim in both TUs.
_FORK_TABLE_DEFS = """\
typedef struct { const char *name; unsigned char *addr; long size; } mc_global;
typedef struct {
    void (*fn)(void);
    int ret_kind;            /* 0 void, 1 integer, 2 double */
    int nglobals;
    const mc_global *globals;
} mc_case;
"""

#: The generic control loop.  Compiled once per (ISA) into a cached object
#: file; every batch links it against a generated ``mc_cases`` table.  The
#: parent never runs case code: it parses one request line, ``fork()``s,
#: and the child calls the case through a universal trampoline.  The two
#: trampoline shapes are sound because both SysV x86-64 and AAPCS64 assign
#: integer-class arguments to integer registers in order and floating
#: arguments to FP registers in order, independently — so a callee
#: expecting any mix of <=6 integer and <=6 double parameters finds each
#: of them exactly where the 12-argument prototype puts it.
_FORK_HARNESS_C = (
    """\
#include <errno.h>
#include <signal.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <sys/time.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

"""
    + _FORK_TABLE_DEFS
    + """\
extern const mc_case mc_cases[];

typedef long long (*mc_ifn)(long long, long long, long long, long long, long long,
                            long long, double, double, double, double, double, double);
typedef double (*mc_dfn)(long long, long long, long long, long long, long long,
                         long long, double, double, double, double, double, double);

static volatile sig_atomic_t mc_alarm_fired;
static void mc_on_alarm(int sig) { (void)sig; mc_alarm_fired = 1; }

static void mc_dump_hex(const unsigned char *p, long n) {
    if (n == 0) { printf("-\\n"); return; }
    for (long i = 0; i < n; i++) printf("%02x", p[i]);
    printf("\\n");
}

static int mc_hex_nibble(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
}

static char mc_line[1 << 20];

int main(int argc, char **argv) {
    long timeout_ms = argc > 1 ? atol(argv[1]) : 10000;
    struct sigaction sa;
    memset(&sa, 0, sizeof sa);
    sa.sa_handler = mc_on_alarm; /* no SA_RESTART: waitpid must see EINTR */
    sigaction(SIGALRM, &sa, 0);

    while (fgets(mc_line, sizeof mc_line, stdin)) {
        char *tok = strtok(mc_line, " \\n");
        if (!tok || strcmp(tok, "R") != 0) continue;
        tok = strtok(NULL, " \\n");
        int case_index = tok ? atoi(tok) : 0;
        tok = strtok(NULL, " \\n");
        int nargs = tok ? atoi(tok) : 0;
        const mc_case *c = &mc_cases[case_index];
        long long ia[6] = {0};
        double da[6] = {0};
        int argkind[12] = {0};
        unsigned char *argbuf[12] = {0};
        long arglen[12] = {0};
        int ni = 0, nd = 0, bad = (nargs < 0 || nargs > 12);
        for (int j = 0; !bad && j < nargs; j++) {
            tok = strtok(NULL, " \\n");
            if (!tok) { bad = 1; break; }
            if (tok[0] == 'i' && ni < 6) {
                ia[ni++] = (long long)strtoull(tok + 1, 0, 16);
            } else if (tok[0] == 'd' && nd < 6) {
                union { unsigned long long u; double d; } cvt;
                cvt.u = strtoull(tok + 1, 0, 16);
                da[nd++] = cvt.d;
            } else if (tok[0] == 'b' && ni < 6) {
                long n = (long)strlen(tok + 1) / 2;
                unsigned char *p = malloc(n ? n : 1);
                for (long k = 0; k < n; k++) {
                    int hi = mc_hex_nibble(tok[1 + 2 * k]);
                    int lo = mc_hex_nibble(tok[2 + 2 * k]);
                    if (hi < 0 || lo < 0) { bad = 1; break; }
                    p[k] = (unsigned char)((hi << 4) | lo);
                }
                argkind[j] = 1;
                argbuf[j] = p;
                arglen[j] = n;
                ia[ni++] = (long long)p;
            } else {
                bad = 1;
            }
        }
        if (bad) {
            for (int j = 0; j < nargs && j < 12; j++) free(argbuf[j]);
            printf("\\nDONE bad-request\\n");
            fflush(stdout);
            continue;
        }
        /* The child inherits the stdout buffer: make sure it is empty so a
           fork never duplicates parent output. */
        fflush(stdout);
        pid_t pid = fork();
        if (pid < 0) { printf("\\nDONE fork-failed\\n"); fflush(stdout); continue; }
        if (pid == 0) {
            if (c->ret_kind == 2) {
                double r = ((mc_dfn)c->fn)(ia[0], ia[1], ia[2], ia[3], ia[4], ia[5],
                                           da[0], da[1], da[2], da[3], da[4], da[5]);
                printf("RETF %.17g\\n", r);
            } else if (c->ret_kind == 1) {
                long long r = ((mc_ifn)c->fn)(ia[0], ia[1], ia[2], ia[3], ia[4], ia[5],
                                              da[0], da[1], da[2], da[3], da[4], da[5]);
                printf("RET %lld\\n", r);
            } else {
                ((mc_ifn)c->fn)(ia[0], ia[1], ia[2], ia[3], ia[4], ia[5],
                                da[0], da[1], da[2], da[3], da[4], da[5]);
            }
            for (int j = 0; j < nargs; j++)
                if (argkind[j]) { printf("ARG%d ", j); mc_dump_hex(argbuf[j], arglen[j]); }
            for (int g = 0; g < c->nglobals; g++) {
                printf("GLB:%s ", c->globals[g].name);
                mc_dump_hex(c->globals[g].addr, c->globals[g].size);
            }
            fflush(stdout);
            _exit(0);
        }
        mc_alarm_fired = 0;
        struct itimerval itv;
        memset(&itv, 0, sizeof itv);
        itv.it_value.tv_sec = timeout_ms / 1000;
        itv.it_value.tv_usec = (timeout_ms % 1000) * 1000;
        setitimer(ITIMER_REAL, &itv, 0);
        int status = 0, timed_out = 0;
        for (;;) {
            pid_t r = waitpid(pid, &status, 0);
            if (r == pid) break;
            if (r < 0 && errno == EINTR) {
                if (mc_alarm_fired) { mc_alarm_fired = 0; timed_out = 1; kill(pid, SIGKILL); }
                continue;
            }
            if (r < 0) { status = 0; break; }
        }
        memset(&itv, 0, sizeof itv);
        setitimer(ITIMER_REAL, &itv, 0);
        for (int j = 0; j < nargs; j++)
            if (argkind[j]) free(argbuf[j]);
        /* The leading newline terminates any partial line a killed child
           left behind, so DONE always starts a fresh line. */
        if (timed_out)
            printf("\\nDONE timeout\\n");
        else if (WIFSIGNALED(status))
            printf("\\nDONE %d\\n", -WTERMSIG(status));
        else
            printf("\\nDONE %d\\n", WEXITSTATUS(status));
        fflush(stdout);
    }
    return 0;
}
"""
)

_harness_objects: Dict[str, Path] = {}
_harness_dir: Optional[Path] = None


def _forkserver_harness_object(isa: str) -> Path:
    """The control loop compiled for ``isa``, cached per process."""
    global _harness_dir
    cached = _harness_objects.get(isa)
    if cached is not None:
        return cached
    if _harness_dir is None:
        _harness_dir = Path(tempfile.mkdtemp(prefix="mc_forkserver_"))
        atexit.register(shutil.rmtree, _harness_dir, ignore_errors=True)
    source = _harness_dir / f"forkserver_{isa}.c"
    source.write_text(_FORK_HARNESS_C)
    obj = _harness_dir / f"forkserver_{isa}.o"
    if isa == "arm" and platform.machine() != "aarch64":
        cc = _arm_cross_compiler()
        assert cc is not None, "no AArch64 cross compiler available"
    else:
        cc = "gcc"
    subprocess.run(
        [cc, "-O2", "-c", "-o", str(obj), str(source)],
        check=True,
        capture_output=True,
        timeout=120,
    )
    _harness_objects[isa] = obj
    return obj


def _forkserver_ret_kind(return_type: ct.CType) -> int:
    if ct.is_void(return_type):
        return 0
    if isinstance(return_type, ct.FloatType):
        return 2
    return 1


def _forkserver_supported(param_types: Sequence[ct.CType]) -> bool:
    """True when the universal trampoline can call this signature.

    The trampoline passes up to 6 integer-class and 6 double arguments —
    register-only on both ABIs, matching the backends, and comfortably
    above the generator's 5-parameter ceiling.  Anything wider falls back
    to the per-pair subprocess harness.
    """
    ints = sum(1 for t in param_types if not isinstance(t, ct.FloatType))
    floats = len(param_types) - ints
    return ints <= 6 and floats <= 6


def _request_token(value: Any, ptype: ct.CType, buf: Optional[_Buffer]) -> str:
    """One request-line token, mirroring ``_scalar_literal``'s encoding."""
    if buf is not None:
        return "b" + bytes(buf.data).hex()
    if isinstance(ptype, ct.FloatType):
        bits = struct.unpack("<Q", struct.pack("<d", float(value)))[0]
        return f"d{bits:016x}"
    wrapped = ptype.wrap(int(value)) if isinstance(ptype, ct.IntType) else int(value)
    return f"i{wrapped & 0xFFFFFFFFFFFFFFFF:016x}"


#: Every live fork server, so abnormal interpreter exits (unhandled
#: exception, KeyboardInterrupt unwinding past the batch) still reap the
#: server process groups instead of leaking them — previously only the
#: harness *directory* had an atexit hook, never the live children.
_live_servers: "weakref.WeakSet[_ForkServer]" = weakref.WeakSet()


def _kill_live_servers() -> None:
    for server in list(_live_servers):
        server.kill()


atexit.register(_kill_live_servers)


class _ForkServer:
    """One persistent harness process and its line-oriented pipe protocol.

    The process runs in its own session (= its own process group), so
    :meth:`kill` can take down the server *and* any in-flight forked child
    (or the qemu-emulated ARM server's children) with one ``killpg`` —
    a plain ``proc.kill()`` would orphan them.
    """

    def __init__(self, command: Sequence[str]) -> None:
        self.proc = subprocess.Popen(
            list(command),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            bufsize=0,
            start_new_session=True,
        )
        self._buffer = b""
        self._reaped = False
        _live_servers.add(self)

    def send(self, line: str) -> bool:
        try:
            assert self.proc.stdin is not None
            self.proc.stdin.write(line.encode("ascii"))
            self.proc.stdin.flush()
            return True
        except (BrokenPipeError, OSError):
            return False

    def read_line(self, deadline: float) -> Optional[str]:
        """Next output line, or None on EOF/deadline (server considered dead)."""
        assert self.proc.stdout is not None
        fd = self.proc.stdout.fileno()
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = self._buffer[:newline]
                self._buffer = self._buffer[newline + 1 :]
                return line.decode("utf-8", "replace")
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            ready, _, _ = select.select([fd], [], [], remaining)
            if not ready:
                return None
            chunk = os.read(fd, 1 << 16)
            if not chunk:
                return None
            self._buffer += chunk

    def kill(self) -> None:
        """SIGKILL the whole server process group and reap the leader.

        The group kill runs even when the server already exited: a child
        forked for the in-flight pair lives in the same group and must not
        survive its parent.  A vanished group is not an error.  After one
        successful group kill + reap the method is a no-op — the pid (and
        therefore the pgid) may be recycled by then.
        """
        if self._reaped:
            return
        try:
            os.killpg(self.proc.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError, OSError):
            try:
                self.proc.kill()
            except OSError:
                pass
        try:
            self.proc.wait(timeout=5)
            self._reaped = True
        except (OSError, subprocess.TimeoutExpired):
            pass

    def close(self) -> None:
        try:
            if self.proc.stdin is not None:
                self.proc.stdin.close()
            self.proc.wait(timeout=5)
        except (OSError, subprocess.TimeoutExpired):
            pass
        finally:
            self.kill()

    def __del__(self) -> None:
        try:
            self.kill()
        except Exception:
            pass


class NativeBatch:
    """Many cases, one binary per (ISA, opt level), one server per leg.

    In the default **fork-server** mode the binary is the generic control
    loop linked against a generated symbol table: the parent process reads
    (case, input) requests over stdin, forks, and each child calls its
    case through the universal trampoline and dumps the observable state.
    Children inherit pristine globals by copy-on-write, so no snapshot or
    restore is needed, and a trap costs one dead child instead of a
    process relaunch.  Builds run asynchronously — ``ensure_built()``
    joins the compile, and ``outcome()`` calls it implicitly.

    With ``fork_server=False`` the previous dispatching harness is used:
    it executes every pair in order in one subprocess, restoring globals
    from a startup snapshot and bracketing each pair with ``PAIR n`` /
    ``DONE n`` markers; a trapping pair kills the process *after* its
    ``PAIR`` marker has been flushed, so the parent attributes the signal
    and relaunches from the next pair.  Both modes produce byte-identical
    outcomes; the subprocess mode is kept as the parity reference.
    """

    def __init__(
        self,
        cases: Sequence[BatchCase],
        opt_level: str,
        workdir: Path,
        isa: str = "x86",
        asm_transform: Optional[Callable[[str], str]] = None,
        run_timeout: float = 10.0,
        tag: str = "batch",
        fork_server: Optional[bool] = None,
        cache=None,
    ) -> None:
        self.opt_level = opt_level
        self.isa = isa
        self.run_timeout = run_timeout
        self.entries: List[_BatchEntry] = []
        self._pairs: List[Tuple[int, int]] = []  # flat -> (case, input)
        self._outcomes: Optional[Dict[Tuple[int, int], Tuple[str, Any]]] = None
        self._failure: Optional[Exception] = None
        self._requests: List[str] = []
        self._build_proc: Optional[subprocess.Popen] = None
        self._build_error: Optional[Exception] = None
        self._build_cmd: List[str] = []
        self._cache = cache
        self._cache_key: Optional[str] = None
        # Lifecycle state: close() may race an executing thread, so the
        # live server handle is swapped under a lock.
        self._server: Optional[_ForkServer] = None
        self._closed = False
        self._lifecycle_lock = threading.Lock()

        asm_parts: List[str] = []
        for index, case in enumerate(cases):
            context = case.context if case.context is not None else CaseContext(
                case.source, case.name
            )
            assembly = (
                case.assembly
                if case.assembly is not None
                else context.assembly(isa, opt_level)
            )
            if asm_transform is not None:
                assembly = asm_transform(assembly)
            entry = _BatchEntry(case, context, _mangle(index, case.name))
            entry.globals = _assembly_globals(assembly)
            asm_parts.append(
                _rename_case_symbols(
                    assembly, index, [case.name] + [g for g, _ in entry.globals]
                )
            )
            self.entries.append(entry)
            for input_index in range(len(case.inputs)):
                self._pairs.append((index, input_index))

        if fork_server is None:
            fork_server = True
        self.fork_server = fork_server and all(
            _forkserver_supported(entry.context.param_types()) for entry in self.entries
        )

        asm_text = "\n".join(asm_parts)
        self.binary = workdir / f"{tag}_{isa}_{opt_level}"
        # The generated C is produced either way: _generate_table/_generate
        # _harness also encode the request lines and argument buffers the
        # execution path needs, and the text is part of the cache key.
        generated = (
            self._generate_table() if self.fork_server else self._generate_harness()
        )
        if cache is not None:
            self._cache_key = cache.key(
                "binary",
                isa,
                "fork" if self.fork_server else "harness",
                _toolchain_id(isa),
                asm_text,
                generated,
            )
            if cache.get_file("binary", self._cache_key, self.binary):
                self._cache_key = None  # satisfied: nothing to store later
                if isa == "arm" and platform.machine() != "aarch64":
                    self._exec_prefix = _arm_emulator() or []
                else:
                    self._exec_prefix = []
                return
        asm_path = workdir / f"{tag}_{isa}_{opt_level}.s"
        asm_path.write_text(asm_text)
        if self.fork_server:
            table_path = workdir / f"{tag}_{isa}_{opt_level}_table.c"
            table_path.write_text(generated)
            sources = [_forkserver_harness_object(isa), table_path, asm_path]
        else:
            harness_path = workdir / f"{tag}_{isa}_{opt_level}_main.c"
            harness_path.write_text(generated)
            sources = [harness_path, asm_path]
        build, self._exec_prefix = _build_command(isa, self.binary, sources)
        self._build_cmd = build
        self._build_proc = subprocess.Popen(
            build, stdout=subprocess.PIPE, stderr=subprocess.PIPE
        )

    def ensure_built(self) -> None:
        """Join the asynchronous build, raising on compiler failure."""
        if self._build_error is not None:
            raise self._build_error
        if self._build_proc is None:
            return
        proc = self._build_proc
        self._build_proc = None
        try:
            stdout, stderr = proc.communicate(
                timeout=batch_build_timeout(self.run_timeout, len(self._pairs))
            )
        except subprocess.TimeoutExpired:
            proc.kill()
            stdout, stderr = proc.communicate()
            self._build_error = subprocess.CalledProcessError(
                -9, self._build_cmd, stdout, stderr
            )
            raise self._build_error
        if proc.returncode != 0:
            self._build_error = subprocess.CalledProcessError(
                proc.returncode, self._build_cmd, stdout, stderr
            )
            raise self._build_error
        if self._cache is not None and self._cache_key is not None:
            self._cache.put_file("binary", self._cache_key, self.binary)
            self._cache_key = None

    def abandon(self) -> None:
        """Reap a still-running build whose results will never be used."""
        if self._build_proc is not None:
            self._build_proc.kill()
            self._build_proc.communicate()
            self._build_proc = None
            self._build_error = BatchExecutionError("batch abandoned")

    def close(self) -> None:
        """Release every live child process owned by this batch.

        Kills the in-flight fork server's process group (server plus any
        forked child) and reaps a still-running asynchronous build.  After
        closing, :meth:`outcome` raises :class:`BatchExecutionError` —
        results already drained remain readable by whoever holds them.
        Idempotent, and safe to call from a thread other than the one
        executing the batch (the service's shutdown path does exactly
        that).
        """
        with self._lifecycle_lock:
            self._closed = True
            server, self._server = self._server, None
        if server is not None:
            server.kill()
        self.abandon()

    def __enter__(self) -> "NativeBatch":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __del__(self) -> None:
        # Backstop for abnormal unwinds that skip the context manager; the
        # getattr guards cover objects whose __init__ itself failed.
        if getattr(self, "_lifecycle_lock", None) is None:
            return
        try:
            self.close()
        except Exception:
            pass

    # -- C generation --------------------------------------------------------

    def _generate_table(self) -> str:
        """The per-batch symbol table TU linked against the control loop.

        Also encodes every (case, input) pair into its request line and
        records the argument buffers, exactly as ``_generate_harness``
        does for the subprocess mode.
        """
        lines = [_FORK_TABLE_DEFS]
        for index, entry in enumerate(self.entries):
            lines.append(f"extern void {entry.symbol}(void);")
            for gname, _ in entry.globals:
                lines.append(f"extern unsigned char {_mangle(index, gname)}[];")
            if entry.globals:
                rows = ", ".join(
                    f'{{ "{gname}", {_mangle(index, gname)}, {gsize} }}'
                    for gname, gsize in entry.globals
                )
                lines.append(
                    f"static const mc_global mc_globals_{index}[] = {{ {rows} }};"
                )
        lines.append("const mc_case mc_cases[] = {")
        for index, entry in enumerate(self.entries):
            ret_kind = _forkserver_ret_kind(entry.context.return_type())
            globals_ref = f"mc_globals_{index}" if entry.globals else "0"
            lines.append(
                f"    {{ {entry.symbol}, {ret_kind}, {len(entry.globals)}, {globals_ref} }},"
            )
        lines.append("};")
        lines.append(f"const int mc_case_count = {len(self.entries)};")

        # Requests are emitted in flat-pair order: cases in batch order,
        # each case's input vectors in order — exactly ``self._pairs``.
        self._requests = []
        for case_index, entry in enumerate(self.entries):
            param_types = entry.context.param_types()
            entry.buffers = []
            for args in entry.case.inputs:
                buffers: List[Optional[_Buffer]] = []
                tokens: List[str] = []
                for value, ptype in zip(args, param_types):
                    buf = _encode_argument(value, ptype, entry.context.resolve)
                    buffers.append(buf)
                    tokens.append(_request_token(value, ptype, buf))
                entry.buffers.append(buffers)
                self._requests.append(
                    " ".join(["R", str(case_index), str(len(tokens)), *tokens]) + "\n"
                )
        return "\n".join(lines) + "\n"

    def _generate_harness(self) -> str:
        lines = [
            "#include <stdio.h>",
            "#include <stdlib.h>",
            "#include <string.h>",
            "",
        ]
        for index, entry in enumerate(self.entries):
            context = entry.context
            lines.append(
                _prototype(entry.symbol, context.param_types(), context.return_type())
            )
            for gname, gsize in entry.globals:
                lines.append(f"extern unsigned char {_mangle(index, gname)}[];")
                lines.append(f"static unsigned char snap{index}_{gname}[{gsize}];")
        lines.append(_DUMP_HELPER)
        lines.append(_BITS_HELPER)
        lines.append("int main(int argc, char **argv) {")
        lines.append("    long start = argc > 1 ? atol(argv[1]) : 0;")
        lines.append("    long pair = -1;")
        # Snapshot every case's pristine globals before anything runs.
        for index, entry in enumerate(self.entries):
            for gname, gsize in entry.globals:
                lines.append(
                    f"    memcpy(snap{index}_{gname}, {_mangle(index, gname)}, {gsize});"
                )

        for index, entry in enumerate(self.entries):
            context = entry.context
            param_types = context.param_types()
            return_type = context.return_type()
            entry.buffers = []
            for input_index, args in enumerate(entry.case.inputs):
                buffers: List[Optional[_Buffer]] = []
                call_args: List[str] = []
                decls: List[str] = []
                for j, (value, ptype) in enumerate(zip(args, param_types)):
                    buf = _encode_argument(value, ptype, context.resolve)
                    buffers.append(buf)
                    if buf is None:
                        call_args.append(_scalar_literal(value, ptype))
                    else:
                        cname = f"in{index}_{input_index}_{j}"
                        data = ", ".join(str(b) for b in buf.data)
                        decls.append(
                            f"        static unsigned char {cname}[] = {{ {data} }};"
                        )
                        call_args.append(f"(long long){cname}")
                entry.buffers.append(buffers)
                lines.append("    pair++;")
                lines.append("    if (pair >= start) {")
                lines.extend(decls)
                # The PAIR marker is flushed before the call so a trapping
                # pair is attributable from the partial output.
                lines.append('        printf("PAIR %ld\\n", pair); fflush(stdout);')
                for gname, gsize in entry.globals:
                    lines.append(
                        f"        memcpy({_mangle(index, gname)}, snap{index}_{gname}, {gsize});"
                    )
                call = f"{entry.symbol}({', '.join(call_args)})"
                if ct.is_void(return_type):
                    lines.append(f"        {call};")
                elif isinstance(return_type, ct.FloatType):
                    lines.append(f'        printf("RETF %.17g\\n", {call});')
                else:
                    lines.append(f'        printf("RET %lld\\n", {call});')
                for j, buf in enumerate(buffers):
                    if buf is not None:
                        lines.append(
                            f'        dump("ARG{j}", in{index}_{input_index}_{j}, {len(buf.data)});'
                        )
                for gname, gsize in entry.globals:
                    lines.append(
                        f'        dump("GLB:{gname}", {_mangle(index, gname)}, {gsize});'
                    )
                lines.append('        printf("DONE %ld\\n", pair); fflush(stdout);')
                lines.append("    }")
        lines.append("    return 0;")
        lines.append("}")
        return "\n".join(lines) + "\n"

    # -- execution -----------------------------------------------------------

    #: Wall-clock allowance per (case, input) pair on top of ``run_timeout``.
    #: A healthy pair runs in microseconds; this exists so one invocation
    #: covering hundreds of pairs (or slow qemu-emulated legs) is not held
    #: to the single-pair budget the per-case path uses.
    PER_PAIR_ALLOWANCE = 0.1

    def _run_from(self, start: int) -> Tuple[Optional[int], str, Optional[int]]:
        """One harness invocation: (in-flight pair, stdout, returncode).

        ``returncode`` is None when the invocation timed out.  The timeout
        scales with the number of pairs the invocation still has to run:
        ``run_timeout`` bounds any single runaway pair (matching the
        sequential path's per-vector budget) and the per-pair allowance
        funds the legitimate aggregate runtime of the rest of the batch.
        """
        remaining = len(self._pairs) - start
        try:
            proc = subprocess.run(
                self._exec_prefix + [str(self.binary), str(start)],
                capture_output=True,
                text=True,
                timeout=self.run_timeout + self.PER_PAIR_ALLOWANCE * remaining,
            )
            stdout, returncode = proc.stdout, proc.returncode
        except subprocess.TimeoutExpired as exc:
            stdout = exc.stdout or ""
            if isinstance(stdout, bytes):
                stdout = stdout.decode("utf-8", "replace")
            returncode = None
        inflight: Optional[int] = None
        record: List[str] = []
        for line in stdout.splitlines():
            tag, _, payload = line.partition(" ")
            if tag == "PAIR":
                inflight = int(payload)
                record = []
            elif tag == "DONE":
                flat = int(payload)
                self._decode_pair(flat, record)
                inflight = None
            else:
                record.append(line)
        return inflight, stdout, returncode

    #: Restarts tolerated per pair before the batch is declared broken.
    MAX_PAIR_RETRIES = 2

    def _execute(self) -> None:
        if self._failure is not None:
            raise self._failure
        if self._outcomes is not None:
            return
        if self._closed:
            raise BatchExecutionError("batch closed")
        try:
            self.ensure_built()
        except Exception as exc:
            self._failure = exc
            raise
        if self.fork_server:
            self._execute_forkserver()
        else:
            self._execute_subprocess()

    def _spawn_server(self, command: Sequence[str]) -> _ForkServer:
        """Start a fork server registered for close(); raises once closed."""
        with self._lifecycle_lock:
            if self._closed:
                raise BatchExecutionError("batch closed")
            server = _ForkServer(command)
            self._server = server
            return server

    def _drop_server(self) -> Optional[_ForkServer]:
        with self._lifecycle_lock:
            server, self._server = self._server, None
            return server

    def _execute_forkserver(self) -> None:
        self._outcomes = {}
        command = self._exec_prefix + [
            str(self.binary),
            str(int(self.run_timeout * 1000)),
        ]
        try:
            flat = 0
            retries = 0
            total = len(self._pairs)
            while flat < total:
                server = self._server
                if server is None:
                    server = self._spawn_server(command)
                code, record = self._request_pair(server, flat)
                if code is None:
                    # Server died or hung: restart and retry this pair —
                    # unless close() is what killed it.
                    self._drop_server()
                    server.kill()
                    if self._closed:
                        self._outcomes = None
                        self._failure = BatchExecutionError("batch closed")
                        raise self._failure
                    retries += 1
                    if retries > self.MAX_PAIR_RETRIES:
                        # A pair that kills the server on every attempt
                        # (e.g. a crash before the response line is
                        # flushed) is charged to *that pair* as a limit
                        # outcome; the rest of the batch proceeds on a
                        # fresh server instead of restarting forever or
                        # failing the whole batch.
                        self._outcomes[self._pairs[flat]] = (
                            "limit",
                            f"fork server died {retries} times on this pair",
                        )
                        flat += 1
                        retries = 0
                    continue
                if code == "0":
                    self._decode_pair(flat, record)
                elif code == "timeout":
                    self._outcomes[self._pairs[flat]] = ("limit", "execution timeout")
                else:
                    try:
                        status = int(code)
                    except ValueError:
                        self._outcomes = None
                        self._failure = BatchExecutionError(
                            f"fork server rejected pair {flat}: {code}"
                        )
                        raise self._failure
                    self._outcomes[self._pairs[flat]] = (
                        "trap",
                        f"exit status {status}",
                    )
                flat += 1
                retries = 0
        finally:
            leftover = self._drop_server()
            if leftover is not None:
                leftover.close()

    def _request_pair(
        self, server: _ForkServer, flat: int
    ) -> Tuple[Optional[str], List[str]]:
        """Run one pair on the server: (DONE code, record lines).

        A ``None`` code means the server is unusable (EOF, broken pipe, or
        no response before the deadline) and the caller should restart it.
        """
        if not server.send(self._requests[flat]):
            return None, []
        # The server enforces the per-pair timeout itself; the deadline
        # here only guards against the server process itself wedging.
        deadline = time.monotonic() + self.run_timeout + 30.0
        record: List[str] = []
        while True:
            line = server.read_line(deadline)
            if line is None:
                return None, []
            if not line:
                continue
            if line.startswith("DONE "):
                return line[5:], record
            record.append(line)

    def _execute_subprocess(self) -> None:
        self._outcomes = {}
        start = 0
        total = len(self._pairs)
        while start < total:
            inflight, _, returncode = self._run_from(start)
            if returncode == 0 and inflight is None:
                break
            if inflight is None:
                # Died outside any case: nothing to attribute the failure to.
                self._outcomes = None
                self._failure = BatchExecutionError(
                    f"batch binary failed with status {returncode!r} "
                    f"outside any case (started at pair {start})"
                )
                raise self._failure
            if returncode is None:
                self._outcomes[self._pairs[inflight]] = ("limit", "execution timeout")
            else:
                self._outcomes[self._pairs[inflight]] = (
                    "trap",
                    f"exit status {returncode}",
                )
            start = inflight + 1

    def _decode_pair(self, flat: int, record: List[str]) -> None:
        case_index, input_index = self._pairs[flat]
        entry = self.entries[case_index]
        return_type = entry.context.return_type()
        return_value: Any = None
        arg_values: List[Any] = list(entry.case.inputs[input_index])
        global_values: Dict[str, Any] = {}
        for line in record:
            tag, _, payload = line.partition(" ")
            if tag == "RET":
                raw = int(payload)
                if isinstance(return_type, ct.IntType):
                    raw = return_type.wrap(raw)
                return_value = raw
            elif tag == "RETF":
                return_value = float(payload)
            elif tag.startswith("ARG"):
                j = int(tag[3:])
                buf = entry.buffers[input_index][j]
                data = b"" if payload == "-" else bytes.fromhex(payload)
                if buf is not None:
                    arg_values[j] = _decode_buffer(data, buf, entry.context.resolve)
            elif tag.startswith("GLB:"):
                gname = tag[4:]
                data = b"" if payload == "-" else bytes.fromhex(payload)
                global_values[gname] = _decode_global(
                    data, entry.context.global_type(gname)
                )
        assert self._outcomes is not None
        self._outcomes[(case_index, input_index)] = (
            "ok",
            NativeResult(return_value, arg_values, global_values),
        )

    def outcome(self, case_index: int, input_index: int) -> Tuple[str, Any]:
        """("ok", NativeResult) | ("trap", detail) | ("limit", detail)."""
        self._execute()
        assert self._outcomes is not None
        return self._outcomes[(case_index, input_index)]


def batch_build_timeout(run_timeout: float, pairs: int) -> float:
    """Deadline for joining one batch's asynchronous toolchain build.

    300s is generous for any healthy compile+link, but a batch whose
    *execution* budget (``run_timeout`` for one runaway pair plus the
    per-pair allowance for the rest) legitimately exceeds it must not have
    its build capped below that budget — a slow-but-healthy large batch
    would be killed mid-build and misattributed as a toolchain failure.
    """
    return max(300.0, run_timeout + NativeBatch.PER_PAIR_ALLOWANCE * pairs)


#: Cap on cases per cross-unit native build in :class:`GroupedBatchRunner`.
#: Units are never split across groups, so a group build/run failure can
#: fall back to exactly the per-unit execution path.
DEFAULT_GROUP_CASES = 32


class GroupedBatchRunner:
    """Cross-unit :class:`NativeBatch` groups with build/execute overlap.

    A *unit* is a list of :class:`BatchCase` objects that must stay
    together (the eval scorer's unit is one function's gate survivors; the
    repair search's unit is one target's neighbor chunk).  Units are packed
    greedily into shared batches of up to ``group_cases`` cases, so the
    toolchain runs once per group instead of once per unit, and the next
    group's build is launched before the current group is drained
    (constructing a :class:`NativeBatch` starts its build asynchronously).

    :meth:`run` yields ``(unit_index, outcomes)`` in unit order, where
    ``outcomes[case][input]`` is the raw ``NativeBatch.outcome`` tuple —
    or ``None`` for every unit of a group whose build or drain failed, in
    which case the caller re-executes those units on its own fallback path
    (keeping failure attribution identical to the ungrouped executor).
    Units with no cases are skipped entirely.
    """

    def __init__(
        self,
        opt_level: str,
        workdir: Path,
        isa: str = "x86",
        fork_server: bool = True,
        group_cases: int = DEFAULT_GROUP_CASES,
        tag_prefix: str = "evalg",
        run_timeout: float = 10.0,
        cache=None,
    ) -> None:
        self.opt_level = opt_level
        self.workdir = workdir
        self.isa = isa
        self.fork_server = fork_server
        self.group_cases = group_cases
        self.tag_prefix = tag_prefix
        self.run_timeout = run_timeout
        self.cache = cache
        self._current: Optional[NativeBatch] = None
        self._next: Optional[NativeBatch] = None

    def _pack(self, units: Sequence[Sequence[BatchCase]]) -> List[List[int]]:
        """Whole units, packed greedily up to the group cap (a unit larger
        than the cap gets a group of its own)."""
        groups: List[List[int]] = []
        current: List[int] = []
        current_size = 0
        for index, unit in enumerate(units):
            if not unit:
                continue
            if current and current_size + len(unit) > self.group_cases:
                groups.append(current)
                current, current_size = [], 0
            current.append(index)
            current_size += len(unit)
        if current:
            groups.append(current)
        return groups

    def _make_batch(
        self, units: Sequence[Sequence[BatchCase]], groups: List[List[int]],
        group_index: int,
    ) -> Optional[NativeBatch]:
        cases = [case for index in groups[group_index] for case in units[index]]
        try:
            return NativeBatch(
                cases,
                self.opt_level,
                self.workdir,
                isa=self.isa,
                run_timeout=self.run_timeout,
                tag=f"{self.tag_prefix}{group_index}",
                fork_server=self.fork_server,
                cache=self.cache,
            )
        except (subprocess.CalledProcessError, subprocess.TimeoutExpired, OSError):
            return None

    def close(self) -> None:
        """Kill/reap the current group's server and the lookahead build.

        Called from the generator's ``finally`` (so an interrupted consumer
        leaks nothing) and usable directly — the runner is a context
        manager for callers that keep one alive across requests.
        """
        for batch in (self._current, self._next):
            if batch is not None:
                batch.close()
        self._current = self._next = None

    def __enter__(self) -> "GroupedBatchRunner":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def run(
        self, units: Sequence[Sequence[BatchCase]]
    ) -> Iterator[Tuple[int, Optional[List[List[Tuple[str, Any]]]]]]:
        groups = self._pack(units)
        # One group of lookahead: group N+1 compiles while N executes.
        # Both live batches are tracked on the runner so that close() — or
        # this generator's own finally, which runs on GeneratorExit when
        # the consumer breaks out or an interrupt unwinds it — kills their
        # fork servers and reaps their builds instead of leaking them.
        self._next = self._make_batch(units, groups, 0) if groups else None
        try:
            for group_index, unit_indices in enumerate(groups):
                self._current, self._next = self._next, (
                    self._make_batch(units, groups, group_index + 1)
                    if group_index + 1 < len(groups)
                    else None
                )
                batch = self._current
                results: Dict[int, List[List[Tuple[str, Any]]]] = {}
                failed = batch is None
                if batch is not None:
                    try:
                        cursor = 0
                        for unit_index in unit_indices:
                            per_case: List[List[Tuple[str, Any]]] = []
                            for case in units[unit_index]:
                                per_case.append(
                                    [
                                        batch.outcome(cursor, input_index)
                                        for input_index in range(len(case.inputs))
                                    ]
                                )
                                cursor += 1
                            results[unit_index] = per_case
                    except (
                        subprocess.CalledProcessError,
                        subprocess.TimeoutExpired,
                        BatchExecutionError,
                        OSError,
                    ):
                        failed = True
                for unit_index in unit_indices:
                    yield unit_index, (None if failed else results[unit_index])
                if batch is not None:
                    batch.close()
                self._current = None
        finally:
            self.close()


def values_equal(left: Any, right: Any) -> bool:
    """Structural equality with float tolerance (re-exported convenience)."""
    from repro.testing.oracle import values_equal as impl

    return impl(left, right)


__all__ = [
    "BatchCase",
    "BatchExecutionError",
    "DEFAULT_GROUP_CASES",
    "GroupedBatchRunner",
    "NativeBatch",
    "NativeFunction",
    "NativeResult",
    "batch_build_timeout",
    "have_arm_toolchain",
    "have_native_toolchain",
    "values_equal",
]
