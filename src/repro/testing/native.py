"""Native build-and-execute harnesses for compiled Mini-C assembly.

This is the "run the ground truth for real" half of the paper's
IO-equivalence check.  Two harnesses share the same encoding/decoding
machinery:

* :class:`NativeFunction` — one case per binary, one subprocess per input
  vector.  Simple, fully isolated; used by the native execution tests and
  as the oracle's sequential reference path.
* :class:`NativeBatch` — N cases compiled into **one** translation unit
  per (ISA, opt level), linked against a single dispatching harness and
  executed with **one** subprocess per leg (plus one extra per observed
  trap/timeout, to resume past it).  Toolchain invocations drop from
  O(cases x legs) to O(legs) per batch, which is where almost all of the
  fuzz pipeline's wall-clock used to go.

Batching shares one process across cases, so per-case symbols are made
unique: the entry point and every global are renamed ``__caseN_<name>``
(whole-word textual rename — safe for generator-produced programs, whose
identifiers never collide with assembly keywords), and local labels get a
per-case prefix.  Each case's globals are snapshotted at process start and
restored before every call so every (case, input) pair still observes the
pristine initialisers, exactly like a fresh per-case process would.

Argument buffers use the interpreter's packed memory layout (structs have
no padding), so they are encoded/decoded here as raw bytes rather than
declared as C aggregates.  Scalar parameters are passed through ``long
long``/``double`` prototypes: the compiled code expects integer arguments
sign- or zero-extended to the full 64-bit register, which is exactly what
a ``long long`` prototype makes the C caller do.
"""

from __future__ import annotations

import platform
import re
import shutil
import struct
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.lang import ctypes as ct
from repro.testing.frontend import CaseContext


def have_native_toolchain() -> bool:
    """True when the host can assemble and run x86-64 code."""
    return (
        platform.machine() in ("x86_64", "AMD64")
        and shutil.which("as") is not None
        and shutil.which("gcc") is not None
    )

def _arm_cross_compiler() -> Optional[str]:
    for cc in ("aarch64-linux-gnu-gcc", "aarch64-unknown-linux-gnu-gcc"):
        if shutil.which(cc):
            return cc
    return None


def _arm_emulator() -> Optional[List[str]]:
    if platform.machine() == "aarch64":
        return []  # run directly on the host
    for emulator in ("qemu-aarch64", "qemu-aarch64-static"):
        if shutil.which(emulator):
            return [emulator]
    return None


def have_arm_toolchain() -> bool:
    """True when AArch64 output can be assembled and executed.

    Either the host itself is aarch64 with a GNU toolchain, or a cross
    compiler plus ``qemu-aarch64`` user-mode emulation is installed.
    """
    if platform.machine() == "aarch64":
        return shutil.which("gcc") is not None
    return _arm_cross_compiler() is not None and _arm_emulator() is not None


# ---------------------------------------------------------------------------
# Packed-byte encoding of Python argument values (mirrors the interpreter's
# marshalling in Interpreter._marshal_argument / read_typed / write_typed).
# ---------------------------------------------------------------------------


def _encode_scalar(value: Any, t: ct.CType) -> bytes:
    if isinstance(t, ct.FloatType):
        return struct.pack("<f" if t.sizeof() == 4 else "<d", float(value))
    size = t.sizeof()
    return (int(value) & ((1 << (8 * size)) - 1)).to_bytes(size, "little")


def _decode_scalar(data: bytes, t: ct.CType) -> Any:
    if isinstance(t, ct.FloatType):
        return struct.unpack("<f" if t.sizeof() == 4 else "<d", data)[0]
    signed = not (isinstance(t, ct.IntType) and t.unsigned)
    if isinstance(t, (ct.PointerType, ct.ArrayType)):
        signed = False
    return int.from_bytes(data, "little", signed=signed)


@dataclass
class _Buffer:
    """A pointer argument's backing bytes and how to read it back."""

    data: bytearray
    elem: Optional[ct.CType] = None  # list arguments
    count: int = 0
    struct_type: Optional[ct.StructType] = None  # dict arguments
    as_string: bool = False


def _encode_argument(value: Any, ptype: ct.CType, resolve) -> Optional[_Buffer]:
    """Encode a Python pointer-argument into packed bytes (None for scalars)."""
    if isinstance(value, str) and isinstance(ptype, ct.PointerType):
        data = bytearray(len(value) + 16)
        raw = value.encode("latin-1", errors="replace")
        data[: len(raw)] = raw
        return _Buffer(data, elem=ct.CHAR, count=len(value) + 1, as_string=True)
    if isinstance(value, (list, tuple)) and isinstance(ptype, ct.PointerType):
        elem = resolve(ptype.pointee)
        if isinstance(elem, ct.VoidType):
            elem = ct.CHAR
        data = bytearray(max(1, len(value)) * elem.sizeof() + 16)
        for index, item in enumerate(value):
            encoded = _encode_scalar(item, elem)
            data[index * elem.sizeof() : index * elem.sizeof() + len(encoded)] = encoded
        return _Buffer(data, elem=elem, count=len(value))
    if isinstance(value, dict) and isinstance(ptype, ct.PointerType):
        struct_type = resolve(ptype.pointee)
        data = bytearray(max(struct_type.sizeof(), 8) + 8)
        for fname, fvalue in value.items():
            if struct_type.has_field(fname):
                ftype = resolve(struct_type.field_type(fname))
                encoded = _encode_scalar(fvalue, ftype)
                offset = struct_type.field_offset(fname)
                data[offset : offset + len(encoded)] = encoded
        return _Buffer(data, struct_type=struct_type)
    return None


def _decode_buffer(data: bytes, buf: _Buffer, resolve) -> Any:
    if buf.struct_type is not None:
        out: Dict[str, Any] = {}
        for fld in buf.struct_type.fields:
            ftype = resolve(fld.type)
            offset = buf.struct_type.field_offset(fld.name)
            out[fld.name] = _decode_scalar(data[offset : offset + ftype.sizeof()], ftype)
        return out
    elem = buf.elem or ct.CHAR
    values = [
        _decode_scalar(data[i * elem.sizeof() : (i + 1) * elem.sizeof()], elem)
        for i in range(buf.count)
    ]
    if buf.as_string:
        chars: List[str] = []
        for v in values:
            if v == 0:
                break
            chars.append(chr(int(v) & 0xFF))
        return "".join(chars)
    return values


def _decode_global(data: bytes, gtype: ct.CType) -> Any:
    if isinstance(gtype, ct.ArrayType):
        elem = gtype.element
        return [
            _decode_scalar(data[i * elem.sizeof() : (i + 1) * elem.sizeof()], elem)
            for i in range(gtype.length or 0)
        ]
    return _decode_scalar(data, gtype)


# ---------------------------------------------------------------------------
# Harness generation
# ---------------------------------------------------------------------------

_DUMP_HELPER = """
static void dump(const char *tag, const unsigned char *p, long n) {
    printf("%s ", tag);
    if (n == 0) { printf("-\\n"); return; }
    for (long i = 0; i < n; i++) printf("%02x", p[i]);
    printf("\\n");
}
"""

_BITS_HELPER = """
static double bits_to_double(unsigned long long u) {
    union { unsigned long long u; double d; } cvt; cvt.u = u; return cvt.d;
}
"""


def _scalar_literal(value: Any, t: ct.CType) -> str:
    if isinstance(t, ct.FloatType):
        bits = struct.unpack("<Q", struct.pack("<d", float(value)))[0]
        return f"bits_to_double(0x{bits:016x}ULL)"
    wrapped = t.wrap(int(value)) if isinstance(t, ct.IntType) else int(value)
    return f"(long long)0x{wrapped & 0xFFFFFFFFFFFFFFFF:016x}ULL"


def _prototype(symbol: str, param_types: Sequence[ct.CType], return_type: ct.CType) -> str:
    args = ", ".join(
        "double" if isinstance(t, ct.FloatType) else "long long" for t in param_types
    ) or "void"
    if ct.is_void(return_type):
        ret = "void"
    elif isinstance(return_type, ct.FloatType):
        ret = "double"
    else:
        ret = "long long"
    return f"extern {ret} {symbol}({args});"


def _assembly_globals(assembly: str) -> List[Tuple[str, int]]:
    """(name, size) for every global data symbol the assembly defines.

    Covers both zero-filled ``.comm`` symbols and initialised ``.data``
    objects (recognised by their ``.size name, N`` directive; function
    symbols use ``.size name, .-name`` and so never match).
    """
    found = [
        (name, int(size))
        for name, size in re.findall(r"^\t\.comm\t([A-Za-z_]\w*),(\d+)", assembly, re.M)
    ]
    found.extend(
        (name, int(size))
        for name, size in re.findall(
            r"^\t\.size\t([A-Za-z_]\w*), (\d+)$", assembly, re.M
        )
    )
    return found


def _build_command(
    isa: str, binary: Path, sources: Sequence[Path]
) -> Tuple[List[str], List[str]]:
    """(build command, execution prefix) for one linked harness binary."""
    if isa == "arm" and platform.machine() != "aarch64":
        cc = _arm_cross_compiler()
        assert cc is not None, "no AArch64 cross compiler available"
        build = [cc, "-static", "-o", str(binary), *map(str, sources)]
        return build, _arm_emulator() or []
    build = ["gcc", "-no-pie", "-o", str(binary), *map(str, sources)]
    return build, []


@dataclass
class NativeResult:
    """Observable state of one native execution."""

    return_value: Any
    arg_values: List[Any]
    globals: Dict[str, Any]


class NativeFunction:
    """A corpus function assembled to a host executable (one case, one
    subprocess per input vector).

    ``isa`` selects the backend: ``"x86"`` builds with the host toolchain,
    ``"arm"`` builds a static binary with the AArch64 cross compiler and
    executes it under ``qemu-aarch64`` (or directly on aarch64 hosts).
    ``asm_transform``, when given, rewrites the assembly text before it is
    assembled — the fuzzer uses this to inject deliberate miscompiles.
    ``context`` shares an already-computed front half (parse/typecheck/
    lowered IR) so repeated builds of one case do not repeat it.
    """

    def __init__(
        self,
        source: str,
        name: str,
        inputs: Sequence[Tuple[Any, ...]],
        opt_level: str,
        workdir: Path,
        isa: str = "x86",
        asm_transform: Optional[Callable[[str], str]] = None,
        run_timeout: float = 10.0,
        context: Optional[CaseContext] = None,
    ) -> None:
        self.source = source
        self.name = name
        self.inputs = list(inputs)
        self.opt_level = opt_level
        self.isa = isa
        self.run_timeout = run_timeout
        self._context = context if context is not None else CaseContext(source, name)
        self._resolve = self._context.resolve
        self.param_types = self._context.param_types()
        self.return_type = self._context.return_type()
        assembly = self._context.assembly(isa, opt_level)
        if asm_transform is not None:
            assembly = asm_transform(assembly)
        self.globals = _assembly_globals(assembly)
        self._buffers: List[List[Optional[_Buffer]]] = []
        asm_path = workdir / f"{name}_{isa}_{opt_level}.s"
        asm_path.write_text(assembly)
        harness_path = workdir / f"{name}_{isa}_{opt_level}_main.c"
        harness_path.write_text(self._generate_harness())
        self.binary = workdir / f"{name}_{isa}_{opt_level}"
        build, self._exec_prefix = _build_command(isa, self.binary, [harness_path, asm_path])
        subprocess.run(build, check=True, capture_output=True, timeout=120)

    # -- C generation --------------------------------------------------------

    def _generate_harness(self) -> str:
        lines = [
            "#include <stdio.h>",
            "#include <stdlib.h>",
            "",
            _prototype(self.name, self.param_types, self.return_type),
        ]
        for gname, _ in self.globals:
            lines.append(f"extern unsigned char {gname}[];")
        lines.append(_DUMP_HELPER)
        lines.append(_BITS_HELPER)
        body: List[str] = []
        for index, args in enumerate(self.inputs):
            buffers: List[Optional[_Buffer]] = []
            call_args: List[str] = []
            decls: List[str] = []
            for j, (value, ptype) in enumerate(zip(args, self.param_types)):
                buf = _encode_argument(value, ptype, self._resolve)
                buffers.append(buf)
                if buf is None:
                    call_args.append(_scalar_literal(value, ptype))
                else:
                    cname = f"in{index}_{j}"
                    data = ", ".join(str(b) for b in buf.data)
                    decls.append(f"static unsigned char {cname}[] = {{ {data} }};")
                    call_args.append(f"(long long){cname}")
            self._buffers.append(buffers)
            body.append(f"    if (idx == {index}) {{")
            for decl in decls:
                body.append(f"        {decl}")
            call = f"{self.name}({', '.join(call_args)})"
            if ct.is_void(self.return_type):
                body.append(f"        {call};")
            elif isinstance(self.return_type, ct.FloatType):
                body.append(f"        printf(\"RETF %.17g\\n\", {call});")
            else:
                body.append(f"        printf(\"RET %lld\\n\", {call});")
            for j, buf in enumerate(buffers):
                if buf is not None:
                    body.append(f"        dump(\"ARG{j}\", in{index}_{j}, {len(buf.data)});")
            for gname, gsize in self.globals:
                body.append(f"        dump(\"GLB:{gname}\", {gname}, {gsize});")
            body.append("    }")
        lines.append("int main(int argc, char **argv) {")
        lines.append("    int idx = argc > 1 ? atoi(argv[1]) : 0;")
        lines.extend(body)
        lines.append("    return 0;")
        lines.append("}")
        return "\n".join(lines) + "\n"

    # -- execution -----------------------------------------------------------

    def run(self, index: int) -> NativeResult:
        """Execute input set ``index`` natively and decode the output."""
        # The timeout guards the differential oracle/reducer against
        # candidate programs that loop forever (the interpreter leg traps on
        # its step budget; the native binary has no such budget).
        proc = subprocess.run(
            self._exec_prefix + [str(self.binary), str(index)],
            check=True,
            capture_output=True,
            text=True,
            timeout=self.run_timeout,
        )
        return_value: Any = None
        arg_values: List[Any] = list(self.inputs[index])
        global_values: Dict[str, Any] = {}
        for line in proc.stdout.splitlines():
            tag, _, payload = line.partition(" ")
            if tag == "RET":
                raw = int(payload)
                if isinstance(self.return_type, ct.IntType):
                    raw = self.return_type.wrap(raw)
                return_value = raw
            elif tag == "RETF":
                return_value = float(payload)
            elif tag.startswith("ARG"):
                j = int(tag[3:])
                buf = self._buffers[index][j]
                data = b"" if payload == "-" else bytes.fromhex(payload)
                if buf is not None:
                    arg_values[j] = _decode_buffer(data, buf, self._resolve)
            elif tag.startswith("GLB:"):
                gname = tag[4:]
                data = b"" if payload == "-" else bytes.fromhex(payload)
                global_values[gname] = _decode_global(data, self._context.global_type(gname))
        return NativeResult(return_value, arg_values, global_values)

    def expected(self, index: int):
        """The interpreter's observable state on the same input."""
        return self._context.interpreter().run_function(self.name, self.inputs[index])


# ---------------------------------------------------------------------------
# Batched execution
# ---------------------------------------------------------------------------


@dataclass
class BatchCase:
    """One case submitted to a :class:`NativeBatch`."""

    source: str
    name: str
    inputs: List[Tuple]
    context: Optional[CaseContext] = None
    #: Pre-compiled assembly (before renaming).  When None the batch
    #: compiles it from the context.
    assembly: Optional[str] = None


@dataclass
class _BatchEntry:
    """Internal per-case build products."""

    case: BatchCase
    context: CaseContext
    symbol: str  # mangled entry-point name
    globals: List[Tuple[str, int]] = field(default_factory=list)  # original names
    buffers: List[List[Optional[_Buffer]]] = field(default_factory=list)


class BatchExecutionError(Exception):
    """The batch binary failed outside any case (infrastructure problem)."""


def _mangle(index: int, name: str) -> str:
    return f"__case{index}_{name}"


def _rename_case_symbols(assembly: str, index: int, names: Sequence[str]) -> str:
    """Make one case's assembly link-safe inside a many-case TU.

    Local labels (``.L...``) get a per-case prefix; the entry point and the
    globals in ``names`` are renamed to their mangled form.  The rename is
    textual but whole-word, which is sound for generator-produced programs:
    their identifiers are fresh (``g4``, ``fuzz_target``) and never collide
    with mnemonics, registers or directives.
    """
    out = re.sub(r"\.L(?=[A-Za-z0-9_])", f".Lc{index}_", assembly)
    for name in names:
        out = re.sub(rf"\b{re.escape(name)}\b", _mangle(index, name), out)
    return out


class NativeBatch:
    """Many cases, one binary per (ISA, opt level), one subprocess per run.

    The dispatching harness executes every (case, input-vector) pair in
    order, restoring the case's globals from a startup snapshot before each
    call and bracketing each pair's output with ``PAIR n`` / ``DONE n``
    markers.  A pair that traps kills the process *after* its ``PAIR``
    marker has been flushed, so the parent knows exactly which observation
    the signal belongs to, records it, and relaunches the binary starting
    at the next pair.  Clean batches therefore cost exactly one subprocess;
    each trap or timeout costs one more.
    """

    def __init__(
        self,
        cases: Sequence[BatchCase],
        opt_level: str,
        workdir: Path,
        isa: str = "x86",
        asm_transform: Optional[Callable[[str], str]] = None,
        run_timeout: float = 10.0,
        tag: str = "batch",
    ) -> None:
        self.opt_level = opt_level
        self.isa = isa
        self.run_timeout = run_timeout
        self.entries: List[_BatchEntry] = []
        self._pairs: List[Tuple[int, int]] = []  # flat -> (case, input)
        self._outcomes: Optional[Dict[Tuple[int, int], Tuple[str, Any]]] = None
        self._failure: Optional[Exception] = None

        asm_parts: List[str] = []
        for index, case in enumerate(cases):
            context = case.context if case.context is not None else CaseContext(
                case.source, case.name
            )
            assembly = (
                case.assembly
                if case.assembly is not None
                else context.assembly(isa, opt_level)
            )
            if asm_transform is not None:
                assembly = asm_transform(assembly)
            entry = _BatchEntry(case, context, _mangle(index, case.name))
            entry.globals = _assembly_globals(assembly)
            asm_parts.append(
                _rename_case_symbols(
                    assembly, index, [case.name] + [g for g, _ in entry.globals]
                )
            )
            self.entries.append(entry)
            for input_index in range(len(case.inputs)):
                self._pairs.append((index, input_index))

        asm_path = workdir / f"{tag}_{isa}_{opt_level}.s"
        asm_path.write_text("\n".join(asm_parts))
        harness_path = workdir / f"{tag}_{isa}_{opt_level}_main.c"
        harness_path.write_text(self._generate_harness())
        self.binary = workdir / f"{tag}_{isa}_{opt_level}"
        build, self._exec_prefix = _build_command(isa, self.binary, [harness_path, asm_path])
        subprocess.run(build, check=True, capture_output=True, timeout=300)

    # -- C generation --------------------------------------------------------

    def _generate_harness(self) -> str:
        lines = [
            "#include <stdio.h>",
            "#include <stdlib.h>",
            "#include <string.h>",
            "",
        ]
        for index, entry in enumerate(self.entries):
            context = entry.context
            lines.append(
                _prototype(entry.symbol, context.param_types(), context.return_type())
            )
            for gname, gsize in entry.globals:
                lines.append(f"extern unsigned char {_mangle(index, gname)}[];")
                lines.append(f"static unsigned char snap{index}_{gname}[{gsize}];")
        lines.append(_DUMP_HELPER)
        lines.append(_BITS_HELPER)
        lines.append("int main(int argc, char **argv) {")
        lines.append("    long start = argc > 1 ? atol(argv[1]) : 0;")
        lines.append("    long pair = -1;")
        # Snapshot every case's pristine globals before anything runs.
        for index, entry in enumerate(self.entries):
            for gname, gsize in entry.globals:
                lines.append(
                    f"    memcpy(snap{index}_{gname}, {_mangle(index, gname)}, {gsize});"
                )

        for index, entry in enumerate(self.entries):
            context = entry.context
            param_types = context.param_types()
            return_type = context.return_type()
            entry.buffers = []
            for input_index, args in enumerate(entry.case.inputs):
                buffers: List[Optional[_Buffer]] = []
                call_args: List[str] = []
                decls: List[str] = []
                for j, (value, ptype) in enumerate(zip(args, param_types)):
                    buf = _encode_argument(value, ptype, context.resolve)
                    buffers.append(buf)
                    if buf is None:
                        call_args.append(_scalar_literal(value, ptype))
                    else:
                        cname = f"in{index}_{input_index}_{j}"
                        data = ", ".join(str(b) for b in buf.data)
                        decls.append(
                            f"        static unsigned char {cname}[] = {{ {data} }};"
                        )
                        call_args.append(f"(long long){cname}")
                entry.buffers.append(buffers)
                lines.append("    pair++;")
                lines.append("    if (pair >= start) {")
                lines.extend(decls)
                # The PAIR marker is flushed before the call so a trapping
                # pair is attributable from the partial output.
                lines.append('        printf("PAIR %ld\\n", pair); fflush(stdout);')
                for gname, gsize in entry.globals:
                    lines.append(
                        f"        memcpy({_mangle(index, gname)}, snap{index}_{gname}, {gsize});"
                    )
                call = f"{entry.symbol}({', '.join(call_args)})"
                if ct.is_void(return_type):
                    lines.append(f"        {call};")
                elif isinstance(return_type, ct.FloatType):
                    lines.append(f'        printf("RETF %.17g\\n", {call});')
                else:
                    lines.append(f'        printf("RET %lld\\n", {call});')
                for j, buf in enumerate(buffers):
                    if buf is not None:
                        lines.append(
                            f'        dump("ARG{j}", in{index}_{input_index}_{j}, {len(buf.data)});'
                        )
                for gname, gsize in entry.globals:
                    lines.append(
                        f'        dump("GLB:{gname}", {_mangle(index, gname)}, {gsize});'
                    )
                lines.append('        printf("DONE %ld\\n", pair); fflush(stdout);')
                lines.append("    }")
        lines.append("    return 0;")
        lines.append("}")
        return "\n".join(lines) + "\n"

    # -- execution -----------------------------------------------------------

    #: Wall-clock allowance per (case, input) pair on top of ``run_timeout``.
    #: A healthy pair runs in microseconds; this exists so one invocation
    #: covering hundreds of pairs (or slow qemu-emulated legs) is not held
    #: to the single-pair budget the per-case path uses.
    PER_PAIR_ALLOWANCE = 0.1

    def _run_from(self, start: int) -> Tuple[Optional[int], str, Optional[int]]:
        """One harness invocation: (in-flight pair, stdout, returncode).

        ``returncode`` is None when the invocation timed out.  The timeout
        scales with the number of pairs the invocation still has to run:
        ``run_timeout`` bounds any single runaway pair (matching the
        sequential path's per-vector budget) and the per-pair allowance
        funds the legitimate aggregate runtime of the rest of the batch.
        """
        remaining = len(self._pairs) - start
        try:
            proc = subprocess.run(
                self._exec_prefix + [str(self.binary), str(start)],
                capture_output=True,
                text=True,
                timeout=self.run_timeout + self.PER_PAIR_ALLOWANCE * remaining,
            )
            stdout, returncode = proc.stdout, proc.returncode
        except subprocess.TimeoutExpired as exc:
            stdout = exc.stdout or ""
            if isinstance(stdout, bytes):
                stdout = stdout.decode("utf-8", "replace")
            returncode = None
        inflight: Optional[int] = None
        record: List[str] = []
        for line in stdout.splitlines():
            tag, _, payload = line.partition(" ")
            if tag == "PAIR":
                inflight = int(payload)
                record = []
            elif tag == "DONE":
                flat = int(payload)
                self._decode_pair(flat, record)
                inflight = None
            else:
                record.append(line)
        return inflight, stdout, returncode

    def _execute(self) -> None:
        if self._failure is not None:
            raise self._failure
        if self._outcomes is not None:
            return
        self._outcomes = {}
        start = 0
        total = len(self._pairs)
        while start < total:
            inflight, _, returncode = self._run_from(start)
            if returncode == 0 and inflight is None:
                break
            if inflight is None:
                # Died outside any case: nothing to attribute the failure to.
                self._outcomes = None
                self._failure = BatchExecutionError(
                    f"batch binary failed with status {returncode!r} "
                    f"outside any case (started at pair {start})"
                )
                raise self._failure
            if returncode is None:
                self._outcomes[self._pairs[inflight]] = ("limit", "execution timeout")
            else:
                self._outcomes[self._pairs[inflight]] = (
                    "trap",
                    f"exit status {returncode}",
                )
            start = inflight + 1

    def _decode_pair(self, flat: int, record: List[str]) -> None:
        case_index, input_index = self._pairs[flat]
        entry = self.entries[case_index]
        return_type = entry.context.return_type()
        return_value: Any = None
        arg_values: List[Any] = list(entry.case.inputs[input_index])
        global_values: Dict[str, Any] = {}
        for line in record:
            tag, _, payload = line.partition(" ")
            if tag == "RET":
                raw = int(payload)
                if isinstance(return_type, ct.IntType):
                    raw = return_type.wrap(raw)
                return_value = raw
            elif tag == "RETF":
                return_value = float(payload)
            elif tag.startswith("ARG"):
                j = int(tag[3:])
                buf = entry.buffers[input_index][j]
                data = b"" if payload == "-" else bytes.fromhex(payload)
                if buf is not None:
                    arg_values[j] = _decode_buffer(data, buf, entry.context.resolve)
            elif tag.startswith("GLB:"):
                gname = tag[4:]
                data = b"" if payload == "-" else bytes.fromhex(payload)
                global_values[gname] = _decode_global(
                    data, entry.context.global_type(gname)
                )
        assert self._outcomes is not None
        self._outcomes[(case_index, input_index)] = (
            "ok",
            NativeResult(return_value, arg_values, global_values),
        )

    def outcome(self, case_index: int, input_index: int) -> Tuple[str, Any]:
        """("ok", NativeResult) | ("trap", detail) | ("limit", detail)."""
        self._execute()
        assert self._outcomes is not None
        return self._outcomes[(case_index, input_index)]


def values_equal(left: Any, right: Any) -> bool:
    """Structural equality with float tolerance (re-exported convenience)."""
    from repro.testing.oracle import values_equal as impl

    return impl(left, right)


__all__ = [
    "BatchCase",
    "BatchExecutionError",
    "NativeBatch",
    "NativeFunction",
    "NativeResult",
    "have_arm_toolchain",
    "have_native_toolchain",
    "values_equal",
]
