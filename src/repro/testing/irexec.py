"""Direct executor for the compiler's three-address IR.

This is the oracle leg that exercises *everything the compiler does except
the backends*: AST optimisation, lowering, and — at -O3 — the IR constant
folder, copy propagation, strength reduction, dead-code elimination and
jump threading.  Executing the optimised IR and comparing its observable
state against the source interpreter pins the whole middle-end down without
needing an assembler on the host.

The executor deliberately reuses the interpreter's machinery for everything
that is *not* the IR itself — memory, global allocation (initialisers
honoured), argument marshalling and builtin calls — so a divergence can
only come from the compiler pipeline under test, never from a second
implementation of the runtime model.

Virtual-register values are stored exactly per the vreg invariant: a
``bits``-wide signed value is held as its sign-extension (a negative Python
int), an unsigned one as its zero-extension — the same domains
:func:`repro.lang.ctypes.int_binop` operates in.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.compiler import ir
from repro.compiler.lowering import Lowerer, LoweringError
from repro.compiler.opt import optimize_function_ast, optimize_ir
from repro.lang import ast_nodes as ast
from repro.lang import ctypes as ct
from repro.lang.interpreter import (
    CInterpreterError,
    ExecutionResult,
    Interpreter,
    LValue,
    RuntimeLimitExceeded,
)
from repro.lang.parser import parse_program


class IRExecError(CInterpreterError):
    """Raised when IR execution traps (division by zero, bad memory, ...)."""


# Per-instruction dispatch codes, precomputed once per lowered function so
# the hot loop switches on a small int instead of isinstance checks.
(
    _K_LABEL, _K_CONST, _K_MOVE, _K_BINOP, _K_CMP, _K_UNARY, _K_CAST,
    _K_LOAD, _K_STORE, _K_FRAMEADDR, _K_GLOBALADDR, _K_CALL, _K_JUMP,
    _K_BRANCH, _K_RET,
) = range(15)

_CMP_FUNCS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}

_BINOP_SYMBOL = {
    "add": "+", "sub": "-", "mul": "*", "div": "/", "mod": "%",
    "shl": "<<", "shr": ">>", "and": "&", "or": "|", "xor": "^",
}

_KIND_OF = {
    ir.IRLabel: _K_LABEL,
    ir.IRConst: _K_CONST,
    ir.IRMove: _K_MOVE,
    ir.IRBinOp: _K_BINOP,
    ir.IRCmp: _K_CMP,
    ir.IRUnary: _K_UNARY,
    ir.IRCast: _K_CAST,
    ir.IRLoad: _K_LOAD,
    ir.IRStore: _K_STORE,
    ir.IRFrameAddr: _K_FRAMEADDR,
    ir.IRGlobalAddr: _K_GLOBALADDR,
    ir.IRCall: _K_CALL,
    ir.IRJump: _K_JUMP,
    ir.IRBranch: _K_BRANCH,
    ir.IRRet: _K_RET,
}


def _wrap_to(bits: int, unsigned: bool, value: int) -> int:
    return ct.int_type_for_bits(bits, unsigned).wrap(int(value))


class IRExecutor:
    """Execute functions of a program by interpreting their lowered IR."""

    def __init__(
        self,
        program: Union[str, ast.Program],
        opt_level: str = "O3",
        max_steps: int = 2_000_000,
        lowering_cache: Optional[Dict[str, Tuple]] = None,
        checker=None,
    ) -> None:
        if isinstance(program, str):
            program = parse_program(program)
        self.program = program
        self.opt_level = opt_level
        self.max_steps = max_steps
        self.steps = 0
        # The interpreter provides memory, typed global allocation (with
        # initialisers applied), marshalling and builtins; its AST evaluator
        # is never invoked for the function under test.  ``checker`` shares
        # an already-run TypeChecker across executors (one per input vector
        # in the oracle) so semantic analysis runs once per case.
        self.interp = Interpreter(program, checker=checker)
        self.memory = self.interp.memory
        # Execution never mutates the lowered IR, so callers running the
        # same program on many inputs can share one cache across executors.
        # Entries are (ir_func, strings) when seeded externally and are
        # widened in place to (ir_func, strings, labels, kinds) on first use.
        self._lowered: Dict[str, Tuple] = (
            lowering_cache if lowering_cache is not None else {}
        )

    # -- lowering -------------------------------------------------------------

    def _function_ir(self, name: str) -> Tuple:
        entry = self._lowered.get(name)
        if entry is not None:
            if len(entry) == 2:
                entry = self._widen_entry(name, *entry)
            return entry
        func = self.program.function(name)
        if func is None:
            raise IRExecError(f"no function named {name!r}")
        if self.opt_level == "O3":
            func = optimize_function_ast(func)
        try:
            lowerer = Lowerer(
                self.program,
                func,
                promote_scalars=(self.opt_level == "O3"),
                checker=self.interp.checker,
            )
            ir_func, strings = lowerer.lower()
        except LoweringError as exc:
            raise IRExecError(f"lowering error: {exc}") from exc
        if self.opt_level == "O3":
            optimize_ir(ir_func)
        return self._widen_entry(name, ir_func, strings)

    def _widen_entry(
        self, name: str, ir_func: ir.IRFunction, strings: Dict[str, str]
    ) -> Tuple:
        # The label table and the per-instruction dispatch codes depend only
        # on the (immutable) IR, so they are computed once per function and
        # shared by every executor using this cache.
        labels = {
            instr.name: index
            for index, instr in enumerate(ir_func.instrs)
            if isinstance(instr, ir.IRLabel)
        }
        kinds = [_KIND_OF.get(type(instr), -1) for instr in ir_func.instrs]
        entry = (ir_func, strings, labels, kinds)
        self._lowered[name] = entry
        return entry

    # -- public API -----------------------------------------------------------

    def run_function(self, name: str, args: Sequence) -> ExecutionResult:
        """Execute ``name`` on ``args``; same reporting as the interpreter."""
        func = self.program.function(name)
        if func is None:
            raise IRExecError(f"no function named {name!r}")
        arg_cells: List[Tuple[object, Optional[LValue], Optional[int]]] = []
        call_values: List[Union[int, float]] = []
        for param, value in zip(func.params, list(args) + [0] * len(func.params)):
            ptype = ct.decay(self.interp._resolve_type(param.type))
            marshalled, backing, length = self.interp._marshal_argument(value, ptype)
            call_values.append(marshalled)
            arg_cells.append((value, backing, length))

        self.steps = 0
        ret = self._call(name, call_values)

        return_type = self.interp._resolve_type(func.return_type)
        if ct.is_void(return_type):
            ret_value: Union[int, float, None] = None
        elif isinstance(return_type, ct.IntType):
            ret_value = return_type.wrap(int(ret or 0))
        elif isinstance(return_type, ct.FloatType):
            ret_value = float(ret or 0.0)
        else:
            ret_value = ret if ret is not None else 0

        final_args: List[object] = []
        for original, backing, length in arg_cells:
            if backing is None:
                final_args.append(original)
            else:
                final_args.append(
                    self.interp._read_back_argument(backing, length, original)
                )
        final_globals = {g: self.interp.get_global(g) for g in self.interp.global_addrs}
        return ExecutionResult(ret_value, final_args, final_globals, self.steps)

    # -- execution ------------------------------------------------------------

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            # Distinct from a semantic trap: the oracle treats budget
            # exhaustion as inconclusive, not as an observation.
            raise RuntimeLimitExceeded(f"exceeded {self.max_steps} IR execution steps")

    def _call(self, name: str, args: List[Union[int, float]]) -> Union[
        int, float, None
    ]:
        if self.program.function(name) is None:
            # Library call: reuse the interpreter's builtin table (it reads
            # and writes the shared memory).
            return self.interp._call_builtin(name, list(args), None, {})

        func, strings, labels, kinds = self._function_ir(name)
        regs: Dict[ir.VReg, Union[int, float]] = {}
        for preg, value in zip(func.params, args):
            regs[preg] = self._coerce(preg, value)
        slot_addrs = {
            slot.name: self.memory.allocate(max(slot.size, 1))
            for slot in func.slots.values()
        }

        def value_of(operand: ir.Operand) -> Union[int, float]:
            if isinstance(operand, ir.VReg):
                if operand not in regs:
                    raise IRExecError(f"use of undefined vreg {operand}")
                return regs[operand]
            return operand

        # Dispatch on precomputed per-instruction kind codes (one list
        # index + integer compare per step) instead of an isinstance chain.
        pc = 0
        instrs = func.instrs
        count = len(instrs)
        while pc < count:
            self._tick()
            kind = kinds[pc]
            instr = instrs[pc]
            pc += 1
            if kind == _K_LABEL:
                continue
            if kind == _K_CONST:
                regs[instr.dst] = self._coerce(instr.dst, instr.value)
            elif kind == _K_MOVE:
                regs[instr.dst] = self._coerce(instr.dst, value_of(instr.src))
            elif kind == _K_BINOP:
                regs[instr.dst] = self._binop(
                    instr, value_of(instr.left), value_of(instr.right)
                )
            elif kind == _K_CMP:
                regs[instr.dst] = self._cmp(
                    instr, value_of(instr.left), value_of(instr.right)
                )
            elif kind == _K_UNARY:
                regs[instr.dst] = self._unary(instr, value_of(instr.src))
            elif kind == _K_CAST:
                regs[instr.dst] = self._cast(instr, value_of(instr.src))
            elif kind == _K_LOAD:
                addr = int(value_of(instr.addr)) + instr.offset
                if instr.is_float:
                    regs[instr.dst] = self.memory.read_float(addr, instr.size)
                else:
                    value = self.memory.read_int(addr, instr.size, signed=instr.signed)
                    regs[instr.dst] = self._coerce(instr.dst, value)
            elif kind == _K_STORE:
                addr = int(value_of(instr.addr)) + instr.offset
                src = value_of(instr.src)
                if instr.is_float:
                    self.memory.write_float(addr, float(src), instr.size)
                else:
                    self.memory.write_int(addr, int(src), instr.size)
            elif kind == _K_FRAMEADDR:
                regs[instr.dst] = slot_addrs[instr.slot]
            elif kind == _K_GLOBALADDR:
                regs[instr.dst] = self._symbol_addr(instr.symbol, strings)
            elif kind == _K_CALL:
                result = self._call(instr.name, [value_of(a) for a in instr.args])
                if instr.dst is not None:
                    regs[instr.dst] = self._coerce(
                        instr.dst, 0 if result is None else result
                    )
            elif kind == _K_JUMP:
                pc = labels[instr.target]
            elif kind == _K_BRANCH:
                taken = value_of(instr.cond) != 0
                pc = labels[instr.true_target if taken else instr.false_target]
            elif kind == _K_RET:
                if instr.value is None:
                    return None
                return value_of(instr.value)
            else:
                raise IRExecError(
                    f"cannot execute IR instruction {type(instr).__name__}"
                )
        return None

    # -- instruction semantics -------------------------------------------------

    def _coerce(self, dst: ir.VReg, value: Union[int, float]) -> Union[int, float]:
        if dst.is_float:
            return float(value)
        return _wrap_to(dst.bits, dst.unsigned, int(value))

    def _binop(
        self, instr: ir.IRBinOp, left: Union[int, float], right: Union[int, float]
    ) -> Union[int, float]:
        if instr.is_float:
            lf, rf = float(left), float(right)
            if instr.op == "add":
                return lf + rf
            if instr.op == "sub":
                return lf - rf
            if instr.op == "mul":
                return lf * rf
            if instr.op == "div":
                if rf == 0.0:
                    raise IRExecError("floating point division by zero")
                return lf / rf
            raise IRExecError(f"unsupported float binop {instr.op!r}")
        op = _BINOP_SYMBOL[instr.op]
        try:
            value = ct.int_binop(op, int(left), int(right), instr.bits, instr.unsigned)
        except ZeroDivisionError as exc:
            raise IRExecError(str(exc)) from exc
        return self._coerce(instr.dst, value)

    def _cmp(self, instr: ir.IRCmp, left, right) -> int:
        if instr.is_float:
            lv: Union[int, float] = float(left)
            rv: Union[int, float] = float(right)
        else:
            lv = _wrap_to(instr.bits, instr.unsigned, int(left))
            rv = _wrap_to(instr.bits, instr.unsigned, int(right))
        return 1 if _CMP_FUNCS[instr.op](lv, rv) else 0

    def _unary(self, instr: ir.IRUnary, value: Union[int, float]) -> Union[int, float]:
        if instr.is_float:
            return -float(value)
        operand = _wrap_to(instr.bits, instr.unsigned, int(value))
        result = -operand if instr.op == "neg" else ~operand
        return _wrap_to(instr.bits, instr.unsigned, result)

    def _cast(self, instr: ir.IRCast, value: Union[int, float]) -> Union[int, float]:
        if instr.kind == "i2f":
            return float(int(value))
        if instr.kind == "f2i":
            return _wrap_to(64, False, int(float(value)))
        if instr.kind in ir.WIDTH_CASTS:
            bits, unsigned = ir.WIDTH_CASTS[instr.kind]
            return _wrap_to(bits, unsigned, int(value))
        if instr.dst.is_float:
            return float(value)
        return self._coerce(instr.dst, value)

    def _symbol_addr(self, symbol: str, strings: Dict[str, str]) -> int:
        if symbol in strings:
            return self.interp._intern_string(strings[symbol])
        if symbol in self.interp.global_addrs:
            return self.interp.global_addrs[symbol].addr
        raise IRExecError(f"unknown symbol {symbol!r}")
