"""AST → IR lowering for the Mini-C compiler.

The :class:`Lowerer` turns a single type-checked function into an
:class:`repro.compiler.ir.IRFunction`.  Two regimes are supported:

* ``promote_scalars=False`` (the -O0 pipeline): every parameter and local
  variable lives in a stack slot and every access is a load/store, which
  yields verbose, source-shaped assembly.
* ``promote_scalars=True`` (the -O3 pipeline): scalar locals whose address
  is never taken are promoted to virtual registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.compiler import ir
from repro.lang import ast_nodes as ast
from repro.lang import ctypes as ct
from repro.lang.typecheck import TypeChecker


class LoweringError(Exception):
    """Raised when a construct cannot be lowered (treated as 'GCC failed')."""


@dataclass
class _RegisterLocation:
    reg: ir.VReg
    type: ct.CType


@dataclass
class _MemoryLocation:
    addr: ir.Operand  # VReg holding a base address
    offset: int
    type: ct.CType
    slot: Optional[str] = None  # set when the base is a frame slot


_Location = Union[_RegisterLocation, _MemoryLocation]


def _collect_address_taken(node: ast.Node, found: Set[str]) -> None:
    """Record names whose address is taken with ``&`` anywhere in ``node``."""
    if isinstance(node, ast.UnaryOp) and node.op == "&" and isinstance(
        node.operand, ast.Identifier
    ):
        found.add(node.operand.name)
    for value in vars(node).values():
        if isinstance(value, ast.Node):
            _collect_address_taken(value, found)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.Node):
                    _collect_address_taken(item, found)


class Lowerer:
    """Lower one function of a program to IR."""

    def __init__(
        self,
        program: ast.Program,
        func: ast.FunctionDef,
        promote_scalars: bool = False,
        checker: Optional[TypeChecker] = None,
    ) -> None:
        self.program = program
        self.func = func
        self.promote_scalars = promote_scalars
        if checker is None:
            # A caller lowering several functions (or several opt levels) of
            # one program can pass an already-run checker to type-check once.
            checker = TypeChecker(program)
            self.check_result = checker.check()
        else:
            self.check_result = getattr(checker, "last_result", None)
            if self.check_result is None:
                # Constructed-but-never-run checker: run it, mirroring what
                # the no-checker path does.
                self.check_result = checker.check()
        self.typedefs = checker.typedefs
        self.structs = checker.structs
        self.functions = checker.functions
        self.globals: Dict[str, ct.CType] = dict(checker.global_scope.vars)
        self.ir = ir.IRFunction(func.name)
        self.vars: Dict[str, _Location] = {}
        self.break_targets: List[str] = []
        self.continue_targets: List[str] = []
        self.string_literals: Dict[str, str] = {}
        self._slot_counter = 0
        self._address_taken: Set[str] = set()
        if func.body is not None:
            _collect_address_taken(func.body, self._address_taken)

    # -- type helpers --------------------------------------------------------

    def resolve(self, t: Optional[ct.CType]) -> ct.CType:
        if t is None:
            return ct.INT
        if isinstance(t, ct.NamedType):
            if t.name in self.typedefs:
                return self.resolve(self.typedefs[t.name])
            raise LoweringError(f"unknown type name {t.name!r}")
        if isinstance(t, ct.StructType) and not t.fields and t.tag in self.structs:
            return self.structs[t.tag]
        if isinstance(t, ct.PointerType):
            return ct.PointerType(self.resolve(t.pointee))
        if isinstance(t, ct.ArrayType):
            return ct.ArrayType(self.resolve(t.element), t.length)
        return t

    def _is_float(self, t: ct.CType) -> bool:
        return isinstance(self.resolve(t), ct.FloatType)

    def _width(self, t: ct.CType) -> Tuple[int, bool]:
        """(bits, unsigned) of the integer register representation of ``t``.

        Pointers, arrays and anything non-integer occupy a full 64-bit
        register and are treated as signed for extension purposes.
        """
        resolved = ct.decay(self.resolve(t))
        if isinstance(resolved, ct.IntType):
            return 8 * resolved.sizeof(), resolved.unsigned
        return 64, False

    def _int_vreg(self, t: ct.CType) -> ir.VReg:
        """A fresh integer vreg annotated with the width of ``t``."""
        bits, unsigned = self._width(t)
        return self.ir.new_vreg(False, bits, unsigned)

    def _scalar_promotable(self, t: ct.CType, name: str) -> bool:
        if not self.promote_scalars:
            return False
        if name in self._address_taken:
            return False
        resolved = self.resolve(t)
        return resolved.is_arithmetic() or isinstance(resolved, ct.PointerType)

    # -- entry point ---------------------------------------------------------

    def lower(self) -> Tuple[ir.IRFunction, Dict[str, str]]:
        """Lower the function; returns the IR and the string-literal table."""
        func = self.func
        if func.body is None:
            raise LoweringError(f"function {func.name} has no body")
        self.ir.returns_float = self._is_float(func.return_type)

        # Parameters arrive in fresh virtual registers.
        for param in func.params:
            ptype = ct.decay(self.resolve(param.type))
            is_float = self._is_float(ptype)
            bits, unsigned = self._width(ptype)
            reg = self.ir.new_vreg(is_float, bits, unsigned)
            self.ir.params.append(reg)
            self.ir.param_names.append(param.name)
            if self._scalar_promotable(ptype, param.name):
                self.vars[param.name] = _RegisterLocation(reg, ptype)
            else:
                slot = self._new_slot(param.name, self._slot_size(ptype))
                addr = self.ir.new_vreg()
                self.ir.emit(ir.IRFrameAddr(addr, slot.name))
                self.ir.emit(
                    ir.IRStore(reg, addr, 0, self._store_size(ptype), is_float)
                )
                self.vars[param.name] = _MemoryLocation(addr, 0, ptype, slot.name)

        self._lower_stmt(func.body)
        # Implicit return for functions that fall off the end.
        if not self.ir.instrs or not isinstance(self.ir.instrs[-1], ir.IRRet):
            if ct.is_void(self.resolve(func.return_type)):
                self.ir.emit(ir.IRRet(None))
            else:
                zero = self.ir.new_vreg(self.ir.returns_float)
                self.ir.emit(ir.IRConst(zero, 0.0 if self.ir.returns_float else 0))
                self.ir.emit(ir.IRRet(zero, self.ir.returns_float))
        return self.ir, self.string_literals

    def _new_slot(self, name: str, size: int) -> ir.StackSlot:
        slot_name = name
        while slot_name in self.ir.slots:
            self._slot_counter += 1
            slot_name = f"{name}.{self._slot_counter}"
        return self.ir.add_slot(slot_name, size)

    def _slot_size(self, t: ct.CType) -> int:
        """Frame bytes for a named variable of type ``t``.

        Scalars take exactly their declared width — an ``int`` local gets a
        4-byte slot that the frame layout packs at natural alignment, the
        same way PR 2 shrank spill slots.  Every scalar access goes through
        :meth:`_store_size`, which uses the same width, so no load or store
        can overrun the slot.  Aggregates keep their full size: the type
        must NOT be decayed here, or a local array would get a pointer-sized
        slot and its elements would overrun into neighbouring slots.
        (Array-typed *parameters* never reach this path un-decayed — the
        caller decays them before asking for a slot.)
        """
        return max(1, self.resolve(t).sizeof())

    def _store_size(self, t: ct.CType) -> int:
        resolved = self.resolve(t)
        if isinstance(resolved, (ct.ArrayType, ct.StructType)):
            return 8
        return max(1, resolved.sizeof())

    # -- statements -----------------------------------------------------------

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            saved = dict(self.vars)
            for inner in stmt.stmts:
                self._lower_stmt(inner)
            self.vars = saved
        elif isinstance(stmt, ast.Declaration):
            self._lower_declaration(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            self._lower_return(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.break_targets:
                raise LoweringError("break outside of a loop")
            self.ir.emit(ir.IRJump(self.break_targets[-1]))
        elif isinstance(stmt, ast.Continue):
            if not self.continue_targets:
                raise LoweringError("continue outside of a loop")
            self.ir.emit(ir.IRJump(self.continue_targets[-1]))
        elif isinstance(stmt, ast.EmptyStmt):
            pass
        else:
            raise LoweringError(f"cannot lower statement {type(stmt).__name__}")

    def _lower_declaration(self, decl: ast.Declaration) -> None:
        t = self.resolve(decl.type)
        if self._scalar_promotable(t, decl.name) and not isinstance(
            t, (ct.ArrayType, ct.StructType)
        ):
            bits, unsigned = self._width(t)
            reg = self.ir.new_vreg(self._is_float(t), bits, unsigned)
            self.vars[decl.name] = _RegisterLocation(reg, t)
            if decl.init is not None and not isinstance(decl.init, ast.InitializerList):
                value, vtype = self._lower_expr(decl.init)  # type: ignore[arg-type]
                value = self._convert(value, vtype, t)
                self.ir.emit(ir.IRMove(reg, value))
            else:
                self.ir.emit(ir.IRConst(reg, 0.0 if self._is_float(t) else 0))
            return

        slot = self._new_slot(decl.name, self._slot_size(t))
        addr = self.ir.new_vreg()
        self.ir.emit(ir.IRFrameAddr(addr, slot.name))
        location = _MemoryLocation(addr, 0, t, slot.name)
        self.vars[decl.name] = location
        if decl.init is None:
            return
        if isinstance(decl.init, ast.InitializerList):
            self._lower_initializer_list(location, decl.init)
        elif isinstance(decl.init, ast.StringLiteral) and isinstance(t, ct.ArrayType):
            symbol = self._intern_string(decl.init.value)
            src = self.ir.new_vreg()
            self.ir.emit(ir.IRGlobalAddr(src, symbol))
            count = self.ir.new_vreg()
            self.ir.emit(ir.IRConst(count, len(decl.init.value) + 1))
            self.ir.emit(ir.IRCall(None, "memcpy", [addr, src, count]))
        else:
            value, vtype = self._lower_expr(decl.init)  # type: ignore[arg-type]
            value = self._convert(value, vtype, t)
            self.ir.emit(
                ir.IRStore(value, addr, 0, self._store_size(t), self._is_float(t))
            )

    def _lower_initializer_list(
        self, location: _MemoryLocation, init: ast.InitializerList
    ) -> None:
        t = self.resolve(location.type)
        if isinstance(t, ct.ArrayType):
            elem = self.resolve(t.element)
            for index, item in enumerate(init.items):
                if isinstance(item, ast.InitializerList):
                    inner = _MemoryLocation(
                        location.addr, location.offset + index * elem.sizeof(), elem
                    )
                    self._lower_initializer_list(inner, item)
                else:
                    value, vtype = self._lower_expr(item)  # type: ignore[arg-type]
                    value = self._convert(value, vtype, elem)
                    self.ir.emit(
                        ir.IRStore(
                            value,
                            location.addr,  # type: ignore[arg-type]
                            location.offset + index * elem.sizeof(),
                            self._store_size(elem),
                            self._is_float(elem),
                        )
                    )
        elif isinstance(t, ct.StructType):
            for fld, item in zip(t.fields, init.items):
                ftype = self.resolve(fld.type)
                value, vtype = self._lower_expr(item)  # type: ignore[arg-type]
                value = self._convert(value, vtype, ftype)
                self.ir.emit(
                    ir.IRStore(
                        value,
                        location.addr,  # type: ignore[arg-type]
                        location.offset + t.field_offset(fld.name),
                        self._store_size(ftype),
                        self._is_float(ftype),
                    )
                )
        else:
            if init.items:
                value, vtype = self._lower_expr(init.items[0])  # type: ignore[arg-type]
                value = self._convert(value, vtype, t)
                self.ir.emit(
                    ir.IRStore(
                        value,
                        location.addr,  # type: ignore[arg-type]
                        location.offset,
                        self._store_size(t),
                        self._is_float(t),
                    )
                )

    def _lower_if(self, stmt: ast.If) -> None:
        cond, _ = self._lower_expr(stmt.cond)
        cond_reg = self._to_reg(cond)
        else_label = self.ir.new_label("Lelse")
        end_label = self.ir.new_label("Lend")
        self.ir.emit(ir.IRBranch(cond_reg, self.ir.new_label("Lthen"), else_label))
        # The branch's true target is the fallthrough; rewrite it to a real label.
        branch = self.ir.instrs[-1]
        assert isinstance(branch, ir.IRBranch)
        then_label = branch.true_target
        self.ir.emit(ir.IRLabel(then_label))
        self._lower_stmt(stmt.then)
        if stmt.otherwise is not None:
            self.ir.emit(ir.IRJump(end_label))
            self.ir.emit(ir.IRLabel(else_label))
            self._lower_stmt(stmt.otherwise)
            self.ir.emit(ir.IRLabel(end_label))
        else:
            self.ir.emit(ir.IRLabel(else_label))

    def _lower_while(self, stmt: ast.While) -> None:
        head = self.ir.new_label("Lwhile")
        body = self.ir.new_label("Lbody")
        end = self.ir.new_label("Lend")
        self.ir.emit(ir.IRLabel(head))
        cond, _ = self._lower_expr(stmt.cond)
        self.ir.emit(ir.IRBranch(self._to_reg(cond), body, end))
        self.ir.emit(ir.IRLabel(body))
        self.break_targets.append(end)
        self.continue_targets.append(head)
        self._lower_stmt(stmt.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        self.ir.emit(ir.IRJump(head))
        self.ir.emit(ir.IRLabel(end))

    def _lower_do_while(self, stmt: ast.DoWhile) -> None:
        body = self.ir.new_label("Ldo")
        check = self.ir.new_label("Lcheck")
        end = self.ir.new_label("Lend")
        self.ir.emit(ir.IRLabel(body))
        self.break_targets.append(end)
        self.continue_targets.append(check)
        self._lower_stmt(stmt.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        self.ir.emit(ir.IRLabel(check))
        cond, _ = self._lower_expr(stmt.cond)
        self.ir.emit(ir.IRBranch(self._to_reg(cond), body, end))
        self.ir.emit(ir.IRLabel(end))

    def _lower_for(self, stmt: ast.For) -> None:
        saved = dict(self.vars)
        if isinstance(stmt.init, ast.Stmt):
            self._lower_stmt(stmt.init)
        head = self.ir.new_label("Lfor")
        body = self.ir.new_label("Lbody")
        step_label = self.ir.new_label("Lstep")
        end = self.ir.new_label("Lend")
        self.ir.emit(ir.IRLabel(head))
        if stmt.cond is not None:
            cond, _ = self._lower_expr(stmt.cond)
            self.ir.emit(ir.IRBranch(self._to_reg(cond), body, end))
        self.ir.emit(ir.IRLabel(body))
        self.break_targets.append(end)
        self.continue_targets.append(step_label)
        self._lower_stmt(stmt.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        self.ir.emit(ir.IRLabel(step_label))
        if stmt.step is not None:
            self._lower_expr(stmt.step)
        self.ir.emit(ir.IRJump(head))
        self.ir.emit(ir.IRLabel(end))
        self.vars = saved

    def _lower_return(self, stmt: ast.Return) -> None:
        return_type = self.resolve(self.func.return_type)
        if stmt.value is None or ct.is_void(return_type):
            self.ir.emit(ir.IRRet(None))
            return
        value, vtype = self._lower_expr(stmt.value)
        value = self._convert(value, vtype, return_type)
        self.ir.emit(ir.IRRet(value, self._is_float(return_type)))

    # -- expressions -----------------------------------------------------------

    def _to_reg(self, operand: ir.Operand, is_float: bool = False) -> ir.VReg:
        if isinstance(operand, ir.VReg):
            return operand
        reg = self.ir.new_vreg(is_float or isinstance(operand, float))
        self.ir.emit(ir.IRConst(reg, operand))
        return reg

    def _convert(
        self, value: ir.Operand, from_type: ct.CType, to_type: ct.CType
    ) -> ir.Operand:
        """Insert an int<->float or integer width/sign conversion when required."""
        src_float = self._is_float(from_type)
        dst_float = self._is_float(to_type)
        if src_float != dst_float:
            if isinstance(value, (int, float)):
                if dst_float:
                    return float(value)
                return self._wrap_int_operand(int(value), to_type)
            # f2i truncates to a full 64-bit integer; narrow afterwards.
            dst = self.ir.new_vreg(dst_float)
            self.ir.emit(ir.IRCast("i2f" if dst_float else "f2i", dst, value))
            if not dst_float:
                return self._narrow(dst, to_type, ct.LONG)
            return dst
        if dst_float:
            return value
        return self._narrow(self._wrap_int_operand(value, to_type), to_type, from_type)

    def _wrap_int_operand(self, value: ir.Operand, to_type: ct.CType) -> ir.Operand:
        """Fold an integer constant into ``to_type``'s register representation."""
        if not isinstance(value, int):
            return value
        resolved = ct.decay(self.resolve(to_type))
        if isinstance(resolved, ct.IntType):
            return resolved.wrap(value)
        return value

    def _narrow(
        self,
        value: ir.Operand,
        to_type: ct.CType,
        from_type: Optional[ct.CType] = None,
    ) -> ir.Operand:
        """Re-extend ``value`` when ``to_type`` is narrower (or differs in
        signedness at the same sub-64-bit width) than what ``value`` holds.

        Widening is a no-op: by the vreg invariant, values are already held
        sign-/zero-extended per their own type, which is exactly the
        representation any wider type expects.
        """
        if not isinstance(value, ir.VReg) or value.is_float:
            return value
        to_bits, to_unsigned = self._width(to_type)
        if from_type is not None:
            from_bits, from_unsigned = self._width(from_type)
        else:
            from_bits, from_unsigned = value.bits, value.unsigned
        if to_bits >= 64:
            return value
        if to_bits > from_bits and (from_unsigned or not to_unsigned):
            # Widening where the source's existing extension is already the
            # target representation.  A *signed* source widening into an
            # unsigned type is NOT a no-op: its sign-extension must be cut
            # down to the target's zero-extension (e.g. (unsigned)(char)-1).
            return value
        if to_bits == from_bits and to_unsigned == from_unsigned:
            return value
        dst = self.ir.new_vreg(False, to_bits, to_unsigned)
        kind = f"{'zext' if to_unsigned else 'sext'}{to_bits}"
        self.ir.emit(ir.IRCast(kind, dst, value))
        return dst

    def _lower_expr(self, expr: ast.Expr) -> Tuple[ir.Operand, ct.CType]:
        if isinstance(expr, ast.IntLiteral):
            return expr.value, ct.literal_int_type(expr.value)
        if isinstance(expr, ast.FloatLiteral):
            return float(expr.value), ct.DOUBLE
        if isinstance(expr, ast.CharLiteral):
            return expr.value, ct.CHAR
        if isinstance(expr, ast.StringLiteral):
            symbol = self._intern_string(expr.value)
            reg = self.ir.new_vreg()
            self.ir.emit(ir.IRGlobalAddr(reg, symbol))
            return reg, ct.PointerType(ct.CHAR)
        if isinstance(expr, ast.Identifier):
            return self._lower_identifier(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._lower_binary(expr)
        if isinstance(expr, ast.UnaryOp):
            return self._lower_unary(expr)
        if isinstance(expr, ast.PostfixOp):
            return self._lower_incdec(expr.operand, expr.op, postfix=True)
        if isinstance(expr, ast.Assignment):
            return self._lower_assignment(expr)
        if isinstance(expr, ast.Conditional):
            return self._lower_conditional(expr)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr)
        if isinstance(expr, (ast.Index, ast.Member)):
            location = self._lower_lvalue(expr)
            return self._load_location(location)
        if isinstance(expr, ast.Cast):
            value, vtype = self._lower_expr(expr.operand)
            target = self.resolve(expr.target_type)
            return self._convert(value, vtype, target), target
        if isinstance(expr, ast.SizeOf):
            if expr.target_type is not None:
                return self.resolve(expr.target_type).sizeof(), ct.ULONG
            t = (
                expr.operand.ctype
                if expr.operand is not None and expr.operand.ctype
                else ct.INT
            )
            return self.resolve(t).sizeof(), ct.ULONG
        raise LoweringError(f"cannot lower expression {type(expr).__name__}")

    def _intern_string(self, text: str) -> str:
        for symbol, existing in self.string_literals.items():
            if existing == text:
                return symbol
        symbol = f".LC{len(self.string_literals)}"
        self.string_literals[symbol] = text
        return symbol

    def _lower_identifier(self, expr: ast.Identifier) -> Tuple[ir.Operand, ct.CType]:
        if expr.name in self.vars:
            return self._load_location_or_reg(self.vars[expr.name])
        if expr.name in self.globals:
            gtype = self.resolve(self.globals[expr.name])
            addr = self.ir.new_vreg()
            self.ir.emit(ir.IRGlobalAddr(addr, expr.name))
            if isinstance(gtype, (ct.ArrayType, ct.StructType)):
                return addr, gtype
            bits, unsigned = self._width(gtype)
            dst = self.ir.new_vreg(self._is_float(gtype), bits, unsigned)
            self.ir.emit(
                ir.IRLoad(
                    dst,
                    addr,
                    0,
                    self._store_size(gtype),
                    self._signed(gtype),
                    self._is_float(gtype),
                )
            )
            return dst, gtype
        if expr.name in ("NULL", "false"):
            return 0, ct.INT
        if expr.name == "true":
            return 1, ct.INT
        raise LoweringError(f"use of undeclared identifier {expr.name!r}")

    def _signed(self, t: ct.CType) -> bool:
        resolved = self.resolve(t)
        if isinstance(resolved, ct.IntType):
            return not resolved.unsigned
        return True

    def _load_location_or_reg(self, location: _Location) -> Tuple[ir.Operand, ct.CType]:
        if isinstance(location, _RegisterLocation):
            return location.reg, location.type
        return self._load_location(location)

    def _load_location(self, location: _Location) -> Tuple[ir.Operand, ct.CType]:
        if isinstance(location, _RegisterLocation):
            return location.reg, location.type
        t = self.resolve(location.type)
        if isinstance(t, (ct.ArrayType, ct.StructType)):
            # Arrays/structs decay to their address.
            if location.offset == 0:
                return location.addr, t
            base = self._to_reg(location.addr)
            dst = self.ir.new_vreg()
            self.ir.emit(ir.IRBinOp("add", dst, base, location.offset))
            return dst, t
        bits, unsigned = self._width(t)
        dst = self.ir.new_vreg(self._is_float(t), bits, unsigned)
        self.ir.emit(
            ir.IRLoad(
                dst,
                self._to_reg(location.addr),
                location.offset,
                self._store_size(t),
                self._signed(t),
                self._is_float(t),
            )
        )
        return dst, t

    def _store_location(
        self, location: _Location, value: ir.Operand, value_type: ct.CType
    ) -> None:
        if isinstance(location, _RegisterLocation):
            converted = self._convert(value, value_type, location.type)
            self.ir.emit(ir.IRMove(location.reg, converted))
            return
        t = self.resolve(location.type)
        converted = self._convert(value, value_type, t)
        self.ir.emit(
            ir.IRStore(
                converted,
                self._to_reg(location.addr),
                location.offset,
                self._store_size(t),
                self._is_float(t),
            )
        )

    # -- lvalues ---------------------------------------------------------------

    def _lower_lvalue(self, expr: ast.Expr) -> _Location:
        if isinstance(expr, ast.Identifier):
            if expr.name in self.vars:
                return self.vars[expr.name]
            if expr.name in self.globals:
                gtype = self.resolve(self.globals[expr.name])
                addr = self.ir.new_vreg()
                self.ir.emit(ir.IRGlobalAddr(addr, expr.name))
                return _MemoryLocation(addr, 0, gtype)
            raise LoweringError(f"use of undeclared identifier {expr.name!r}")
        if isinstance(expr, ast.UnaryOp) and expr.op == "*":
            value, vtype = self._lower_expr(expr.operand)
            vtype = ct.decay(self.resolve(vtype))
            pointee = vtype.pointee if isinstance(vtype, ct.PointerType) else ct.INT
            return _MemoryLocation(self._to_reg(value), 0, self.resolve(pointee))
        if isinstance(expr, ast.Index):
            base, base_type = self._lower_expr(expr.base)
            base_type = ct.decay(self.resolve(base_type))
            elem = (
                self.resolve(base_type.pointee)
                if isinstance(base_type, ct.PointerType)
                else ct.INT
            )
            index, _ = self._lower_expr(expr.index)
            if isinstance(index, (int, float)):
                return _MemoryLocation(
                    self._to_reg(base), int(index) * elem.sizeof(), elem
                )
            scaled = self.ir.new_vreg()
            self.ir.emit(ir.IRBinOp("mul", scaled, index, elem.sizeof()))
            addr = self.ir.new_vreg()
            self.ir.emit(ir.IRBinOp("add", addr, self._to_reg(base), scaled))
            return _MemoryLocation(addr, 0, elem)
        if isinstance(expr, ast.Member):
            if expr.arrow:
                base, base_type = self._lower_expr(expr.base)
                base_type = ct.decay(self.resolve(base_type))
                struct = (
                    self.resolve(base_type.pointee)
                    if isinstance(base_type, ct.PointerType)
                    else None
                )
                base_addr: ir.Operand = self._to_reg(base)
                base_offset = 0
            else:
                base_loc = self._lower_lvalue(expr.base)
                if isinstance(base_loc, _RegisterLocation):
                    raise LoweringError("member access on register-allocated struct")
                struct = self.resolve(base_loc.type)
                base_addr = base_loc.addr
                base_offset = base_loc.offset
            if not isinstance(struct, ct.StructType):
                raise LoweringError(f"member access {expr.field_name!r} on non-struct")
            struct = self.structs.get(struct.tag, struct)
            if not struct.has_field(expr.field_name):
                raise LoweringError(
                    f"struct {struct.tag} has no field {expr.field_name!r}"
                )
            return _MemoryLocation(
                base_addr,
                base_offset + struct.field_offset(expr.field_name),
                self.resolve(struct.field_type(expr.field_name)),
            )
        if isinstance(expr, ast.Cast):
            return self._lower_lvalue(expr.operand)
        raise LoweringError(f"{type(expr).__name__} is not an lvalue")

    # -- operators ---------------------------------------------------------------

    _BINOP_MAP = {
        "+": "add",
        "-": "sub",
        "*": "mul",
        "/": "div",
        "%": "mod",
        "<<": "shl",
        ">>": "shr",
        "&": "and",
        "|": "or",
        "^": "xor",
    }
    _CMP_MAP = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}

    def _lower_binary(self, expr: ast.BinaryOp) -> Tuple[ir.Operand, ct.CType]:
        op = expr.op
        if op in ("&&", "||"):
            return self._lower_logical(expr)
        if op == ",":
            self._lower_expr(expr.left)
            return self._lower_expr(expr.right)

        left, left_type = self._lower_expr(expr.left)
        right, right_type = self._lower_expr(expr.right)
        left_type = ct.decay(self.resolve(left_type))
        right_type = ct.decay(self.resolve(right_type))

        if op in self._CMP_MAP:
            is_float = self._is_float(left_type) or self._is_float(right_type)
            bits = 64
            unsigned = False
            if is_float:
                left = self._convert(left, left_type, ct.DOUBLE)
                right = self._convert(right, right_type, ct.DOUBLE)
            elif isinstance(left_type, ct.IntType) and isinstance(
                right_type, ct.IntType
            ):
                # Compare in the common type, as C does: the conversions are
                # what make mixed signed/unsigned comparisons well defined.
                common = ct.usual_arithmetic_conversion(
                    ct.integer_promote(left_type), ct.integer_promote(right_type)
                )
                left = self._convert(left, left_type, common)
                right = self._convert(right, right_type, common)
                bits, unsigned = self._width(common)
            dst = self.ir.new_vreg(False, 32)
            self.ir.emit(
                ir.IRCmp(
                    self._CMP_MAP[op], dst, self._to_reg(left, is_float), right,
                    is_float, unsigned, bits,
                )
            )
            return dst, ct.INT

        if op not in self._BINOP_MAP:
            raise LoweringError(f"unsupported binary operator {op!r}")

        # Pointer arithmetic scaling.
        if (
            op in ("+", "-")
            and isinstance(left_type, ct.PointerType)
            and not isinstance(right_type, ct.PointerType)
        ):
            step = max(1, self.resolve(left_type.pointee).sizeof())
            right = self._scale(right, step)
            dst = self.ir.new_vreg()
            self.ir.emit(
                ir.IRBinOp(self._BINOP_MAP[op], dst, self._to_reg(left), right)
            )
            return dst, left_type
        if op == "+" and isinstance(right_type, ct.PointerType) and not isinstance(
            left_type, ct.PointerType
        ):
            step = max(1, self.resolve(right_type.pointee).sizeof())
            left = self._scale(left, step)
            dst = self.ir.new_vreg()
            self.ir.emit(ir.IRBinOp("add", dst, self._to_reg(right), left))
            return dst, right_type
        if op == "-" and isinstance(left_type, ct.PointerType) and isinstance(
            right_type, ct.PointerType
        ):
            step = max(1, self.resolve(left_type.pointee).sizeof())
            diff = self.ir.new_vreg()
            self.ir.emit(ir.IRBinOp("sub", diff, self._to_reg(left), right))
            dst = self.ir.new_vreg()
            self.ir.emit(ir.IRBinOp("div", dst, diff, step))
            return dst, ct.LONG

        if op in ("<<", ">>") and left_type.is_integer():
            # Shifts take the promoted LEFT operand's type; the count is not
            # converted (backends mask it by the operation width, exactly as
            # ctypes.int_binop does).
            result_type = ct.integer_promote(left_type)
        else:
            result_type = ct.usual_arithmetic_conversion(
                ct.integer_promote(left_type)
                if left_type.is_arithmetic()
                else left_type,
                ct.integer_promote(right_type)
                if right_type.is_arithmetic()
                else right_type,
            )
        is_float = self._is_float(result_type)
        left = self._convert(left, left_type, result_type)
        if op not in ("<<", ">>"):
            right = self._convert(right, right_type, result_type)
        bits, unsigned = self._width(result_type)
        dst = self.ir.new_vreg(is_float, bits, unsigned)
        self.ir.emit(
            ir.IRBinOp(
                self._BINOP_MAP[op], dst, self._to_reg(left, is_float), right,
                is_float, unsigned, bits,
            )
        )
        return dst, result_type

    def _scale(self, operand: ir.Operand, step: int) -> ir.Operand:
        if step == 1:
            return operand
        if isinstance(operand, (int, float)):
            return int(operand) * step
        dst = self.ir.new_vreg()
        self.ir.emit(ir.IRBinOp("mul", dst, operand, step))
        return dst

    def _lower_logical(self, expr: ast.BinaryOp) -> Tuple[ir.Operand, ct.CType]:
        result = self.ir.new_vreg(False, 32)
        right_label = self.ir.new_label("Llog")
        end_label = self.ir.new_label("Lend")
        short_label = self.ir.new_label("Lshort")

        left, _ = self._lower_expr(expr.left)
        left_reg = self._to_reg(left)
        if expr.op == "&&":
            self.ir.emit(ir.IRBranch(left_reg, right_label, short_label))
            short_value = 0
        else:
            self.ir.emit(ir.IRBranch(left_reg, short_label, right_label))
            short_value = 1
        self.ir.emit(ir.IRLabel(right_label))
        right, _ = self._lower_expr(expr.right)
        norm = self.ir.new_vreg(False, 32)
        self.ir.emit(ir.IRCmp("ne", norm, self._to_reg(right), 0))
        self.ir.emit(ir.IRMove(result, norm))
        self.ir.emit(ir.IRJump(end_label))
        self.ir.emit(ir.IRLabel(short_label))
        self.ir.emit(ir.IRConst(result, short_value))
        self.ir.emit(ir.IRLabel(end_label))
        return result, ct.INT

    def _lower_unary(self, expr: ast.UnaryOp) -> Tuple[ir.Operand, ct.CType]:
        if expr.op == "&":
            location = self._lower_lvalue(expr.operand)
            if isinstance(location, _RegisterLocation):
                raise LoweringError("cannot take the address of a register variable")
            if location.offset == 0:
                return location.addr, ct.PointerType(location.type)
            dst = self.ir.new_vreg()
            self.ir.emit(
                ir.IRBinOp("add", dst, self._to_reg(location.addr), location.offset)
            )
            return dst, ct.PointerType(location.type)
        if expr.op == "*":
            location = self._lower_lvalue(expr)
            return self._load_location(location)
        if expr.op in ("++", "--"):
            return self._lower_incdec(expr.operand, expr.op, postfix=False)

        value, vtype = self._lower_expr(expr.operand)
        vtype = self.resolve(vtype)
        if expr.op == "+":
            return value, vtype
        if expr.op == "-":
            is_float = self._is_float(vtype)
            if is_float:
                dst = self.ir.new_vreg(True)
                self.ir.emit(ir.IRUnary("neg", dst, self._to_reg(value, True), True))
                return dst, vtype
            result_type = ct.integer_promote(vtype) if vtype.is_integer() else vtype
            value = self._convert(value, vtype, result_type)
            bits, unsigned = self._width(result_type)
            dst = self.ir.new_vreg(False, bits, unsigned)
            self.ir.emit(
                ir.IRUnary("neg", dst, self._to_reg(value), False, bits, unsigned)
            )
            return dst, result_type
        if expr.op == "~":
            result_type = ct.integer_promote(vtype) if vtype.is_integer() else ct.INT
            value = self._convert(value, vtype, result_type)
            bits, unsigned = self._width(result_type)
            dst = self.ir.new_vreg(False, bits, unsigned)
            self.ir.emit(
                ir.IRUnary("not", dst, self._to_reg(value), False, bits, unsigned)
            )
            return dst, result_type
        if expr.op == "!":
            dst = self.ir.new_vreg(False, 32)
            self.ir.emit(ir.IRCmp("eq", dst, self._to_reg(value), 0))
            return dst, ct.INT
        raise LoweringError(f"unsupported unary operator {expr.op!r}")

    def _lower_incdec(self, target: ast.Expr, op: str, postfix: bool) -> Tuple[
        ir.Operand, ct.CType
    ]:
        location = self._lower_lvalue(target)
        current, t = self._load_location_or_reg(location)
        t = self.resolve(t)
        step = 1
        op_type = t
        if isinstance(ct.decay(t), ct.PointerType):
            step = max(1, self.resolve(ct.decay(t).pointee).sizeof())
        elif t.is_integer():
            # ++/-- compute in the promoted type and narrow on the store.
            op_type = ct.integer_promote(t)
            current = self._convert(current, t, op_type)
        is_float = self._is_float(t)
        bits, unsigned = self._width(op_type)
        current_reg = self._to_reg(current, is_float)
        if (
            postfix
            and isinstance(location, _RegisterLocation)
            and current_reg == location.reg
        ):
            # x++ must yield the ORIGINAL value: for a register-promoted
            # variable the store below overwrites the vreg we would return,
            # so save a copy first.
            saved = self.ir.new_vreg(is_float, current_reg.bits, current_reg.unsigned)
            self.ir.emit(ir.IRMove(saved, current_reg))
            current_reg = saved
        updated = self.ir.new_vreg(is_float, bits, unsigned)
        self.ir.emit(
            ir.IRBinOp(
                "add" if op == "++" else "sub", updated, current_reg, step,
                is_float, unsigned, bits,
            )
        )
        self._store_location(location, updated, op_type)
        if postfix:
            return current_reg, t
        # The value of ++x is the updated value converted back to x's type.
        return self._convert(updated, op_type, t), t

    def _lower_assignment(self, expr: ast.Assignment) -> Tuple[ir.Operand, ct.CType]:
        location = self._lower_lvalue(expr.target)
        target_type = self.resolve(
            location.type if isinstance(
                location, (_RegisterLocation, _MemoryLocation)
            ) else ct.INT
        )
        if expr.op == "=":
            value, vtype = self._lower_expr(expr.value)
            # The value of the assignment expression is the stored value,
            # i.e. the RHS *after* conversion to the target's type.
            converted = self._convert(value, vtype, target_type)
            self._store_location(location, converted, target_type)
            return converted, target_type

        # Compound assignment: load-modify-store.  The operation happens in
        # the same type a standalone ``x op y`` would use (the usual
        # arithmetic conversions; promoted left type for shifts) and the
        # result is converted back to the target's type by the store.
        current, _ = self._load_location_or_reg(location)
        value, vtype = self._lower_expr(expr.value)
        vtype = ct.decay(self.resolve(vtype))
        op = expr.op[:-1]
        decayed = ct.decay(target_type)
        if isinstance(decayed, ct.PointerType) and op in ("+", "-"):
            op_type: ct.CType = decayed
            value = self._scale(value, max(1, self.resolve(decayed.pointee).sizeof()))
        elif op in ("<<", ">>") and target_type.is_integer():
            op_type = ct.integer_promote(target_type)
            current = self._convert(current, target_type, op_type)
        else:
            op_type = ct.usual_arithmetic_conversion(
                ct.integer_promote(target_type)
                if target_type.is_arithmetic()
                else target_type,
                ct.integer_promote(vtype) if vtype.is_arithmetic() else vtype,
            )
            current = self._convert(current, target_type, op_type)
            value = self._convert(value, vtype, op_type)
        is_float = self._is_float(op_type)
        bits, unsigned = self._width(op_type)
        dst = self.ir.new_vreg(is_float, bits, unsigned)
        self.ir.emit(
            ir.IRBinOp(
                self._BINOP_MAP[op], dst, self._to_reg(current, is_float), value,
                is_float, unsigned, bits,
            )
        )
        self._store_location(location, dst, op_type)
        return self._convert(dst, op_type, target_type), target_type

    def _lower_conditional(self, expr: ast.Conditional) -> Tuple[ir.Operand, ct.CType]:
        then_label = self.ir.new_label("Lt")
        else_label = self.ir.new_label("Lf")
        end_label = self.ir.new_label("Lend")
        cond, _ = self._lower_expr(expr.cond)
        self.ir.emit(ir.IRBranch(self._to_reg(cond), then_label, else_label))
        self.ir.emit(ir.IRLabel(then_label))
        then_value, then_type = self._lower_expr(expr.then)
        # Both branches convert to the conditional's common type — the one
        # the checker annotated (usual arithmetic conversions).  Falling
        # back to the then-branch type keeps unannotated ASTs working.
        result_type = then_type
        if expr.ctype is not None:
            annotated = self.resolve(expr.ctype)
            if annotated.is_arithmetic() or isinstance(annotated, ct.PointerType):
                result_type = annotated
        is_float = self._is_float(result_type)
        bits, unsigned = self._width(result_type)
        result = self.ir.new_vreg(is_float, bits, unsigned)
        self.ir.emit(
            ir.IRMove(result, self._convert(then_value, then_type, result_type))
        )
        self.ir.emit(ir.IRJump(end_label))
        self.ir.emit(ir.IRLabel(else_label))
        else_value, else_type = self._lower_expr(expr.otherwise)
        self.ir.emit(
            ir.IRMove(result, self._convert(else_value, else_type, result_type))
        )
        self.ir.emit(ir.IRLabel(end_label))
        return result, result_type

    def _lower_call(self, expr: ast.Call) -> Tuple[ir.Operand, ct.CType]:
        if not isinstance(expr.func, ast.Identifier):
            raise LoweringError("indirect calls are not supported")
        name = expr.func.name
        ftype = self.functions.get(name)
        return_type = self.resolve(ftype.return_type) if ftype is not None else ct.INT
        args: List[ir.Operand] = []
        for index, arg in enumerate(expr.args):
            value, vtype = self._lower_expr(arg)
            if ftype is not None and index < len(ftype.param_types):
                value = self._convert(
                    value, vtype, ct.decay(self.resolve(ftype.param_types[index]))
                )
            args.append(value)
        if ct.is_void(return_type):
            self.ir.emit(ir.IRCall(None, name, args))
            return 0, ct.VOID
        is_float = self._is_float(return_type)
        bits, unsigned = self._width(return_type)
        dst = self.ir.new_vreg(is_float, bits, unsigned)
        self.ir.emit(ir.IRCall(dst, name, args, is_float))
        return dst, return_type


def lower_function(
    program: ast.Program, func: ast.FunctionDef, promote_scalars: bool = False
) -> Tuple[ir.IRFunction, Dict[str, str]]:
    """Convenience wrapper around :class:`Lowerer`."""
    return Lowerer(program, func, promote_scalars=promote_scalars).lower()
