"""x86-64 (AT&T syntax) backend for the Mini-C compiler.

The emitter walks the flat IR instruction list and, for every instruction,
loads operands into reserved scratch registers, performs the operation and
stores the result back to the destination's assigned location (a physical
register at -O3, a stack slot at -O0).  This load/op/store discipline is
exactly how GCC -O0 shapes its output, which is the dialect the paper's
training pairs are drawn from.

Register usage:

* ``%r10``/``%r11`` (plus ``%rax``/``%rdx``/``%rcx`` for division and
  shifts) are instruction-local integer scratch registers.
* ``%xmm14``/``%xmm15`` are instruction-local FP scratch registers.
* ``%rbx``, ``%r12``–``%r15`` are the allocatable integer registers handed
  to the linear-scan allocator at -O3.  They are callee-saved in the SysV
  ABI, so values survive calls without caller-save bookkeeping.
* The SysV ABI has no callee-saved vector registers, so FP virtual
  registers always live in spill slots and are loaded on demand.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence

from repro.compiler import ir
from repro.compiler.regalloc import Allocation

#: Integer argument registers in SysV order.
_INT_ARGS = ("%rdi", "%rsi", "%rdx", "%rcx", "%r8", "%r9")
#: FP argument registers in SysV order.
_FLOAT_ARGS = tuple(f"%xmm{i}" for i in range(8))

#: Sub-register names (1/2/4/8 bytes) for every general-purpose register.
_LEGACY_SUBREGS = {
    "%rax": ("%al", "%ax", "%eax"), "%rbx": ("%bl", "%bx", "%ebx"),
    "%rcx": ("%cl", "%cx", "%ecx"), "%rdx": ("%dl", "%dx", "%edx"),
    "%rsi": ("%sil", "%si", "%esi"), "%rdi": ("%dil", "%di", "%edi"),
    "%rbp": ("%bpl", "%bp", "%ebp"), "%rsp": ("%spl", "%sp", "%esp"),
}


def _subreg(reg: str, size: int) -> str:
    """The ``size``-byte view of a 64-bit register name."""
    if size == 8:
        return reg
    if reg in _LEGACY_SUBREGS:
        return _LEGACY_SUBREGS[reg][{1: 0, 2: 1, 4: 2}[size]]
    return reg + {1: "b", 2: "w", 4: "d"}[size]

#: setCC suffixes for signed and unsigned integer comparisons.
_CC_SIGNED = {"eq": "e", "ne": "ne", "lt": "l", "le": "le", "gt": "g", "ge": "ge"}
_CC_UNSIGNED = {"eq": "e", "ne": "ne", "lt": "b", "le": "be", "gt": "a", "ge": "ae"}
#: ucomisd sets CF/ZF like an unsigned compare.
_CC_FLOAT = _CC_UNSIGNED


def _escape_string(text: str) -> str:
    out = []
    for ch in text:
        code = ord(ch)
        if ch in ('"', "\\"):
            out.append("\\" + ch)
        elif 32 <= code < 127:
            out.append(ch)
        else:
            out.append(f"\\{code & 0xFF:03o}")
    return "".join(out)


class X86Backend:
    """Backend descriptor handed to the driver."""

    name = "x86"
    INT_ALLOCATABLE: Sequence[str] = ("%rbx", "%r12", "%r13", "%r14", "%r15")
    FLOAT_ALLOCATABLE: Sequence[str] = ()

    def int_registers(self, opt_level: str) -> List[str]:
        return list(self.INT_ALLOCATABLE) if opt_level == "O3" else []

    def float_registers(self, opt_level: str) -> List[str]:
        return list(self.FLOAT_ALLOCATABLE) if opt_level == "O3" else []

    def emit_function(
        self,
        func: ir.IRFunction,
        allocation: Allocation,
        string_literals: Dict[str, str],
        global_sizes: Dict[str, int],
        global_inits: Optional[Dict[str, ir.GlobalInit]] = None,
    ) -> str:
        return _Emitter(
            func, allocation, string_literals, global_sizes, global_inits
        ).emit()


class _Emitter:
    def __init__(
        self,
        func: ir.IRFunction,
        allocation: Allocation,
        string_literals: Dict[str, str],
        global_sizes: Dict[str, int],
        global_inits: Optional[Dict[str, ir.GlobalInit]] = None,
    ) -> None:
        self.func = func
        self.allocation = allocation
        self.string_literals = string_literals
        self.global_sizes = global_sizes
        self.global_inits = global_inits or {}
        self.body: List[str] = []
        self.float_pool: Dict[int, str] = {}  # IEEE bits -> label
        self.used_globals: List[str] = []
        self.ret_label = f".Lret_{func.name}"
        self.saved = allocation.used_registers(X86Backend.INT_ALLOCATABLE)
        self._layout_frame()

    # -- frame ---------------------------------------------------------------

    def _layout_frame(self) -> None:
        offset = 0
        self.save_offsets: Dict[str, int] = {}
        for reg in self.saved:
            offset += 8
            self.save_offsets[reg] = offset
        self.slot_offsets: Dict[str, int] = {}
        for slot in self.func.slots.values():
            size = max(slot.size, 1)
            # Narrow spill slots pack at their natural alignment; anything
            # larger than a word (arrays, structs) stays 8-byte aligned.
            align = size if size in (1, 2, 4) else 8
            offset = -(-(offset + size) // align) * align
            self.slot_offsets[slot.name] = offset
            slot.offset = -offset
        self.frame_size = (offset + 15) & ~15

    def _slot_addr(self, slot_name: str) -> str:
        return f"-{self.slot_offsets[slot_name]}(%rbp)"

    # -- emission helpers ----------------------------------------------------

    def op(self, text: str) -> None:
        self.body.append("\t" + text)

    def label(self, name: str) -> None:
        self.body.append(f"{name}:")

    def _float_label(self, value: float) -> str:
        bits = struct.unpack("<Q", struct.pack("<d", float(value)))[0]
        if bits not in self.float_pool:
            self.float_pool[bits] = f".LCF{len(self.float_pool)}"
        return self.float_pool[bits]

    def _load_imm(self, value: int, scratch: str) -> None:
        if -(1 << 31) <= value < (1 << 31):
            self.op(f"movq\t${value}, {scratch}")
        else:
            self.op(f"movabsq\t${value}, {scratch}")

    def read_int(self, operand: ir.Operand, scratch: str) -> str:
        """Materialise an integer operand in ``scratch`` and return it.

        Values in physical registers are kept fully extended, so a plain
        ``movq`` suffices; narrow spill slots are reloaded with the
        sign-/zero-extending load that matches the value's type.
        """
        if isinstance(operand, ir.VReg):
            kind, name = self.allocation.location(operand)
            if kind == "reg":
                if name != scratch:
                    self.op(f"movq\t{name}, {scratch}")
            else:
                mem = self._slot_addr(name)
                size = max(1, operand.bits // 8)
                if size == 8:
                    self.op(f"movq\t{mem}, {scratch}")
                elif size == 4 and operand.unsigned:
                    self.op(f"movl\t{mem}, {_subreg(scratch, 4)}")
                else:
                    mnemonic = {
                        (1, False): "movsbq", (1, True): "movzbq",
                        (2, False): "movswq", (2, True): "movzwq",
                        (4, False): "movslq",
                    }[(size, operand.unsigned)]
                    self.op(f"{mnemonic}\t{mem}, {scratch}")
        else:
            self._load_imm(int(operand), scratch)
        return scratch

    def write_int(self, scratch: str, dst: ir.VReg) -> None:
        kind, name = self.allocation.location(dst)
        if kind == "reg":
            if name != scratch:
                self.op(f"movq\t{scratch}, {name}")
        else:
            size = max(1, dst.bits // 8)
            mnemonic = {1: "movb", 2: "movw", 4: "movl", 8: "movq"}[size]
            self.op(f"{mnemonic}\t{_subreg(scratch, size)}, {self._slot_addr(name)}")

    def read_float(self, operand: ir.Operand, scratch: str) -> str:
        if isinstance(operand, ir.VReg):
            kind, name = self.allocation.location(operand)
            if kind == "reg":
                if name != scratch:
                    self.op(f"movsd\t{name}, {scratch}")
            else:
                self.op(f"movsd\t{self._slot_addr(name)}, {scratch}")
        else:
            label = self._float_label(float(operand))
            self.op(f"movsd\t{label}(%rip), {scratch}")
        return scratch

    def write_float(self, scratch: str, dst: ir.VReg) -> None:
        kind, name = self.allocation.location(dst)
        if kind == "reg":
            if name != scratch:
                self.op(f"movsd\t{scratch}, {name}")
        else:
            self.op(f"movsd\t{scratch}, {self._slot_addr(name)}")

    def _is_float_operand(self, operand: ir.Operand) -> bool:
        if isinstance(operand, ir.VReg):
            return operand.is_float
        return isinstance(operand, float)

    # -- prologue / epilogue -------------------------------------------------

    def _emit_prologue(self) -> None:
        self.op("pushq\t%rbp")
        self.op("movq\t%rsp, %rbp")
        if self.frame_size:
            self.op(f"subq\t${self.frame_size}, %rsp")
        for reg in self.saved:
            self.op(f"movq\t{reg}, -{self.save_offsets[reg]}(%rbp)")
        int_index = 0
        float_index = 0
        stack_offset = 16
        for param in self.func.params:
            if param.is_float:
                if float_index < len(_FLOAT_ARGS):
                    src = _FLOAT_ARGS[float_index]
                    float_index += 1
                else:
                    self.op(f"movsd\t{stack_offset}(%rbp), %xmm14")
                    stack_offset += 8
                    src = "%xmm14"
                self.write_float(src, param)
            else:
                if int_index < len(_INT_ARGS):
                    src = _INT_ARGS[int_index]
                    int_index += 1
                else:
                    self.op(f"movq\t{stack_offset}(%rbp), %r10")
                    stack_offset += 8
                    src = "%r10"
                self.write_int(src, param)

    def _emit_epilogue(self) -> None:
        self.label(self.ret_label)
        for reg in self.saved:
            self.op(f"movq\t-{self.save_offsets[reg]}(%rbp), {reg}")
        self.op("leave")
        self.op("ret")

    # -- instruction emission --------------------------------------------------

    def emit(self) -> str:
        self._emit_prologue()
        instrs = self.func.instrs
        for index, instr in enumerate(instrs):
            self._emit_instr(instr, index)
        self._emit_epilogue()
        return self._assemble()

    def _next_label(self, index: int) -> str:
        nxt = self.func.instrs[index + 1] if index + 1 < len(self.func.instrs) else None
        return nxt.name if isinstance(nxt, ir.IRLabel) else ""

    def _emit_instr(self, instr: ir.IRInstr, index: int) -> None:
        if isinstance(instr, ir.IRLabel):
            self.label(instr.name)
        elif isinstance(instr, ir.IRConst):
            if instr.dst.is_float:
                self.write_float(
                    self.read_float(float(instr.value), "%xmm14"), instr.dst
                )
            else:
                self.write_int(self.read_int(int(instr.value), "%r10"), instr.dst)
        elif isinstance(instr, ir.IRMove):
            if instr.dst.is_float or self._is_float_operand(instr.src):
                self.write_float(self.read_float(instr.src, "%xmm14"), instr.dst)
            else:
                self.write_int(self.read_int(instr.src, "%r10"), instr.dst)
        elif isinstance(instr, ir.IRBinOp):
            self._emit_binop(instr)
        elif isinstance(instr, ir.IRCmp):
            self._emit_cmp(instr)
        elif isinstance(instr, ir.IRUnary):
            self._emit_unary(instr)
        elif isinstance(instr, ir.IRCast):
            self._emit_cast(instr)
        elif isinstance(instr, ir.IRLoad):
            self._emit_load(instr)
        elif isinstance(instr, ir.IRStore):
            self._emit_store(instr)
        elif isinstance(instr, ir.IRFrameAddr):
            self.op(f"leaq\t{self._slot_addr(instr.slot)}, %r10")
            self.write_int("%r10", instr.dst)
        elif isinstance(instr, ir.IRGlobalAddr):
            if (
                instr.symbol not in self.string_literals
                and instr.symbol not in self.used_globals
            ):
                self.used_globals.append(instr.symbol)
            self.op(f"leaq\t{instr.symbol}(%rip), %r10")
            self.write_int("%r10", instr.dst)
        elif isinstance(instr, ir.IRCall):
            self._emit_call(instr)
        elif isinstance(instr, ir.IRJump):
            if instr.target != self._next_label(index):
                self.op(f"jmp\t{instr.target}")
        elif isinstance(instr, ir.IRBranch):
            self.read_int(instr.cond, "%r10")
            self.op("testq\t%r10, %r10")
            self.op(f"jne\t{instr.true_target}")
            if instr.false_target != self._next_label(index):
                self.op(f"jmp\t{instr.false_target}")
        elif isinstance(instr, ir.IRRet):
            if instr.value is not None:
                if instr.is_float or self._is_float_operand(instr.value):
                    self.read_float(instr.value, "%xmm0")
                else:
                    self.read_int(instr.value, "%rax")
            if index != len(self.func.instrs) - 1:
                self.op(f"jmp\t{self.ret_label}")
        else:
            raise NotImplementedError(f"x86 backend cannot emit {type(instr).__name__}")

    def _extend(self, scratch: str, bits: int, unsigned: bool) -> None:
        """Restore the full-width register invariant after a narrow op.

        32-bit instructions already zero the upper half, so unsigned values
        need nothing; signed results are sign-extended back to 64 bits.
        """
        if bits >= 64 or unsigned:
            return
        self.op(f"movslq\t{_subreg(scratch, 4)}, {scratch}")

    def _emit_binop(self, instr: ir.IRBinOp) -> None:
        if instr.is_float:
            self.read_float(instr.left, "%xmm14")
            self.read_float(instr.right, "%xmm15")
            mnemonic = {"add": "addsd", "sub": "subsd", "mul": "mulsd", "div": "divsd"}[
                instr.op
            ]
            self.op(f"{mnemonic}\t%xmm15, %xmm14")
            self.write_float("%xmm14", instr.dst)
            return
        self.read_int(instr.left, "%r10")
        self.read_int(instr.right, "%r11")
        # Integer binops happen at int width or wider (C's promotions).
        wide = instr.bits > 32
        suffix = "q" if wide else "l"
        acc = "%r10" if wide else "%r10d"
        rhs = "%r11" if wide else "%r11d"
        if instr.op in ("add", "sub", "mul", "and", "or", "xor"):
            mnemonic = {
                "add": "add", "sub": "sub", "mul": "imul",
                "and": "and", "or": "or", "xor": "xor",
            }[instr.op]
            self.op(f"{mnemonic}{suffix}\t{rhs}, {acc}")
        elif instr.op in ("div", "mod"):
            self.op(f"mov{suffix}\t{acc}, {_subreg('%rax', 4 if not wide else 8)}")
            if instr.unsigned:
                self.op("xorl\t%edx, %edx")
                self.op(f"div{suffix}\t{rhs}")
            else:
                self.op("cqto" if wide else "cltd")
                self.op(f"idiv{suffix}\t{rhs}")
            result = "%rax" if instr.op == "div" else "%rdx"
            self.op(f"mov{suffix}\t{_subreg(result, 4 if not wide else 8)}, {acc}")
        elif instr.op in ("shl", "shr"):
            self.op("movq\t%r11, %rcx")
            if instr.op == "shl":
                self.op(f"sal{suffix}\t%cl, {acc}")
            elif instr.unsigned:
                self.op(f"shr{suffix}\t%cl, {acc}")
            else:
                self.op(f"sar{suffix}\t%cl, {acc}")
        else:
            raise NotImplementedError(f"x86 backend cannot emit binop {instr.op!r}")
        self._extend("%r10", instr.bits, instr.unsigned)
        self.write_int("%r10", instr.dst)

    def _emit_cmp(self, instr: ir.IRCmp) -> None:
        if instr.is_float:
            self.read_float(instr.left, "%xmm14")
            self.read_float(instr.right, "%xmm15")
            self.op("ucomisd\t%xmm15, %xmm14")
            suffix = _CC_FLOAT[instr.op]
        else:
            self.read_int(instr.left, "%r10")
            self.read_int(instr.right, "%r11")
            if instr.bits > 32:
                self.op("cmpq\t%r11, %r10")
            else:
                self.op("cmpl\t%r11d, %r10d")
            table = _CC_UNSIGNED if instr.unsigned else _CC_SIGNED
            suffix = table[instr.op]
        self.op(f"set{suffix}\t%r10b")
        self.op("movzbq\t%r10b, %r10")
        self.write_int("%r10", instr.dst)

    def _emit_unary(self, instr: ir.IRUnary) -> None:
        if instr.is_float:
            self.read_float(instr.src, "%xmm15")
            self.op("pxor\t%xmm14, %xmm14")
            self.op("subsd\t%xmm15, %xmm14")
            self.write_float("%xmm14", instr.dst)
            return
        self.read_int(instr.src, "%r10")
        wide = instr.bits > 32
        mnemonic = "neg" if instr.op == "neg" else "not"
        self.op(f"{mnemonic}{'q' if wide else 'l'}\t{'%r10' if wide else '%r10d'}")
        self._extend("%r10", instr.bits, instr.unsigned)
        self.write_int("%r10", instr.dst)

    def _emit_cast(self, instr: ir.IRCast) -> None:
        if instr.kind == "i2f":
            self.read_int(instr.src, "%r10")
            self.op("cvtsi2sdq\t%r10, %xmm14")
            self.write_float("%xmm14", instr.dst)
        elif instr.kind == "f2i":
            self.read_float(instr.src, "%xmm14")
            self.op("cvttsd2si\t%xmm14, %r10")
            self.write_int("%r10", instr.dst)
        elif instr.kind in ir.WIDTH_CASTS:
            bits, unsigned = ir.WIDTH_CASTS[instr.kind]
            self.read_int(instr.src, "%r10")
            if bits == 32 and unsigned:
                self.op("movl\t%r10d, %r10d")
            else:
                mnemonic = {
                    (8, False): "movsbq", (8, True): "movzbq",
                    (16, False): "movswq", (16, True): "movzwq",
                    (32, False): "movslq",
                }[(bits, unsigned)]
                self.op(f"{mnemonic}\t{_subreg('%r10', bits // 8)}, %r10")
            self.write_int("%r10", instr.dst)
        elif instr.dst.is_float:
            self.write_float(self.read_float(instr.src, "%xmm14"), instr.dst)
        else:
            self.write_int(self.read_int(instr.src, "%r10"), instr.dst)

    def _emit_load(self, instr: ir.IRLoad) -> None:
        self.read_int(instr.addr, "%r11")
        mem = f"{instr.offset}(%r11)" if instr.offset else "(%r11)"
        if instr.is_float:
            if instr.size == 4:
                self.op(f"movss\t{mem}, %xmm14")
                self.op("cvtss2sd\t%xmm14, %xmm14")
            else:
                self.op(f"movsd\t{mem}, %xmm14")
            self.write_float("%xmm14", instr.dst)
            return
        if instr.size == 8:
            self.op(f"movq\t{mem}, %r10")
        elif instr.size == 4 and not instr.signed:
            self.op(f"movl\t{mem}, %r10d")
        else:
            mnemonic = {
                (1, True): "movsbq", (1, False): "movzbq",
                (2, True): "movswq", (2, False): "movzwq",
                (4, True): "movslq",
            }[(instr.size, instr.signed)]
            self.op(f"{mnemonic}\t{mem}, %r10")
        self.write_int("%r10", instr.dst)

    def _emit_store(self, instr: ir.IRStore) -> None:
        if instr.is_float:
            self.read_float(instr.src, "%xmm14")
            self.read_int(instr.addr, "%r11")
            mem = f"{instr.offset}(%r11)" if instr.offset else "(%r11)"
            if instr.size == 4:
                self.op("cvtsd2ss\t%xmm14, %xmm14")
                self.op(f"movss\t%xmm14, {mem}")
            else:
                self.op(f"movsd\t%xmm14, {mem}")
            return
        self.read_int(instr.src, "%r10")
        self.read_int(instr.addr, "%r11")
        mem = f"{instr.offset}(%r11)" if instr.offset else "(%r11)"
        mnemonic = {1: "movb", 2: "movw", 4: "movl", 8: "movq"}[instr.size]
        self.op(f"{mnemonic}\t{_subreg('%r10', instr.size)}, {mem}")

    def _emit_call(self, instr: ir.IRCall) -> None:
        int_index = 0
        float_index = 0
        stack_args: List[ir.Operand] = []
        for arg in instr.args:
            if self._is_float_operand(arg):
                if float_index < len(_FLOAT_ARGS):
                    self.read_float(arg, _FLOAT_ARGS[float_index])
                    float_index += 1
                else:
                    stack_args.append(arg)
            else:
                if int_index < len(_INT_ARGS):
                    self.read_int(arg, _INT_ARGS[int_index])
                    int_index += 1
                else:
                    stack_args.append(arg)
        stack_bytes = (8 * len(stack_args) + 15) & ~15
        if stack_args:
            self.op(f"subq\t${stack_bytes}, %rsp")
            for slot, arg in enumerate(stack_args):
                if self._is_float_operand(arg):
                    self.read_float(arg, "%xmm14")
                    self.op(f"movsd\t%xmm14, {8 * slot}(%rsp)")
                else:
                    self.read_int(arg, "%r10")
                    self.op(f"movq\t%r10, {8 * slot}(%rsp)")
        self.op(f"movl\t${float_index}, %eax")
        self.op(f"call\t{instr.name}")
        if stack_args:
            self.op(f"addq\t${stack_bytes}, %rsp")
        if instr.dst is not None:
            if instr.float_ret or instr.dst.is_float:
                self.write_float("%xmm0", instr.dst)
            else:
                self.write_int("%rax", instr.dst)

    # -- file assembly ---------------------------------------------------------

    def _assemble(self) -> str:
        name = self.func.name
        lines = [
            f'\t.file\t"{name}.c"',
            "\t.text",
            f"\t.globl\t{name}",
            f"\t.type\t{name}, @function",
            f"{name}:",
        ]
        lines.extend(self.body)
        lines.append(f"\t.size\t{name}, .-{name}")
        if self.string_literals or self.float_pool:
            lines.append("\t.section\t.rodata")
            for symbol, text in self.string_literals.items():
                lines.append(f"{symbol}:")
                lines.append(f'\t.string\t"{_escape_string(text)}"')
            for bits, label in self.float_pool.items():
                value = struct.unpack("<d", struct.pack("<Q", bits))[0]
                lines.append("\t.align\t8")
                lines.append(f"{label}:")
                lines.append(f"\t.quad\t0x{bits:016x}\t# double {value!r}")
        data_directives = {1: ".byte", 2: ".value", 4: ".long", 8: ".quad"}
        emitted_data = False
        for symbol in self.used_globals:
            init = self.global_inits.get(symbol)
            if init is not None:
                if not emitted_data:
                    lines.append("\t.data")
                    emitted_data = True
                # Weak definition: every compiled function is its own
                # translation unit, so two functions sharing an initialised
                # global must still link together (as their .comm symbols
                # always did).  The definitions are identical; the linker
                # keeps one.
                lines.append(f"\t.weak\t{symbol}")
                lines.append("\t.align\t8")
                lines.append(f"\t.type\t{symbol}, @object")
                lines.append(f"\t.size\t{symbol}, {init.size}")
                lines.append(f"{symbol}:")
                for elem_size, raw in init.items:
                    lines.append(f"\t{data_directives[elem_size]}\t{raw}")
                emitted = sum(elem_size for elem_size, _ in init.items)
                if emitted < init.size:
                    lines.append(f"\t.zero\t{init.size - emitted}")
                continue
            size = self.global_sizes.get(symbol)
            if size is not None:
                lines.append(f"\t.comm\t{symbol},{size},8")
        lines.append('\t.section\t.note.GNU-stack,"",@progbits')
        lines.append("")
        return "\n".join(lines)
