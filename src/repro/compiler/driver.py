"""The ``compile_function`` entry point: Mini-C source → assembly.

This module plays the role GCC plays in the SLaDe paper: a deterministic
producer of (C, assembly) pairs for two ISAs (x86-64 AT&T and AArch64) at
two optimisation levels (-O0 and -O3).  The pipeline is

    parse → typecheck → [-O3: AST opts] → lower → [-O3: IR opts]
          → linear-scan regalloc → backend emission

Any front-end or lowering failure is reported as :class:`CompileError`, the
reproduction's equivalent of "GCC rejected the translation unit".
"""

from __future__ import annotations

import copy
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.compiler import ir
from repro.compiler.lowering import Lowerer, LoweringError
from repro.compiler.opt import fold_constants_expr, optimize_function_ast, optimize_ir
from repro.compiler.regalloc import linear_scan
from repro.lang import ast_nodes as ast
from repro.lang import ctypes as ct
from repro.lang.lexer import LexError
from repro.lang.parser import ParseError, parse_program
from repro.lang.printer import print_function
from repro.lang.typecheck import TypeChecker

#: Accepted spellings for the two ISAs.
_ISA_ALIASES = {
    "x86": "x86", "x86-64": "x86", "x86_64": "x86", "amd64": "x86",
    "arm": "arm", "arm64": "arm", "aarch64": "arm",
}
#: Accepted spellings for the two optimisation levels.
_OPT_ALIASES = {
    "o0": "O0", "0": "O0", "-o0": "O0",
    "o3": "O3", "3": "O3", "-o3": "O3",
}

ISAS: Tuple[str, ...] = ("x86", "arm")
OPT_LEVELS: Tuple[str, ...] = ("O0", "O3")


class CompileError(Exception):
    """Raised when a program cannot be compiled (parse/type/lowering error)."""


@dataclass
class CompiledFunction:
    """One (C, assembly) pair: a function compiled for one ISA/opt level."""

    name: str
    isa: str
    opt_level: str
    assembly: str
    source: str
    ir_text: str = field(default="", repr=False)

    def __str__(self) -> str:
        return self.assembly


def _normalize_isa(isa: str) -> str:
    key = str(isa).strip().lower()
    if key not in _ISA_ALIASES:
        raise CompileError(
            f"unknown ISA {isa!r}; expected one of {sorted(set(_ISA_ALIASES))}"
        )
    return _ISA_ALIASES[key]


def _normalize_opt(opt_level: Union[str, int]) -> str:
    key = str(opt_level).strip().lower()
    if key not in _OPT_ALIASES:
        raise CompileError(
            f"unknown optimisation level {opt_level!r}; expected O0 or O3"
        )
    return _OPT_ALIASES[key]


def _backend(isa: str):
    if isa == "x86":
        from repro.compiler.x86 import X86Backend

        return X86Backend()
    from repro.compiler.arm import ArmBackend

    return ArmBackend()


def _parse(source: Union[str, ast.Program]) -> ast.Program:
    if isinstance(source, ast.Program):
        return source
    try:
        return parse_program(source)
    except (ParseError, LexError) as exc:
        raise CompileError(f"parse error: {exc}") from exc


def _typecheck(program: ast.Program) -> None:
    result = TypeChecker(program).check()
    if result.errors:
        raise CompileError("type error: " + "; ".join(result.errors[:5]))


def _select_function(program: ast.Program, name: Optional[str]) -> ast.FunctionDef:
    functions = program.functions()
    if not functions:
        raise CompileError("program defines no function with a body")
    if name is None:
        if len(functions) == 1:
            return functions[0]
        raise CompileError(
            "program defines multiple functions; pass name= "
            f"(one of {[f.name for f in functions]})"
        )
    func = program.function(name)
    if func is None:
        raise CompileError(f"no function named {name!r} with a body")
    return func


# ---------------------------------------------------------------------------
# Global initialisers
# ---------------------------------------------------------------------------


def _const_value(node: ast.Node) -> Union[int, float]:
    """Evaluate a compile-time-constant initialiser expression.

    Raises :class:`CompileError` for anything that is not constant, matching
    how a real C compiler rejects non-constant static initialisers.
    """
    if isinstance(node, ast.Expr):
        folded = fold_constants_expr(copy.deepcopy(node))
        if isinstance(folded, (ast.IntLiteral, ast.CharLiteral)):
            return folded.value
        if isinstance(folded, ast.FloatLiteral):
            return folded.value
    raise CompileError("global initialiser is not a compile-time constant")


def _scalar_init_item(t: ct.CType, node: ast.Node) -> Tuple[int, int]:
    """(element_size, raw two's-complement value) for one scalar datum."""
    value = _const_value(node)
    if isinstance(t, ct.FloatType):
        if t.sizeof() == 4:
            raw = struct.unpack("<I", struct.pack("<f", float(value)))[0]
        else:
            raw = struct.unpack("<Q", struct.pack("<d", float(value)))[0]
        return t.sizeof(), raw
    size = t.sizeof()
    return size, int(value) & ((1 << (8 * size)) - 1)


def _global_init(t: ct.CType, node: ast.Node) -> ir.GlobalInit:
    """Render one global's initialiser into packed data items."""
    if isinstance(t, ct.ArrayType):
        elem = t.element
        if isinstance(node, ast.StringLiteral) and elem.sizeof() == 1:
            data = node.value.encode("latin-1", errors="replace") + b"\0"
            items = [(1, b) for b in data]
            return ir.GlobalInit(max(t.sizeof(), len(data)), items)
        if isinstance(node, ast.InitializerList):
            items = [_scalar_init_item(elem, item) for item in node.items]
            return ir.GlobalInit(t.sizeof(), items)
        raise CompileError("unsupported array initialiser for a global")
    if isinstance(t, (ct.StructType,)):
        raise CompileError("struct global initialisers are not supported")
    if isinstance(node, ast.InitializerList):
        node = node.items[0] if node.items else ast.IntLiteral(0)
    return ir.GlobalInit(max(1, t.sizeof()), [_scalar_init_item(t, node)])


def _collect_global_inits(
    program: ast.Program, lowerer: Lowerer
) -> Dict[str, ir.GlobalInit]:
    """Constant initialiser data for every initialised global declaration."""
    decls: List[ast.Declaration] = []
    for decl in program.decls:
        if isinstance(decl, ast.Declaration):
            decls.append(decl)
        elif isinstance(decl, ast.Block):
            decls.extend(d for d in decl.stmts if isinstance(d, ast.Declaration))
    inits: Dict[str, ir.GlobalInit] = {}
    for decl in decls:
        if decl.init is None:
            continue
        try:
            t = lowerer.resolve(decl.type)
        except LoweringError as exc:
            raise CompileError(str(exc)) from exc
        init = _global_init(t, decl.init)
        # All-zero data stays in .comm/.bss, exactly as GCC leaves it.
        if any(raw != 0 for _, raw in init.items):
            inits[decl.name] = init
    return inits


@dataclass
class LoweredFunction:
    """The ISA-independent front half of one compilation.

    Produced by :func:`lower_for_backend`: the checked program has been
    AST-optimised (at -O3), lowered to IR and IR-optimised (at -O3), and the
    global layout data is collected.  Emitting assembly from it
    (:func:`emit_from_lowered`) only runs register allocation and the
    backend, so callers that need several ISAs — or that also execute the
    IR directly, like the differential oracle's ``ir-O3`` leg — share one
    front-half run instead of repeating parse/typecheck/lower per target.
    """

    name: str
    opt_level: str
    ir_func: ir.IRFunction
    strings: Dict[str, str]
    global_sizes: Dict[str, int]
    global_inits: Dict[str, ir.GlobalInit]
    source: str


def lower_for_backend(
    program: ast.Program,
    name: Optional[str] = None,
    opt_level: Union[str, int] = "O0",
    checker: Optional[TypeChecker] = None,
    verify_ir: bool = False,
    ir_transform=None,
) -> LoweredFunction:
    """Run the front half of :func:`compile_function` on a parsed program.

    ``checker`` optionally supplies an already-run :class:`TypeChecker` so
    repeated compilations of one program type-check once.

    ``verify_ir`` runs the :mod:`repro.analysis.verifier` invariant checker
    on the IR after lowering and again after *each* -O3 pass, raising
    :class:`repro.analysis.verifier.IRVerificationError` with a
    pass-attributed diagnostic on the first violation.  ``ir_transform``
    optionally mutates the final IR in place (the fuzzer's injected
    IR-level miscompiles); it runs after optimisation and, when
    ``verify_ir`` is set, is itself verified.
    """
    opt_level = _normalize_opt(opt_level)
    if checker is None:
        checker = TypeChecker(program)
        result = checker.check()
    else:
        result = getattr(checker, "last_result", None)
        if result is None:
            result = checker.check()
    if result.errors:
        raise CompileError("type error: " + "; ".join(result.errors[:5]))
    func = _select_function(program, name)
    c_source = print_function(func)

    compiled_ast = func
    if opt_level == "O3":
        compiled_ast = optimize_function_ast(func)

    lowerer = Lowerer(
        program, compiled_ast, promote_scalars=(opt_level == "O3"), checker=checker
    )
    try:
        ir_func, string_literals = lowerer.lower()
    except LoweringError as exc:
        raise CompileError(f"lowering error: {exc}") from exc
    after_pass = None
    if verify_ir:
        # Imported lazily: the analysis package depends on repro.compiler.ir
        # only, so there is no cycle, but the common no-verify path should
        # not pay the import.
        from repro.analysis.verifier import verify_function_or_raise

        verify_function_or_raise(ir_func, pass_name="lowering")

        def after_pass(label: str) -> None:
            verify_function_or_raise(ir_func, pass_name=label)

    if opt_level == "O3":
        optimize_ir(ir_func, after_pass=after_pass)
    if ir_transform is not None:
        ir_transform(ir_func)
        if verify_ir:
            label = getattr(ir_transform, "__name__", "transform")
            verify_function_or_raise(ir_func, pass_name=f"inject:{label}")

    global_sizes: Dict[str, int] = {}
    for global_name, global_type in lowerer.globals.items():
        try:
            global_sizes[global_name] = max(1, lowerer.resolve(global_type).sizeof())
        except LoweringError:
            continue
    global_inits = _collect_global_inits(program, lowerer)
    return LoweredFunction(
        name=ir_func.name,
        opt_level=opt_level,
        ir_func=ir_func,
        strings=string_literals,
        global_sizes=global_sizes,
        global_inits=global_inits,
        source=c_source,
    )


def _clone_for_backend(func: ir.IRFunction) -> ir.IRFunction:
    """A frame-private view of a lowered function.

    Register allocation adds spill slots and the backends assign frame
    offsets, but neither ever mutates an instruction (copy propagation only
    runs inside ``optimize_ir``, before the IR is shared).  Sharing the
    instruction list and copying just the slot table makes re-emission two
    orders of magnitude cheaper than a deep copy.
    """
    return ir.IRFunction(
        name=func.name,
        params=list(func.params),
        param_names=list(func.param_names),
        instrs=func.instrs,
        slots={
            name: ir.StackSlot(slot.name, slot.size, slot.offset)
            for name, slot in func.slots.items()
        },
        returns_float=func.returns_float,
        next_vreg=func.next_vreg,
        next_label=func.next_label,
    )


def emit_from_lowered(
    lowered: LoweredFunction, isa: str, copy_ir: bool = True
) -> CompiledFunction:
    """Emit assembly for one ISA from a :class:`LoweredFunction`.

    Register allocation and the backends mutate the frame layout of the IR
    they are handed (spill slots are added, offsets assigned), so by default
    they work on a slot-private clone; one-shot callers pass
    ``copy_ir=False`` to skip even that.
    """
    isa = _normalize_isa(isa)
    backend = _backend(isa)
    ir_func = _clone_for_backend(lowered.ir_func) if copy_ir else lowered.ir_func
    allocation = linear_scan(
        ir_func,
        backend.int_registers(lowered.opt_level),
        backend.float_registers(lowered.opt_level),
    )
    try:
        assembly = backend.emit_function(
            ir_func,
            allocation,
            lowered.strings,
            lowered.global_sizes,
            lowered.global_inits,
        )
    except NotImplementedError as exc:
        raise CompileError(f"{isa} backend error: {exc}") from exc
    return CompiledFunction(
        name=ir_func.name,
        isa=isa,
        opt_level=lowered.opt_level,
        assembly=assembly,
        source=lowered.source,
        ir_text=str(ir_func),
    )


def compile_function(
    source: Union[str, ast.Program],
    name: Optional[str] = None,
    isa: str = "x86",
    opt_level: Union[str, int] = "O0",
    checker: Optional[TypeChecker] = None,
    verify_ir: bool = False,
) -> CompiledFunction:
    """Compile one function of a Mini-C program to assembly.

    ``source`` is Mini-C source text (or an already-parsed
    :class:`~repro.lang.ast_nodes.Program`); ``name`` selects the function
    (optional when the program defines exactly one).  ``isa`` is ``"x86"``
    or ``"arm"``; ``opt_level`` is ``"O0"`` or ``"O3"``.  ``checker``
    optionally shares an already-run type checker for the program.
    ``verify_ir`` runs the IR invariant verifier after lowering and each
    -O3 pass (see :func:`lower_for_backend`).
    """
    isa = _normalize_isa(isa)
    program = _parse(source)
    lowered = lower_for_backend(
        program, name=name, opt_level=opt_level, checker=checker, verify_ir=verify_ir
    )
    return emit_from_lowered(lowered, isa, copy_ir=False)


def compile_program(
    source: Union[str, ast.Program],
    isas: Tuple[str, ...] = ISAS,
    opt_levels: Tuple[str, ...] = OPT_LEVELS,
) -> Dict[str, Dict[Tuple[str, str], CompiledFunction]]:
    """Compile every function of a program for ``isas`` × ``opt_levels``.

    Returns ``{function_name: {(isa, opt_level): CompiledFunction}}`` — one
    call yields the full pair grid the training/eval set is built from.
    """
    program = _parse(source)
    _typecheck(program)
    # One checker serves the whole grid: the front half below only re-runs
    # AST opt + lowering per (function, opt level), never semantic analysis.
    checker = TypeChecker(program)
    checker.check()
    results: Dict[str, Dict[Tuple[str, str], CompiledFunction]] = {}
    for func in program.functions():
        grid: Dict[Tuple[str, str], CompiledFunction] = {}
        for opt_level in opt_levels:
            lowered = lower_for_backend(
                program, name=func.name, opt_level=opt_level, checker=checker
            )
            for isa in isas:
                grid[(_normalize_isa(isa), _normalize_opt(opt_level))] = (
                    emit_from_lowered(lowered, isa)
                )
        results[func.name] = grid
    return results


__all__: List[str] = [
    "CompileError",
    "CompiledFunction",
    "LoweredFunction",
    "compile_function",
    "compile_program",
    "emit_from_lowered",
    "lower_for_backend",
]
