"""AArch64 backend for the Mini-C compiler.

Mirrors :mod:`repro.compiler.x86` with the AAPCS64 conventions: operands are
materialised in instruction-local scratch registers, operated on and written
back to the destination's assigned location.  At -O0 everything lives in the
stack frame; at -O3 the linear-scan allocator hands out callee-saved
registers so values survive calls.

Register usage:

* ``x9``/``x10``/``x11`` are instruction-local integer scratch registers,
  ``x17`` is reserved for literal-pool and global addressing.
* ``d16``/``d17`` are instruction-local FP scratch registers.
* ``x19``–``x28`` are the allocatable integer registers (callee-saved).
* ``d8``–``d15`` are the allocatable FP registers (callee-saved low halves).

The frame is addressed off ``sp`` (positive offsets), with ``x29``/``x30``
saved by an initial ``stp`` so incoming stack arguments sit at ``x29 + 16``.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence

from repro.compiler import ir
from repro.compiler.regalloc import Allocation

_INT_ARGS = tuple(f"x{i}" for i in range(8))
_FLOAT_ARGS = tuple(f"d{i}" for i in range(8))

_CC_SIGNED = {"eq": "eq", "ne": "ne", "lt": "lt", "le": "le", "gt": "gt", "ge": "ge"}
_CC_UNSIGNED = {"eq": "eq", "ne": "ne", "lt": "lo", "le": "ls", "gt": "hi", "ge": "hs"}
#: fcmp condition codes (mi/ls are the unordered-safe forms GCC uses).
_CC_FLOAT = {"eq": "eq", "ne": "ne", "lt": "mi", "le": "ls", "gt": "gt", "ge": "ge"}


def _w(reg: str) -> str:
    """The 32-bit view of an ``x`` register (``x9`` -> ``w9``)."""
    return "w" + reg[1:]


def _s(reg: str) -> str:
    """The single-precision view of a ``d`` register (``d16`` -> ``s16``)."""
    return "s" + reg[1:]


def _escape_string(text: str) -> str:
    out = []
    for ch in text:
        code = ord(ch)
        if ch in ('"', "\\"):
            out.append("\\" + ch)
        elif 32 <= code < 127:
            out.append(ch)
        else:
            out.append(f"\\{code & 0xFF:03o}")
    return "".join(out)


class ArmBackend:
    """Backend descriptor handed to the driver."""

    name = "arm"
    INT_ALLOCATABLE: Sequence[str] = tuple(f"x{i}" for i in range(19, 29))
    FLOAT_ALLOCATABLE: Sequence[str] = tuple(f"d{i}" for i in range(8, 16))

    def int_registers(self, opt_level: str) -> List[str]:
        return list(self.INT_ALLOCATABLE) if opt_level == "O3" else []

    def float_registers(self, opt_level: str) -> List[str]:
        return list(self.FLOAT_ALLOCATABLE) if opt_level == "O3" else []

    def emit_function(
        self,
        func: ir.IRFunction,
        allocation: Allocation,
        string_literals: Dict[str, str],
        global_sizes: Dict[str, int],
        global_inits: Optional[Dict[str, ir.GlobalInit]] = None,
    ) -> str:
        return _Emitter(
            func, allocation, string_literals, global_sizes, global_inits
        ).emit()


class _Emitter:
    def __init__(
        self,
        func: ir.IRFunction,
        allocation: Allocation,
        string_literals: Dict[str, str],
        global_sizes: Dict[str, int],
        global_inits: Optional[Dict[str, ir.GlobalInit]] = None,
    ) -> None:
        self.func = func
        self.allocation = allocation
        self.string_literals = string_literals
        self.global_sizes = global_sizes
        self.global_inits = global_inits or {}
        self.body: List[str] = []
        self.float_pool: Dict[int, str] = {}
        self.used_globals: List[str] = []
        self.ret_label = f".Lret_{func.name}"
        self.saved_int = allocation.used_registers(ArmBackend.INT_ALLOCATABLE)
        self.saved_float = allocation.used_registers(ArmBackend.FLOAT_ALLOCATABLE)
        self._layout_frame()

    # -- frame ---------------------------------------------------------------

    def _layout_frame(self) -> None:
        offset = 0
        self.slot_offsets: Dict[str, int] = {}
        for slot in self.func.slots.values():
            size = max(slot.size, 1)
            # Narrow spill slots pack at their natural alignment; anything
            # larger than a word (arrays, structs) stays 8-byte aligned.
            align = size if size in (1, 2, 4) else 8
            offset = -(-offset // align) * align
            self.slot_offsets[slot.name] = offset
            slot.offset = offset
            offset += size
        offset = (offset + 7) & ~7
        self.save_offsets: Dict[str, int] = {}
        for reg in list(self.saved_int) + list(self.saved_float):
            self.save_offsets[reg] = offset
            offset += 8
        self.frame_size = (offset + 15) & ~15

    # -- emission helpers ----------------------------------------------------

    def op(self, text: str) -> None:
        self.body.append("\t" + text)

    def label(self, name: str) -> None:
        self.body.append(f"{name}:")

    def _float_label(self, value: float) -> str:
        bits = struct.unpack("<Q", struct.pack("<d", float(value)))[0]
        if bits not in self.float_pool:
            self.float_pool[bits] = f".LCF{len(self.float_pool)}"
        return self.float_pool[bits]

    def _mov_imm(self, reg: str, value: int) -> None:
        if 0 <= value < (1 << 16):
            self.op(f"mov\t{reg}, #{value}")
            return
        if value < 0 and ~value < (1 << 16):
            self.op(f"movn\t{reg}, #{~value}")
            return
        bits = value & 0xFFFFFFFFFFFFFFFF
        chunks = [(bits >> shift) & 0xFFFF for shift in (0, 16, 32, 48)]
        first = True
        for position, chunk in enumerate(chunks):
            if chunk == 0:
                continue
            mnemonic = "movz" if first else "movk"
            shift = f", lsl #{16 * position}" if position else ""
            self.op(f"{mnemonic}\t{reg}, #{chunk}{shift}")
            first = False
        if first:
            self.op(f"mov\t{reg}, #0")

    def _add_imm(self, dst: str, src: str, value: int) -> None:
        """dst = src + value, handling the 12-bit immediate limit."""
        if value == 0:
            if dst != src:
                self.op(f"mov\t{dst}, {src}")
        elif 0 < value < (1 << 12):
            self.op(f"add\t{dst}, {src}, #{value}")
        elif -(1 << 12) < value < 0:
            self.op(f"sub\t{dst}, {src}, #{-value}")
        else:
            self._mov_imm("x17", value)
            self.op(f"add\t{dst}, {src}, x17")

    def _sp_adjust(self, mnemonic: str, amount: int) -> None:
        while amount > 0:
            step = min(amount, 0xFF0)
            self.op(f"{mnemonic}\tsp, sp, #{step}")
            amount -= step

    def read_int(self, operand: ir.Operand, scratch: str) -> str:
        """Materialise an integer operand in ``scratch`` and return it.

        Values in physical registers are kept fully extended; narrow spill
        slots are reloaded with the matching sign-/zero-extending load.
        """
        if isinstance(operand, ir.VReg):
            kind, name = self.allocation.location(operand)
            if kind == "reg":
                if name != scratch:
                    self.op(f"mov\t{scratch}, {name}")
            else:
                mem = f"[sp, #{self.slot_offsets[name]}]"
                size = max(1, operand.bits // 8)
                if size == 8:
                    self.op(f"ldr\t{scratch}, {mem}")
                else:
                    mnemonic = {
                        (1, False): "ldrsb", (1, True): "ldrb",
                        (2, False): "ldrsh", (2, True): "ldrh",
                        (4, False): "ldrsw", (4, True): "ldr",
                    }[(size, operand.unsigned)]
                    dest = scratch if not operand.unsigned else _w(scratch)
                    self.op(f"{mnemonic}\t{dest}, {mem}")
        else:
            self._mov_imm(scratch, int(operand))
        return scratch

    def write_int(self, scratch: str, dst: ir.VReg) -> None:
        kind, name = self.allocation.location(dst)
        if kind == "reg":
            if name != scratch:
                self.op(f"mov\t{name}, {scratch}")
        else:
            size = max(1, dst.bits // 8)
            mnemonic = {1: "strb", 2: "strh", 4: "str", 8: "str"}[size]
            reg = scratch if size == 8 else _w(scratch)
            self.op(f"{mnemonic}\t{reg}, [sp, #{self.slot_offsets[name]}]")

    def read_float(self, operand: ir.Operand, scratch: str) -> str:
        if isinstance(operand, ir.VReg):
            kind, name = self.allocation.location(operand)
            if kind == "reg":
                if name != scratch:
                    self.op(f"fmov\t{scratch}, {name}")
            else:
                self.op(f"ldr\t{scratch}, [sp, #{self.slot_offsets[name]}]")
        else:
            label = self._float_label(float(operand))
            self.op(f"adrp\tx17, {label}")
            self.op(f"ldr\t{scratch}, [x17, #:lo12:{label}]")
        return scratch

    def write_float(self, scratch: str, dst: ir.VReg) -> None:
        kind, name = self.allocation.location(dst)
        if kind == "reg":
            if name != scratch:
                self.op(f"fmov\t{name}, {scratch}")
        else:
            self.op(f"str\t{scratch}, [sp, #{self.slot_offsets[name]}]")

    def _is_float_operand(self, operand: ir.Operand) -> bool:
        if isinstance(operand, ir.VReg):
            return operand.is_float
        return isinstance(operand, float)

    # -- prologue / epilogue -------------------------------------------------

    def _emit_prologue(self) -> None:
        self.op("stp\tx29, x30, [sp, #-16]!")
        self.op("mov\tx29, sp")
        if self.frame_size:
            self._sp_adjust("sub", self.frame_size)
        for reg in self.saved_int + self.saved_float:
            self.op(f"str\t{reg}, [sp, #{self.save_offsets[reg]}]")
        int_index = 0
        float_index = 0
        stack_offset = 16
        for param in self.func.params:
            if param.is_float:
                if float_index < len(_FLOAT_ARGS):
                    src = _FLOAT_ARGS[float_index]
                    float_index += 1
                else:
                    self.op(f"ldr\td16, [x29, #{stack_offset}]")
                    stack_offset += 8
                    src = "d16"
                self.write_float(src, param)
            else:
                if int_index < len(_INT_ARGS):
                    src = _INT_ARGS[int_index]
                    int_index += 1
                else:
                    self.op(f"ldr\tx9, [x29, #{stack_offset}]")
                    stack_offset += 8
                    src = "x9"
                self.write_int(src, param)

    def _emit_epilogue(self) -> None:
        self.label(self.ret_label)
        for reg in self.saved_int + self.saved_float:
            self.op(f"ldr\t{reg}, [sp, #{self.save_offsets[reg]}]")
        if self.frame_size:
            self._sp_adjust("add", self.frame_size)
        self.op("ldp\tx29, x30, [sp], #16")
        self.op("ret")

    # -- instruction emission --------------------------------------------------

    def emit(self) -> str:
        self._emit_prologue()
        for index, instr in enumerate(self.func.instrs):
            self._emit_instr(instr, index)
        self._emit_epilogue()
        return self._assemble()

    def _next_label(self, index: int) -> str:
        nxt = self.func.instrs[index + 1] if index + 1 < len(self.func.instrs) else None
        return nxt.name if isinstance(nxt, ir.IRLabel) else ""

    def _emit_instr(self, instr: ir.IRInstr, index: int) -> None:
        if isinstance(instr, ir.IRLabel):
            self.label(instr.name)
        elif isinstance(instr, ir.IRConst):
            if instr.dst.is_float:
                self.write_float(self.read_float(float(instr.value), "d16"), instr.dst)
            else:
                self.write_int(self.read_int(int(instr.value), "x9"), instr.dst)
        elif isinstance(instr, ir.IRMove):
            if instr.dst.is_float or self._is_float_operand(instr.src):
                self.write_float(self.read_float(instr.src, "d16"), instr.dst)
            else:
                self.write_int(self.read_int(instr.src, "x9"), instr.dst)
        elif isinstance(instr, ir.IRBinOp):
            self._emit_binop(instr)
        elif isinstance(instr, ir.IRCmp):
            self._emit_cmp(instr)
        elif isinstance(instr, ir.IRUnary):
            self._emit_unary(instr)
        elif isinstance(instr, ir.IRCast):
            self._emit_cast(instr)
        elif isinstance(instr, ir.IRLoad):
            self._emit_load(instr)
        elif isinstance(instr, ir.IRStore):
            self._emit_store(instr)
        elif isinstance(instr, ir.IRFrameAddr):
            self._add_imm("x9", "sp", self.slot_offsets[instr.slot])
            self.write_int("x9", instr.dst)
        elif isinstance(instr, ir.IRGlobalAddr):
            if (
                instr.symbol not in self.string_literals
                and instr.symbol not in self.used_globals
            ):
                self.used_globals.append(instr.symbol)
            self.op(f"adrp\tx9, {instr.symbol}")
            self.op(f"add\tx9, x9, :lo12:{instr.symbol}")
            self.write_int("x9", instr.dst)
        elif isinstance(instr, ir.IRCall):
            self._emit_call(instr)
        elif isinstance(instr, ir.IRJump):
            if instr.target != self._next_label(index):
                self.op(f"b\t{instr.target}")
        elif isinstance(instr, ir.IRBranch):
            self.read_int(instr.cond, "x9")
            self.op(f"cbnz\tx9, {instr.true_target}")
            if instr.false_target != self._next_label(index):
                self.op(f"b\t{instr.false_target}")
        elif isinstance(instr, ir.IRRet):
            if instr.value is not None:
                if instr.is_float or self._is_float_operand(instr.value):
                    self.read_float(instr.value, "d0")
                else:
                    self.read_int(instr.value, "x0")
            if index != len(self.func.instrs) - 1:
                self.op(f"b\t{self.ret_label}")
        else:
            raise NotImplementedError(f"arm backend cannot emit {type(instr).__name__}")

    def _extend(self, scratch: str, bits: int, unsigned: bool) -> None:
        """Restore the full-width register invariant after a narrow op.

        32-bit (``w``-register) instructions already zero the upper half,
        so unsigned values need nothing; signed results get an ``sxtw``.
        """
        if bits >= 64 or unsigned:
            return
        self.op(f"sxtw\t{scratch}, {_w(scratch)}")

    def _emit_binop(self, instr: ir.IRBinOp) -> None:
        if instr.is_float:
            self.read_float(instr.left, "d16")
            self.read_float(instr.right, "d17")
            mnemonic = {"add": "fadd", "sub": "fsub", "mul": "fmul", "div": "fdiv"}[
                instr.op
            ]
            self.op(f"{mnemonic}\td16, d16, d17")
            self.write_float("d16", instr.dst)
            return
        self.read_int(instr.left, "x9")
        self.read_int(instr.right, "x10")
        # Integer binops happen at int width or wider (C's promotions).
        wide = instr.bits > 32
        acc, rhs, tmp = ("x9", "x10", "x11") if wide else ("w9", "w10", "w11")
        if instr.op in ("add", "sub", "mul", "and", "or", "xor", "shl"):
            mnemonic = {
                "add": "add", "sub": "sub", "mul": "mul",
                "and": "and", "or": "orr", "xor": "eor", "shl": "lsl",
            }[instr.op]
            self.op(f"{mnemonic}\t{acc}, {acc}, {rhs}")
        elif instr.op == "shr":
            self.op(f"{'lsr' if instr.unsigned else 'asr'}\t{acc}, {acc}, {rhs}")
        elif instr.op == "div":
            self.op(f"{'udiv' if instr.unsigned else 'sdiv'}\t{acc}, {acc}, {rhs}")
        elif instr.op == "mod":
            self.op(f"{'udiv' if instr.unsigned else 'sdiv'}\t{tmp}, {acc}, {rhs}")
            self.op(f"msub\t{acc}, {tmp}, {rhs}, {acc}")
        else:
            raise NotImplementedError(f"arm backend cannot emit binop {instr.op!r}")
        self._extend("x9", instr.bits, instr.unsigned)
        self.write_int("x9", instr.dst)

    def _emit_cmp(self, instr: ir.IRCmp) -> None:
        if instr.is_float:
            self.read_float(instr.left, "d16")
            self.read_float(instr.right, "d17")
            self.op("fcmp\td16, d17")
            cond = _CC_FLOAT[instr.op]
        else:
            self.read_int(instr.left, "x9")
            self.read_int(instr.right, "x10")
            if instr.bits > 32:
                self.op("cmp\tx9, x10")
            else:
                self.op("cmp\tw9, w10")
            cond = (_CC_UNSIGNED if instr.unsigned else _CC_SIGNED)[instr.op]
        self.op(f"cset\tx9, {cond}")
        self.write_int("x9", instr.dst)

    def _emit_unary(self, instr: ir.IRUnary) -> None:
        if instr.is_float:
            self.read_float(instr.src, "d16")
            self.op("fneg\td16, d16")
            self.write_float("d16", instr.dst)
            return
        self.read_int(instr.src, "x9")
        reg = "x9" if instr.bits > 32 else "w9"
        self.op(f"neg\t{reg}, {reg}" if instr.op == "neg" else f"mvn\t{reg}, {reg}")
        self._extend("x9", instr.bits, instr.unsigned)
        self.write_int("x9", instr.dst)

    def _emit_cast(self, instr: ir.IRCast) -> None:
        if instr.kind == "i2f":
            self.read_int(instr.src, "x9")
            self.op("scvtf\td16, x9")
            self.write_float("d16", instr.dst)
        elif instr.kind == "f2i":
            self.read_float(instr.src, "d16")
            self.op("fcvtzs\tx9, d16")
            self.write_int("x9", instr.dst)
        elif instr.kind in ir.WIDTH_CASTS:
            bits, unsigned = ir.WIDTH_CASTS[instr.kind]
            self.read_int(instr.src, "x9")
            if unsigned:
                # Writing the w-register zero-extends into the full x9.
                mnemonic = {8: "uxtb", 16: "uxth", 32: "mov"}[bits]
                self.op(f"{mnemonic}\tw9, w9")
            else:
                mnemonic = {8: "sxtb", 16: "sxth", 32: "sxtw"}[bits]
                self.op(f"{mnemonic}\tx9, w9")
            self.write_int("x9", instr.dst)
        elif instr.dst.is_float:
            self.write_float(self.read_float(instr.src, "d16"), instr.dst)
        else:
            self.write_int(self.read_int(instr.src, "x9"), instr.dst)

    def _emit_load(self, instr: ir.IRLoad) -> None:
        self.read_int(instr.addr, "x10")
        if instr.offset:
            self._add_imm("x10", "x10", instr.offset)
        if instr.is_float:
            if instr.size == 4:
                self.op("ldr\ts16, [x10]")
                self.op("fcvt\td16, s16")
            else:
                self.op("ldr\td16, [x10]")
            self.write_float("d16", instr.dst)
            return
        if instr.size == 8:
            self.op("ldr\tx9, [x10]")
        elif instr.size == 4:
            self.op(
                f"{'ldrsw' if instr.signed else 'ldr'}\t"
                f"{'x9' if instr.signed else 'w9'}, [x10]"
            )
        elif instr.size == 2:
            self.op(
                f"{'ldrsh' if instr.signed else 'ldrh'}\t"
                f"{'x9' if instr.signed else 'w9'}, [x10]"
            )
        else:
            self.op(
                f"{'ldrsb' if instr.signed else 'ldrb'}\t"
                f"{'x9' if instr.signed else 'w9'}, [x10]"
            )
        self.write_int("x9", instr.dst)

    def _emit_store(self, instr: ir.IRStore) -> None:
        if instr.is_float:
            self.read_float(instr.src, "d16")
            self.read_int(instr.addr, "x10")
            if instr.offset:
                self._add_imm("x10", "x10", instr.offset)
            if instr.size == 4:
                self.op("fcvt\ts16, d16")
                self.op("str\ts16, [x10]")
            else:
                self.op("str\td16, [x10]")
            return
        self.read_int(instr.src, "x9")
        self.read_int(instr.addr, "x10")
        if instr.offset:
            self._add_imm("x10", "x10", instr.offset)
        mnemonic = {1: "strb", 2: "strh", 4: "str", 8: "str"}[instr.size]
        reg = "x9" if instr.size == 8 else "w9"
        self.op(f"{mnemonic}\t{reg}, [x10]")

    def _emit_call(self, instr: ir.IRCall) -> None:
        int_index = 0
        float_index = 0
        for arg in instr.args:
            if self._is_float_operand(arg):
                if float_index >= len(_FLOAT_ARGS):
                    raise NotImplementedError(
                        "arm backend supports at most 8 FP arguments"
                    )
                self.read_float(arg, _FLOAT_ARGS[float_index])
                float_index += 1
            else:
                if int_index >= len(_INT_ARGS):
                    raise NotImplementedError(
                        "arm backend supports at most 8 integer arguments"
                    )
                self.read_int(arg, _INT_ARGS[int_index])
                int_index += 1
        self.op(f"bl\t{instr.name}")
        if instr.dst is not None:
            if instr.float_ret or instr.dst.is_float:
                self.write_float("d0", instr.dst)
            else:
                self.write_int("x0", instr.dst)

    # -- file assembly ---------------------------------------------------------

    def _assemble(self) -> str:
        name = self.func.name
        lines = [
            "\t.arch\tarmv8-a",
            f'\t.file\t"{name}.c"',
            "\t.text",
            "\t.align\t2",
            f"\t.global\t{name}",
            f"\t.type\t{name}, %function",
            f"{name}:",
        ]
        lines.extend(self.body)
        lines.append(f"\t.size\t{name}, .-{name}")
        if self.string_literals or self.float_pool:
            lines.append("\t.section\t.rodata")
            for symbol, text in self.string_literals.items():
                lines.append(f"{symbol}:")
                lines.append(f'\t.string\t"{_escape_string(text)}"')
            for bits, label in self.float_pool.items():
                value = struct.unpack("<d", struct.pack("<Q", bits))[0]
                lines.append("\t.align\t3")
                lines.append(f"{label}:")
                lines.append(f"\t.xword\t0x{bits:016x}\t// double {value!r}")
        data_directives = {1: ".byte", 2: ".hword", 4: ".word", 8: ".xword"}
        emitted_data = False
        for symbol in self.used_globals:
            init = self.global_inits.get(symbol)
            if init is not None:
                if not emitted_data:
                    lines.append("\t.data")
                    emitted_data = True
                # Weak definition, for the same reason as the x86 backend:
                # per-function translation units sharing an initialised
                # global must still link together.
                lines.append(f"\t.weak\t{symbol}")
                lines.append("\t.align\t3")
                lines.append(f"\t.type\t{symbol}, %object")
                lines.append(f"\t.size\t{symbol}, {init.size}")
                lines.append(f"{symbol}:")
                for elem_size, raw in init.items:
                    lines.append(f"\t{data_directives[elem_size]}\t{raw}")
                emitted = sum(elem_size for elem_size, _ in init.items)
                if emitted < init.size:
                    lines.append(f"\t.zero\t{init.size - emitted}")
                continue
            size = self.global_sizes.get(symbol)
            if size is not None:
                lines.append(f"\t.comm\t{symbol},{size},8")
        lines.append('\t.section\t.note.GNU-stack,"",%progbits')
        lines.append("")
        return "\n".join(lines)
