"""Optimisation pipeline for the Mini-C compiler (-O3).

Two families of transformations are applied:

* **AST-level** — constant folding and loop unrolling (factor 4 with a
  scalar remainder loop).  Unrolling is what gives the -O3 assembly the
  "obfuscated" structure the paper's motivating example shows: the loop body
  is replicated, the trip count is pre-computed and a remainder loop handles
  the tail.
* **IR-level** — local constant folding / copy propagation, strength
  reduction (multiplication and division by powers of two become shifts) and
  global dead-code elimination.

The -O0 pipeline applies none of these.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from repro.compiler import ir
from repro.lang import ast_nodes as ast
from repro.lang import ctypes as ct

UNROLL_FACTOR = 4


# ---------------------------------------------------------------------------
# AST-level: constant folding
# ---------------------------------------------------------------------------


def fold_constants_expr(expr: ast.Expr) -> ast.Expr:
    """Recursively fold constant sub-expressions of ``expr``."""
    if isinstance(expr, ast.BinaryOp):
        expr.left = fold_constants_expr(expr.left)
        expr.right = fold_constants_expr(expr.right)
        if isinstance(expr.left, ast.IntLiteral) and isinstance(
            expr.right, ast.IntLiteral
        ):
            bits, unsigned = _fold_width(expr)
            folded = _fold_int(
                expr.op, expr.left.value, expr.right.value, bits, unsigned
            )
            if folded is not None:
                return ast.IntLiteral(folded)
        if isinstance(expr.left, (ast.IntLiteral, ast.FloatLiteral)) and isinstance(
            expr.right, (ast.IntLiteral, ast.FloatLiteral)
        ):
            folded_f = _fold_float(
                expr.op, float(expr.left.value), float(expr.right.value)
            )
            if folded_f is not None and (
                isinstance(expr.left, ast.FloatLiteral) or isinstance(
                    expr.right, ast.FloatLiteral
                )
            ):
                return ast.FloatLiteral(folded_f)
        return expr
    if isinstance(expr, ast.UnaryOp):
        expr.operand = fold_constants_expr(expr.operand)
        if expr.op == "-" and isinstance(expr.operand, ast.IntLiteral):
            return ast.IntLiteral(-expr.operand.value)
        if expr.op == "-" and isinstance(expr.operand, ast.FloatLiteral):
            return ast.FloatLiteral(-expr.operand.value)
        if expr.op == "!" and isinstance(expr.operand, ast.IntLiteral):
            return ast.IntLiteral(0 if expr.operand.value else 1)
        if expr.op == "~" and isinstance(expr.operand, ast.IntLiteral):
            return ast.IntLiteral(~expr.operand.value)
        return expr
    for name, value in vars(expr).items():
        if isinstance(value, ast.Expr):
            setattr(expr, name, fold_constants_expr(value))
        elif isinstance(value, list):
            setattr(
                expr,
                name,
                [
                    fold_constants_expr(v) if isinstance(v, ast.Expr) else v
                    for v in value
                ],
            )
    return expr


def _literal_int_type(expr: ast.Expr) -> ct.IntType:
    """The type an integer literal takes (mirrors lowering's literal rule)."""
    if isinstance(expr.ctype, ct.IntType):
        return expr.ctype
    if isinstance(expr, ast.IntLiteral):
        return ct.literal_int_type(expr.value)
    return ct.INT


def _fold_width(expr: ast.BinaryOp) -> Tuple[int, bool]:
    """Width (in bits) and signedness an integer fold of ``expr`` wraps to.

    Shifts take the promoted left operand's type; everything else takes the
    usual arithmetic conversion of both operands — the same rules the
    interpreter applies, so folding cannot change observable behaviour.
    """
    left = ct.integer_promote(_literal_int_type(expr.left))
    if expr.op in ("<<", ">>"):
        result = left
    else:
        result = ct.usual_arithmetic_conversion(
            left, ct.integer_promote(_literal_int_type(expr.right))
        )
    if not isinstance(result, ct.IntType):
        return 64, False
    return 8 * result.sizeof(), result.unsigned


def _fold_int(
    op: str, left: int, right: int, bits: int = 32, unsigned: bool = False
) -> Optional[int]:
    """Fold an integer operation, wrapping to ``bits``-wide (un)signed ints.

    Delegates to :func:`repro.lang.ctypes.int_binop`, the same routine the
    interpreter uses, so folds agree with its wrapped semantics by
    construction: operands are converted into the type's domain, shift
    counts are masked by the type width (``& 31`` for 32-bit operands,
    ``& 63`` for 64-bit) and results are truncated to the expression's
    width (e.g. ``1 << 33`` folds to ``2`` as an ``int``, not
    ``8589934592``).
    """
    if op in ("==", "!=", "<", "<=", ">", ">="):
        table = {
            "==": left == right,
            "!=": left != right,
            "<": left < right,
            "<=": left <= right,
            ">": left > right,
            ">=": left >= right,
        }
        return int(table[op])
    try:
        return ct.int_binop(op, left, right, bits, unsigned)
    except (ZeroDivisionError, OverflowError, ValueError):
        return None


def _fold_float(op: str, left: float, right: float) -> Optional[float]:
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/" and right != 0.0:
            return left / right
    except (OverflowError, ValueError):
        return None
    return None


def fold_constants_stmt(stmt: ast.Stmt) -> None:
    """Fold constants in every expression reachable from ``stmt``."""
    for name, value in vars(stmt).items():
        if isinstance(value, ast.Expr):
            setattr(stmt, name, fold_constants_expr(value))
        elif isinstance(value, ast.Stmt):
            fold_constants_stmt(value)
        elif isinstance(value, list):
            new_items = []
            for item in value:
                if isinstance(item, ast.Expr):
                    new_items.append(fold_constants_expr(item))
                elif isinstance(item, ast.Stmt):
                    fold_constants_stmt(item)
                    new_items.append(item)
                else:
                    new_items.append(item)
            setattr(stmt, name, new_items)


# ---------------------------------------------------------------------------
# AST-level: loop unrolling
# ---------------------------------------------------------------------------


def _assigned_names(node: ast.Node, found: Set[str]) -> None:
    if isinstance(node, ast.Assignment) and isinstance(node.target, ast.Identifier):
        found.add(node.target.name)
    if isinstance(node, (ast.UnaryOp, ast.PostfixOp)) and node.op in ("++", "--"):
        if isinstance(node.operand, ast.Identifier):
            found.add(node.operand.name)
    for value in vars(node).values():
        if isinstance(value, ast.Node):
            _assigned_names(value, found)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.Node):
                    _assigned_names(item, found)


def _contains_jump(node: ast.Node) -> bool:
    if isinstance(node, (ast.Break, ast.Continue, ast.Return)):
        return True
    for value in vars(node).values():
        if isinstance(value, ast.Node) and _contains_jump(value):
            return True
        if isinstance(value, list):
            for item in value:
                if isinstance(item, ast.Node) and _contains_jump(item):
                    return True
    return False


def _substitute_var(node: ast.Node, name: str, replacement: ast.Expr) -> ast.Node:
    """Return a deep copy of ``node`` with uses of ``name`` replaced."""
    node = ast.clone(node)

    def rewrite(n: ast.Node) -> ast.Node:
        if isinstance(n, ast.Identifier) and n.name == name:
            return ast.clone(replacement)
        for attr, value in vars(n).items():
            if isinstance(value, ast.Node):
                setattr(n, attr, rewrite(value))
            elif isinstance(value, list):
                setattr(
                    n,
                    attr,
                    [rewrite(v) if isinstance(v, ast.Node) else v for v in value],
                )
        return n

    return rewrite(node)


def _loop_induction(stmt: ast.For) -> Optional[str]:
    """Return the induction variable name if the loop matches the unrollable
    ``for (i = <start>; i < <limit>; i++)`` shape."""
    if isinstance(stmt.init, ast.Declaration):
        name = stmt.init.name
    elif isinstance(stmt.init, ast.ExprStmt) and isinstance(
        stmt.init.expr, ast.Assignment
    ):
        target = stmt.init.expr.target
        if not isinstance(target, ast.Identifier) or stmt.init.expr.op != "=":
            return None
        name = target.name
    else:
        return None

    if not isinstance(stmt.cond, ast.BinaryOp) or stmt.cond.op not in ("<", "<="):
        return None
    if not (isinstance(stmt.cond.left, ast.Identifier) and stmt.cond.left.name == name):
        return None

    step = stmt.step
    if isinstance(step, (ast.UnaryOp, ast.PostfixOp)) and step.op == "++":
        if isinstance(step.operand, ast.Identifier) and step.operand.name == name:
            pass
        else:
            return None
    elif (
        isinstance(step, ast.Assignment)
        and step.op == "+="
        and isinstance(step.target, ast.Identifier)
        and step.target.name == name
        and isinstance(step.value, ast.IntLiteral)
        and step.value.value == 1
    ):
        pass
    else:
        return None
    return name


def unroll_loops(stmt: ast.Stmt, factor: int = UNROLL_FACTOR) -> ast.Stmt:
    """Unroll eligible counted ``for`` loops inside ``stmt`` (recursively)."""
    if isinstance(stmt, ast.Block):
        stmt.stmts = [unroll_loops(s, factor) for s in stmt.stmts]
        return stmt
    if isinstance(stmt, ast.If):
        stmt.then = unroll_loops(stmt.then, factor)
        if stmt.otherwise is not None:
            stmt.otherwise = unroll_loops(stmt.otherwise, factor)
        return stmt
    if isinstance(stmt, (ast.While, ast.DoWhile)):
        stmt.body = unroll_loops(stmt.body, factor)
        return stmt
    if not isinstance(stmt, ast.For):
        return stmt

    stmt.body = unroll_loops(stmt.body, factor)
    name = _loop_induction(stmt)
    if name is None:
        return stmt
    if _contains_jump(stmt.body):
        return stmt
    assigned: Set[str] = set()
    _assigned_names(stmt.body, assigned)
    if name in assigned:
        return stmt
    limit = stmt.cond.right  # type: ignore[union-attr]
    if isinstance(limit, ast.Identifier) and limit.name in assigned:
        return stmt
    if not isinstance(limit, (ast.Identifier, ast.IntLiteral)):
        return stmt

    # Build:  for (<init>; i + (factor-1) < limit; i += factor) { body(i) ... body(i+3) }
    #         for (; i < limit; i++) body(i)
    index = ast.Identifier(name)
    main_cond = ast.BinaryOp(
        stmt.cond.op,  # type: ignore[union-attr]
        ast.BinaryOp("+", ast.clone(index), ast.IntLiteral(factor - 1)),
        ast.clone(limit),
    )
    main_step = ast.Assignment("+=", ast.clone(index), ast.IntLiteral(factor))
    bodies: List[ast.Stmt] = []
    for offset in range(factor):
        replacement: ast.Expr
        if offset == 0:
            replacement = ast.clone(index)
        else:
            replacement = ast.BinaryOp("+", ast.clone(index), ast.IntLiteral(offset))
        bodies.append(
            _substitute_var(stmt.body, name, replacement)  # type: ignore[arg-type]
        )
    # Hoist a declaration out of the init so the induction variable stays in
    # scope for the remainder loop.
    prelude: List[ast.Stmt] = []
    main_init = stmt.init
    if isinstance(stmt.init, ast.Declaration):
        prelude.append(stmt.init)
        main_init = None
    main_loop = ast.For(main_init, main_cond, main_step, ast.Block(bodies))
    remainder = ast.For(
        None,
        ast.clone(stmt.cond),
        ast.clone(stmt.step),
        ast.clone(stmt.body),
    )
    return ast.Block(prelude + [main_loop, remainder])


def optimize_function_ast(
    func: ast.FunctionDef, unroll: bool = True
) -> ast.FunctionDef:
    """Apply the AST-level -O3 transformations to a (deep copy of a) function."""
    func = ast.clone(func)
    if func.body is None:
        return func
    fold_constants_stmt(func.body)
    if unroll:
        func.body = unroll_loops(func.body)  # type: ignore[assignment]
    return func


# ---------------------------------------------------------------------------
# IR-level passes
# ---------------------------------------------------------------------------


def _block_boundaries(instrs: List[ir.IRInstr]) -> List[int]:
    """Indices that start a new basic block."""
    starts = {0}
    for index, instr in enumerate(instrs):
        if isinstance(instr, ir.IRLabel):
            starts.add(index)
        if isinstance(instr, (ir.IRJump, ir.IRBranch, ir.IRRet)):
            starts.add(index + 1)
    return sorted(s for s in starts if s < len(instrs))


def local_fold_and_propagate(func: ir.IRFunction) -> bool:
    """Per-block constant folding, copy propagation and strength reduction.

    Returns True when the function was modified (the pipeline driver uses
    this to stop iterating once a round converges and to skip re-verifying
    an unchanged function).
    """
    changed = False
    instrs = func.instrs
    starts = set(_block_boundaries(instrs))
    constants: Dict[ir.VReg, Union[int, float]] = {}
    copies: Dict[ir.VReg, ir.Operand] = {}

    def invalidate(reg: ir.VReg) -> None:
        constants.pop(reg, None)
        copies.pop(reg, None)
        for key in [k for k, v in copies.items() if v == reg]:
            copies.pop(key, None)

    new_instrs: List[ir.IRInstr] = []
    for index, instr in enumerate(instrs):
        if index in starts:
            constants.clear()
            copies.clear()

        # Substitute known constants / copies into the operands.
        mapping: Dict[ir.VReg, ir.Operand] = {}
        for used in instr.uses():
            if used in constants and not isinstance(instr, (ir.IRBranch,)):
                mapping[used] = constants[used]
            elif used in copies:
                mapping[used] = copies[used]
        if mapping:
            instr.replace_uses(mapping)
            changed = True

        for defined in instr.defs():
            invalidate(defined)

        if isinstance(instr, ir.IRConst):
            constants[instr.dst] = instr.value
        elif isinstance(instr, ir.IRMove):
            if isinstance(instr.src, (int, float)):
                constants[instr.dst] = instr.src
            elif isinstance(instr.src, ir.VReg):
                copies[instr.dst] = instr.src
        elif isinstance(instr, ir.IRBinOp):
            folded = _fold_ir_binop(instr)
            if folded is not None:
                new_instrs.append(folded)
                if isinstance(folded, ir.IRConst):
                    constants[folded.dst] = folded.value
                changed = True
                continue
            changed = _strength_reduce(instr) or changed
        elif isinstance(instr, ir.IRCmp):
            folded_cmp = _fold_ir_cmp(instr)
            if folded_cmp is not None:
                new_instrs.append(folded_cmp)
                constants[folded_cmp.dst] = folded_cmp.value
                changed = True
                continue
        elif isinstance(instr, ir.IRCast):
            folded_cast = _fold_ir_cast(instr)
            if folded_cast is not None:
                new_instrs.append(folded_cast)
                constants[folded_cast.dst] = folded_cast.value
                changed = True
                continue
        new_instrs.append(instr)
    func.instrs = new_instrs
    return changed


def _fold_ir_binop(instr: ir.IRBinOp) -> Optional[ir.IRInstr]:
    if isinstance(instr.left, (int, float)) and isinstance(instr.right, (int, float)):
        if instr.is_float:
            value = _fold_float(
                _IR_TO_C[instr.op], float(instr.left), float(instr.right)
            )
        else:
            # Fold at the instruction's annotated width so the constant
            # matches what the backend's 32-bit instruction would compute.
            value = _fold_int(
                _IR_TO_C[instr.op], int(instr.left), int(instr.right),
                instr.bits, instr.unsigned,
            )
        if value is not None:
            return ir.IRConst(instr.dst, value)
    # Algebraic identities.
    if instr.op == "add" and instr.right == 0:
        return ir.IRMove(instr.dst, instr.left)
    if instr.op == "sub" and instr.right == 0:
        return ir.IRMove(instr.dst, instr.left)
    if instr.op == "mul" and instr.right == 1:
        return ir.IRMove(instr.dst, instr.left)
    if instr.op == "mul" and instr.right == 0 and not instr.is_float:
        return ir.IRConst(instr.dst, 0)
    if instr.op == "shl" and instr.right == 0:
        return ir.IRMove(instr.dst, instr.left)
    return None


def _fold_ir_cmp(instr: ir.IRCmp) -> Optional[ir.IRConst]:
    if isinstance(instr.left, (int, float)) and isinstance(instr.right, (int, float)):
        left, right = instr.left, instr.right
        if not instr.is_float and isinstance(left, int) and isinstance(right, int):
            # Compare in the annotated width's domain (unsigned comparisons
            # of negatively-represented constants need the conversion).
            t = ct.int_type_for_bits(instr.bits, instr.unsigned)
            left, right = t.wrap(left), t.wrap(right)
        table = {
            "eq": left == right,
            "ne": left != right,
            "lt": left < right,
            "le": left <= right,
            "gt": left > right,
            "ge": left >= right,
        }
        return ir.IRConst(instr.dst, int(table[instr.op]))
    return None


def _fold_ir_cast(instr: ir.IRCast) -> Optional[ir.IRConst]:
    """Fold integer width casts of constants into their extended value."""
    if instr.kind in ir.WIDTH_CASTS and isinstance(instr.src, int):
        bits, unsigned = ir.WIDTH_CASTS[instr.kind]
        return ir.IRConst(
            instr.dst, ct.int_type_for_bits(bits, unsigned).wrap(instr.src)
        )
    return None


_IR_TO_C = {
    "add": "+",
    "sub": "-",
    "mul": "*",
    "div": "/",
    "mod": "%",
    "shl": "<<",
    "shr": ">>",
    "and": "&",
    "or": "|",
    "xor": "^",
}


def _strength_reduce(instr: ir.IRBinOp) -> bool:
    """Rewrite multiplications/divisions by powers of two into shifts."""
    if instr.is_float:
        return False
    if (
        isinstance(instr.right, int)
        and instr.right > 1
        and (instr.right & (instr.right - 1)) == 0
    ):
        shift = instr.right.bit_length() - 1
        if instr.op == "mul":
            instr.op = "shl"
            instr.right = shift
            return True
        elif instr.op == "div" and instr.unsigned:
            instr.op = "shr"
            instr.right = shift
            return True
    return False


def _referenced_labels(func: ir.IRFunction) -> Set[str]:
    referenced: Set[str] = set()
    for instr in func.instrs:
        if isinstance(instr, ir.IRJump):
            referenced.add(instr.target)
        elif isinstance(instr, ir.IRBranch):
            referenced.add(instr.true_target)
            referenced.add(instr.false_target)
    return referenced


_REMOVABLE_INSTRS = (
    ir.IRConst, ir.IRMove, ir.IRBinOp, ir.IRCmp, ir.IRUnary, ir.IRCast,
    ir.IRFrameAddr, ir.IRGlobalAddr, ir.IRLoad,
)


def dead_code_elimination(func: ir.IRFunction) -> bool:
    """Remove pure instructions whose results (or labels) are never used.

    Worklist formulation of the obvious fixpoint: removing a dead
    instruction decrements the use counts of its operands, which may in
    turn make the instructions defining those operands dead.  The surviving
    instruction sequence is identical to iterating global remove-unused
    sweeps to fixpoint (labels only ever die in the first sweep, because
    DCE never removes the jumps that reference them).
    """
    instrs = func.instrs
    referenced = _referenced_labels(func)
    use_count: Dict[ir.VReg, int] = {}
    defs_of: Dict[ir.VReg, List[int]] = {}
    for index, instr in enumerate(instrs):
        for used in instr.uses():
            use_count[used] = use_count.get(used, 0) + 1
        for defined in instr.defs():
            defs_of.setdefault(defined, []).append(index)

    def is_dead(index: int) -> bool:
        instr = instrs[index]
        if not isinstance(instr, _REMOVABLE_INSTRS):
            return False
        defs = instr.defs()
        return bool(defs) and not any(use_count.get(d, 0) for d in defs)

    dead = [False] * len(instrs)
    work: List[int] = []
    for index, instr in enumerate(instrs):
        if isinstance(instr, ir.IRLabel) and instr.name not in referenced:
            dead[index] = True
        elif is_dead(index):
            work.append(index)
    while work:
        index = work.pop()
        if dead[index] or not is_dead(index):
            continue
        dead[index] = True
        for used in instrs[index].uses():
            use_count[used] -= 1
            if use_count[used] == 0:
                for def_index in defs_of.get(used, ()):
                    if not dead[def_index] and is_dead(def_index):
                        work.append(def_index)
    if not any(dead):
        return False
    func.instrs = [instr for index, instr in enumerate(instrs) if not dead[index]]
    return True


def remove_redundant_jumps(func: ir.IRFunction) -> bool:
    """Drop jumps whose target is reached by falling through.

    A jump is redundant when its target label follows it with only other
    labels in between, so chains like ``jmp L1; L0:; L1:`` are cleaned up
    too, not just ``jmp L1; L1:``.
    """
    kept: List[ir.IRInstr] = []
    for index, instr in enumerate(func.instrs):
        if isinstance(instr, ir.IRJump):
            scan = index + 1
            redundant = False
            while scan < len(func.instrs) and isinstance(func.instrs[scan], ir.IRLabel):
                if func.instrs[scan].name == instr.target:  # type: ignore[attr-defined]
                    redundant = True
                    break
                scan += 1
            if redundant:
                continue
        kept.append(instr)
    if len(kept) == len(func.instrs):
        return False
    func.instrs = kept
    return True


def optimize_ir(func: ir.IRFunction, after_pass=None) -> None:
    """Run the IR-level -O3 pipeline in place.

    ``after_pass``, when given, is called as ``after_pass(label)`` after each
    individual pass with a label like ``"local_fold_and_propagate[1]"`` — the
    IR verifier uses it to attribute an invariant violation to the exact pass
    that introduced it.

    Each pass reports whether it modified the function; a pass that changed
    nothing skips its ``after_pass`` callback (re-verifying an unchanged
    function cannot produce new diagnostics) and a fold+DCE round in which
    neither pass changed anything ends the iteration (the pipeline is at a
    fixpoint: the passes are deterministic, so a further round would be a
    no-op too).  The emitted IR is byte-identical to always running every
    round.
    """

    def _run(pass_fn, label: str) -> bool:
        changed = pass_fn(func)
        if changed and after_pass is not None:
            after_pass(label)
        return changed

    for round_index in range(3):
        changed = _run(
            local_fold_and_propagate, f"local_fold_and_propagate[{round_index}]"
        )
        changed = _run(
            dead_code_elimination, f"dead_code_elimination[{round_index}]"
        ) or changed
        if not changed:
            break
    _run(remove_redundant_jumps, "remove_redundant_jumps")
    # Jump removal can leave labels with no remaining references behind;
    # re-running DCE prunes them.
    _run(dead_code_elimination, "dead_code_elimination[final]")
