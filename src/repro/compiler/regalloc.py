"""Linear-scan register allocation for the Mini-C compiler backends.

The allocator assigns every virtual register either a physical register
(from a per-class free list supplied by the backend) or a spill slot in the
stack frame.  The -O0 pipeline passes empty register lists, so everything
spills and the emitted assembly is maximally verbose — mirroring how GCC -O0
keeps every value in memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.compiler import ir


@dataclass
class LiveRange:
    """Closed interval of instruction indices during which a vreg is live."""

    reg: ir.VReg
    start: int
    end: int


@dataclass
class Allocation:
    """The result of register allocation for one function."""

    register_of: Dict[ir.VReg, str]
    spill_slot_of: Dict[ir.VReg, str]

    def location(self, reg: ir.VReg) -> Tuple[str, str]:
        """Return ("reg", name) or ("spill", slot_name)."""
        if reg in self.register_of:
            return "reg", self.register_of[reg]
        return "spill", self.spill_slot_of[reg]

    def used_registers(self, ordering: Sequence[str]) -> List[str]:
        """Physical registers this allocation uses, in ``ordering`` order.

        Backends save/restore exactly these (callee-saved) registers in the
        prologue/epilogue, so the order must be deterministic.
        """
        used = set(self.register_of.values())
        return [reg for reg in ordering if reg in used]


def compute_live_ranges(func: ir.IRFunction) -> List[LiveRange]:
    """Compute conservative linear live ranges.

    Because the IR is not in SSA form and control flow can jump backwards,
    a register used inside a loop must stay live across the whole loop.  We
    approximate this by extending every range that overlaps a backwards
    branch to cover the branch target's extent.  This is conservative but
    safe.
    """
    first_def: Dict[ir.VReg, int] = {}
    last_use: Dict[ir.VReg, int] = {}
    label_pos: Dict[str, int] = {}
    for index, instr in enumerate(func.instrs):
        if isinstance(instr, ir.IRLabel):
            label_pos[instr.name] = index

    for index, instr in enumerate(func.instrs):
        for reg in instr.defs():
            first_def.setdefault(reg, index)
            last_use[reg] = max(last_use.get(reg, index), index)
        for reg in instr.uses():
            first_def.setdefault(reg, index)
            last_use[reg] = max(last_use.get(reg, index), index)
    for index, reg in enumerate(func.params):
        first_def[reg] = -1 - (len(func.params) - index)
        last_use.setdefault(reg, 0)

    # Extend ranges across backwards jumps (loops).
    loop_spans: List[Tuple[int, int]] = []
    for index, instr in enumerate(func.instrs):
        targets: List[str] = []
        if isinstance(instr, ir.IRJump):
            targets = [instr.target]
        elif isinstance(instr, ir.IRBranch):
            targets = [instr.true_target, instr.false_target]
        for target in targets:
            target_index = label_pos.get(target, index)
            if target_index < index:
                loop_spans.append((target_index, index))

    ranges = []
    for reg, start in first_def.items():
        end = last_use.get(reg, start)
        changed = True
        while changed:
            changed = False
            for span_start, span_end in loop_spans:
                # If the range overlaps the loop body at all, it must cover it.
                if start <= span_end and end >= span_start and end < span_end:
                    end = span_end
                    changed = True
        ranges.append(LiveRange(reg, start, end))
    ranges.sort(key=lambda r: r.start)
    return ranges


def linear_scan(
    func: ir.IRFunction,
    int_registers: Sequence[str],
    float_registers: Sequence[str],
    slot_prefix: str = "spill",
) -> Allocation:
    """Allocate registers with the classic linear-scan algorithm.

    Spilled virtual registers get fresh slots added to ``func.slots``.
    """
    ranges = compute_live_ranges(func)
    active: List[Tuple[LiveRange, str]] = []
    free_int = list(int_registers)
    free_float = list(float_registers)
    register_of: Dict[ir.VReg, str] = {}
    spill_slot_of: Dict[ir.VReg, str] = {}

    def expire(position: int) -> None:
        nonlocal active
        still_active = []
        for live, phys in active:
            if live.end < position:
                if live.reg.is_float:
                    free_float.append(phys)
                else:
                    free_int.append(phys)
            else:
                still_active.append((live, phys))
        active = still_active

    def spill(reg: ir.VReg) -> None:
        slot_name = f"{slot_prefix}.{reg.id}"
        if slot_name not in func.slots:
            # Slots are sized by the value's width: a 32-bit value spills to
            # a 4-byte slot and is reloaded with the matching extending load.
            size = 8 if reg.is_float else max(1, reg.bits // 8)
            func.add_slot(slot_name, size)
        spill_slot_of[reg] = slot_name

    for live in ranges:
        expire(live.start)
        pool = free_float if live.reg.is_float else free_int
        if pool:
            phys = pool.pop(0)
            register_of[live.reg] = phys
            active.append((live, phys))
            active.sort(key=lambda item: item[0].end)
        else:
            # Spill the interval that ends last (standard heuristic).
            candidates = [
                (index, item)
                for index, item in enumerate(active)
                if item[0].reg.is_float == live.reg.is_float
            ]
            if candidates and candidates[-1][1][0].end > live.end:
                index, (victim, phys) = candidates[-1]
                del register_of[victim.reg]
                spill(victim.reg)
                register_of[live.reg] = phys
                active[index] = (live, phys)
                active.sort(key=lambda item: item[0].end)
            else:
                spill(live.reg)

    return Allocation(register_of, spill_slot_of)
