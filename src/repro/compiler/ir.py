"""Three-address intermediate representation used by the Mini-C compiler.

An :class:`IRFunction` is a flat list of instructions over an unbounded set
of virtual registers (:class:`VReg`).  Labels are instructions themselves, so
the representation is easy to transform by simple list rewriting; the
optimiser reconstructs basic-block structure where it needs it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union


@dataclass(frozen=True)
class VReg:
    """A virtual register.  ``is_float`` selects the FP register class.

    Integer registers carry the width (``bits``) and signedness of the C
    value they hold.  The invariant maintained by lowering and the backends
    is that an integer register always holds the 64-bit sign-extension
    (signed) or zero-extension (unsigned) of its ``bits``-wide value, so
    widening conversions are no-ops and narrow spill slots can be reloaded
    with the matching extending load.
    """

    id: int
    is_float: bool = False
    bits: int = 64
    unsigned: bool = False

    def __str__(self) -> str:
        prefix = "f" if self.is_float else "v"
        return f"%{prefix}{self.id}"


#: An operand is either a virtual register or an immediate constant.
Operand = Union[VReg, int, float]


@dataclass
class StackSlot:
    """A named slot in the function's stack frame."""

    name: str
    size: int
    offset: int = 0  # assigned by the backend


@dataclass
class GlobalInit:
    """Constant initialiser data for one global symbol.

    ``items`` is the packed sequence of ``(element_size, raw_value)`` pairs
    the backend renders as data directives (raw values are the unsigned
    two's-complement byte patterns, so floats arrive as IEEE bit patterns).
    Trailing zero bytes up to ``size`` are implied.
    """

    size: int
    items: List[tuple] = field(default_factory=list)  # (elem_size, raw_value)


class IRInstr:
    """Base class for IR instructions."""

    def defs(self) -> List[VReg]:
        """Registers written by this instruction."""
        return []

    def uses(self) -> List[VReg]:
        """Registers read by this instruction."""
        return []

    def replace_uses(self, mapping: Dict[VReg, Operand]) -> None:
        """Substitute operands according to ``mapping`` (used by copy prop)."""


def _as_uses(*operands: Operand) -> List[VReg]:
    return [op for op in operands if isinstance(op, VReg)]


@dataclass
class IRConst(IRInstr):
    dst: VReg
    value: Union[int, float]

    def defs(self) -> List[VReg]:
        return [self.dst]

    def __str__(self) -> str:
        return f"{self.dst} = const {self.value}"


@dataclass
class IRMove(IRInstr):
    dst: VReg
    src: Operand

    def defs(self) -> List[VReg]:
        return [self.dst]

    def uses(self) -> List[VReg]:
        return _as_uses(self.src)

    def replace_uses(self, mapping: Dict[VReg, Operand]) -> None:
        if isinstance(self.src, VReg) and self.src in mapping:
            self.src = mapping[self.src]

    def __str__(self) -> str:
        return f"{self.dst} = {self.src}"


#: Arithmetic/bitwise operation names used by IRBinOp.
BIN_OPS = ("add", "sub", "mul", "div", "mod", "shl", "shr", "and", "or", "xor")
#: Comparison operation names used by IRCmp.
CMP_OPS = ("eq", "ne", "lt", "le", "gt", "ge")


@dataclass
class IRBinOp(IRInstr):
    """``dst = left <op> right`` at a fixed integer width.

    ``bits`` is the width of the C type the operation is performed in (after
    the usual arithmetic conversions); backends must produce a result that
    wraps at that width and is then re-extended to 64 bits.
    """

    op: str
    dst: VReg
    left: Operand
    right: Operand
    is_float: bool = False
    unsigned: bool = False
    bits: int = 64

    def defs(self) -> List[VReg]:
        return [self.dst]

    def uses(self) -> List[VReg]:
        return _as_uses(self.left, self.right)

    def replace_uses(self, mapping: Dict[VReg, Operand]) -> None:
        if isinstance(self.left, VReg) and self.left in mapping:
            self.left = mapping[self.left]
        if isinstance(self.right, VReg) and self.right in mapping:
            self.right = mapping[self.right]

    def __str__(self) -> str:
        suffix = "" if self.bits == 64 else f".{self.bits}"
        return f"{self.dst} = {self.op}{suffix} {self.left}, {self.right}"


@dataclass
class IRCmp(IRInstr):
    """``dst = left <op> right ? 1 : 0``, compared at ``bits`` wide."""

    op: str
    dst: VReg
    left: Operand
    right: Operand
    is_float: bool = False
    unsigned: bool = False
    bits: int = 64

    def defs(self) -> List[VReg]:
        return [self.dst]

    def uses(self) -> List[VReg]:
        return _as_uses(self.left, self.right)

    def replace_uses(self, mapping: Dict[VReg, Operand]) -> None:
        if isinstance(self.left, VReg) and self.left in mapping:
            self.left = mapping[self.left]
        if isinstance(self.right, VReg) and self.right in mapping:
            self.right = mapping[self.right]

    def __str__(self) -> str:
        suffix = "" if self.bits == 64 else f".{self.bits}"
        return f"{self.dst} = cmp{suffix}.{self.op} {self.left}, {self.right}"


@dataclass
class IRUnary(IRInstr):
    """``neg`` or ``not`` (bitwise complement) at ``bits`` wide."""

    op: str
    dst: VReg
    src: Operand
    is_float: bool = False
    bits: int = 64
    unsigned: bool = False

    def defs(self) -> List[VReg]:
        return [self.dst]

    def uses(self) -> List[VReg]:
        return _as_uses(self.src)

    def replace_uses(self, mapping: Dict[VReg, Operand]) -> None:
        if isinstance(self.src, VReg) and self.src in mapping:
            self.src = mapping[self.src]

    def __str__(self) -> str:
        return f"{self.dst} = {self.op} {self.src}"


#: Integer width-change cast kinds: truncate the source to N bits, then
#: sign- (``sext``) or zero- (``zext``) extend back to the full register.
WIDTH_CASTS = {
    "sext8": (8, False), "zext8": (8, True),
    "sext16": (16, False), "zext16": (16, True),
    "sext32": (32, False), "zext32": (32, True),
}


@dataclass
class IRCast(IRInstr):
    """Conversions: ``i2f``, ``f2i``, ``f2f`` (float<->double is a no-op
    here), and the integer width changes listed in :data:`WIDTH_CASTS`."""

    kind: str
    dst: VReg
    src: Operand

    def defs(self) -> List[VReg]:
        return [self.dst]

    def uses(self) -> List[VReg]:
        return _as_uses(self.src)

    def replace_uses(self, mapping: Dict[VReg, Operand]) -> None:
        if isinstance(self.src, VReg) and self.src in mapping:
            self.src = mapping[self.src]

    def __str__(self) -> str:
        return f"{self.dst} = {self.kind} {self.src}"


@dataclass
class IRLoad(IRInstr):
    dst: VReg
    addr: VReg
    offset: int = 0
    size: int = 8
    signed: bool = True
    is_float: bool = False

    def defs(self) -> List[VReg]:
        return [self.dst]

    def uses(self) -> List[VReg]:
        return [self.addr]

    def replace_uses(self, mapping: Dict[VReg, Operand]) -> None:
        if self.addr in mapping and isinstance(mapping[self.addr], VReg):
            self.addr = mapping[self.addr]  # type: ignore[assignment]

    def __str__(self) -> str:
        return f"{self.dst} = load{self.size} [{self.addr}+{self.offset}]"


@dataclass
class IRStore(IRInstr):
    src: Operand
    addr: VReg
    offset: int = 0
    size: int = 8
    is_float: bool = False

    def uses(self) -> List[VReg]:
        return _as_uses(self.src, self.addr)

    def replace_uses(self, mapping: Dict[VReg, Operand]) -> None:
        if isinstance(self.src, VReg) and self.src in mapping:
            self.src = mapping[self.src]
        if self.addr in mapping and isinstance(mapping[self.addr], VReg):
            self.addr = mapping[self.addr]  # type: ignore[assignment]

    def __str__(self) -> str:
        return f"store{self.size} [{self.addr}+{self.offset}], {self.src}"


@dataclass
class IRFrameAddr(IRInstr):
    """dst = address of a stack slot."""

    dst: VReg
    slot: str

    def defs(self) -> List[VReg]:
        return [self.dst]

    def __str__(self) -> str:
        return f"{self.dst} = frameaddr {self.slot}"


@dataclass
class IRGlobalAddr(IRInstr):
    """dst = address of a global symbol."""

    dst: VReg
    symbol: str

    def defs(self) -> List[VReg]:
        return [self.dst]

    def __str__(self) -> str:
        return f"{self.dst} = globaladdr {self.symbol}"


@dataclass
class IRCall(IRInstr):
    dst: Optional[VReg]
    name: str
    args: List[Operand] = field(default_factory=list)
    float_ret: bool = False

    def defs(self) -> List[VReg]:
        return [self.dst] if self.dst is not None else []

    def uses(self) -> List[VReg]:
        return [a for a in self.args if isinstance(a, VReg)]

    def replace_uses(self, mapping: Dict[VReg, Operand]) -> None:
        self.args = [mapping.get(a, a) if isinstance(a, VReg) else a for a in self.args]

    def __str__(self) -> str:
        prefix = f"{self.dst} = " if self.dst else ""
        return f"{prefix}call {self.name}({', '.join(map(str, self.args))})"


@dataclass
class IRLabel(IRInstr):
    name: str

    def __str__(self) -> str:
        return f"{self.name}:"


@dataclass
class IRJump(IRInstr):
    target: str

    def __str__(self) -> str:
        return f"jmp {self.target}"


@dataclass
class IRBranch(IRInstr):
    """Conditional branch: if cond != 0 goto ``true_target`` else fall to
    ``false_target`` (the backend emits an explicit jump when needed)."""

    cond: VReg
    true_target: str
    false_target: str

    def uses(self) -> List[VReg]:
        return [self.cond]

    def replace_uses(self, mapping: Dict[VReg, Operand]) -> None:
        if self.cond in mapping and isinstance(mapping[self.cond], VReg):
            self.cond = mapping[self.cond]  # type: ignore[assignment]

    def __str__(self) -> str:
        return f"br {self.cond} ? {self.true_target} : {self.false_target}"


@dataclass
class IRRet(IRInstr):
    value: Optional[Operand] = None
    is_float: bool = False

    def uses(self) -> List[VReg]:
        return _as_uses(self.value) if self.value is not None else []

    def replace_uses(self, mapping: Dict[VReg, Operand]) -> None:
        if isinstance(self.value, VReg) and self.value in mapping:
            self.value = mapping[self.value]

    def __str__(self) -> str:
        return f"ret {self.value if self.value is not None else ''}".rstrip()


@dataclass
class IRFunction:
    """A lowered function: parameters, frame slots and a flat instruction list."""

    name: str
    params: List[VReg] = field(default_factory=list)
    param_names: List[str] = field(default_factory=list)
    instrs: List[IRInstr] = field(default_factory=list)
    slots: Dict[str, StackSlot] = field(default_factory=dict)
    returns_float: bool = False
    next_vreg: int = 0
    next_label: int = 0

    def new_vreg(
        self, is_float: bool = False, bits: int = 64, unsigned: bool = False
    ) -> VReg:
        reg = VReg(self.next_vreg, is_float, 64 if is_float else bits, unsigned)
        self.next_vreg += 1
        return reg

    def new_label(self, hint: str = "L") -> str:
        label = f".{hint}{self.next_label}"
        self.next_label += 1
        return label

    def add_slot(self, name: str, size: int) -> StackSlot:
        slot = StackSlot(name, size)
        self.slots[name] = slot
        return slot

    def emit(self, instr: IRInstr) -> IRInstr:
        self.instrs.append(instr)
        return instr

    def __str__(self) -> str:
        lines = [f"function {self.name}({', '.join(map(str, self.params))})"]
        for slot in self.slots.values():
            lines.append(f"  slot {slot.name}: {slot.size} bytes")
        for instr in self.instrs:
            if isinstance(instr, IRLabel):
                lines.append(str(instr))
            else:
                lines.append("  " + str(instr))
        return "\n".join(lines)
