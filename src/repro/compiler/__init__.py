"""The "GCC" substrate: a Mini-C compiler targeting two assembly dialects.

The reproduction needs a deterministic producer of (C, assembly) pairs at
two optimisation levels and for two ISAs — the role GCC plays in the paper.
This package provides exactly that:

* :mod:`repro.compiler.ir` — a three-address intermediate representation.
* :mod:`repro.compiler.lowering` — AST → IR lowering.
* :mod:`repro.compiler.opt` — the -O3 pipeline (AST-level loop unrolling and
  constant folding, IR-level copy propagation / constant folding / dead code
  elimination / strength reduction).
* :mod:`repro.compiler.regalloc` — linear-scan register allocation.
* :mod:`repro.compiler.x86` / :mod:`repro.compiler.arm` — backends emitting
  an x86-64-style (AT&T syntax) and an AArch64-style assembly dialect.
* :mod:`repro.compiler.driver` — the ``compile_function`` entry point.

Re-exports are resolved lazily so that the submodules stay importable on
their own (``import repro.compiler.lowering`` must not require the driver or
the backends) and so a missing optional module degrades with a clear error
instead of breaking the whole package at import time.
"""

from __future__ import annotations

import importlib
from typing import List

#: Names re-exported from :mod:`repro.compiler.driver`.
_DRIVER_EXPORTS = (
    "compile_function", "compile_program", "CompiledFunction", "CompileError"
)

#: Submodules reachable as attributes (``repro.compiler.opt`` etc.).
_SUBMODULES = ("arm", "driver", "ir", "lowering", "opt", "regalloc", "x86")

__all__ = list(_DRIVER_EXPORTS)


def _load(module: str):
    try:
        return importlib.import_module(f"repro.compiler.{module}")
    except ModuleNotFoundError as exc:
        raise ImportError(
            f"repro.compiler.{module} is unavailable ({exc}); the rest of "
            "repro.compiler (ir, lowering, opt, regalloc, ...) can still be "
            "imported directly"
        ) from exc


def __getattr__(name: str):
    if name in _DRIVER_EXPORTS:
        value = getattr(_load("driver"), name)
    elif name in _SUBMODULES:
        value = _load(name)
    else:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    globals()[name] = value  # cache so later lookups skip this hook
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_DRIVER_EXPORTS) | set(_SUBMODULES))
