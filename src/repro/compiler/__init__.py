"""The "GCC" substrate: a Mini-C compiler targeting two assembly dialects.

The reproduction needs a deterministic producer of (C, assembly) pairs at
two optimisation levels and for two ISAs — the role GCC plays in the paper.
This package provides exactly that:

* :mod:`repro.compiler.ir` — a three-address intermediate representation.
* :mod:`repro.compiler.lowering` — AST → IR lowering.
* :mod:`repro.compiler.opt` — the -O3 pipeline (AST-level loop unrolling and
  constant folding, IR-level copy propagation / constant folding / dead code
  elimination / strength reduction).
* :mod:`repro.compiler.regalloc` — linear-scan register allocation.
* :mod:`repro.compiler.x86` / :mod:`repro.compiler.arm` — backends emitting
  an x86-64-style (AT&T syntax) and an AArch64-style assembly dialect.
* :mod:`repro.compiler.driver` — the ``compile_function`` entry point.
"""

from repro.compiler.driver import CompileError, CompiledFunction, compile_function, compile_program

__all__ = ["compile_function", "compile_program", "CompiledFunction", "CompileError"]
