"""Scoring as a service: a long-running HTTP/JSON daemon over the warm cache.

Every ``python -m repro.eval.score`` invocation cold-starts the world and
exits.  This module turns the scorer into infrastructure: one persistent
process that keeps the :class:`repro.eval.cache.EvalCache` verdict memo
and the per-worker build directories warm across requests, so scoring a
model's sampled candidates at volume pays the toolchain cost once per
*unique* candidate, not once per request.

Stdlib only — the server is ``asyncio`` streams plus a hand-rolled (and
deliberately minimal) HTTP/1.1 request reader; no web framework, no new
runtime dependency.

Endpoints
---------

``POST /score``
    One scoring request (or ``{"requests": [...]}`` for several), answered
    synchronously: the request is queued to the worker pool and the
    response carries one verdict payload per candidate.
``POST /jobs`` / ``GET /jobs/<id>``
    The same request shape, asynchronously: ``POST`` journals and enqueues
    the job and returns its deterministic id immediately; ``GET`` polls
    status and (when done) the result.
``GET /stats``
    Cache hit/miss counters, queue depth, job counts, worker utilization.
``GET /healthz`` / ``POST /shutdown``
    Liveness probe and graceful stop.

Request shape (one scoring unit)::

    {
      "candidates": ["int f(int a){...}", {"text": "...", "kind": "...",
                     "label": "...", "expected": "..."}, ...],
      # Either a pre-built dataset triple (DatasetEntry.to_json(), with
      # reference observations — nothing is re-derived server-side):
      "entry": { ... },
      # ...or the raw ingredients; the server builds the triple (and
      # caches it) by compiling + interpreting the reference:
      "name": "f", "reference": "int f(int a){...}", "inputs": [[1], [2]],
      # Substrate (all optional):
      "backend": "x86" | "arm" | "none", "opt_level": "O0" | "O3",
      "lint": true, "run_timeout": 10.0
    }

Determinism
-----------

Verdicts go through :func:`repro.eval.score.score_entry_sets` — the exact
seam one ``--jobs`` worker runs — so a service verdict is byte-identical
to the CLI's for the same triple.  The ``score-grid`` client in this
module rebuilds the fixed-seed dataset locally, scores it over HTTP and
assembles the report with :func:`repro.eval.score.build_report`: the
written file is byte-identical to ``python -m repro.eval.score`` output
(CI ``cmp``s them).  The job journal is JSON lines with no timestamps;
replaying it after a restart re-enqueues unfinished jobs, which re-score
deterministically — the same discipline as ``repair --resume``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import queue
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.eval.cache import (
    EvalCache,
    add_cache_arguments,
    cache_from_args,
    describe_stats,
    json_digest,
)
from repro.eval.dataset import (
    DatasetEntry,
    DatasetError,
    build_entry,
    entry_from_json,
    generated_entries,
)
from repro.eval.mutate import Candidate, Mutator
from repro.eval.score import (
    CandidateScore,
    _resolve_backend,
    build_report,
    score_entry_sets,
    score_from_payload,
    score_to_payload,
)

DEFAULT_PORT = 8731

#: Largest accepted request body; far above any real grid request, small
#: enough that a confused client cannot balloon the process.
MAX_BODY_BYTES = 1 << 28


class ServiceError(Exception):
    """A request the service rejects (HTTP 400)."""


# ---------------------------------------------------------------------------
# Jobs and the journal
# ---------------------------------------------------------------------------


@dataclass
class Job:
    """One queued scoring request and its lifecycle."""

    id: str
    seq: int
    request: Dict[str, Any]
    #: Journaled jobs (``POST /jobs``) persist across restarts; synchronous
    #: ``POST /score`` submissions do not.
    journaled: bool
    status: str = "pending"  # "pending" | "running" | "done" | "error"
    result: Optional[Any] = None
    error: str = ""
    #: Set when the job reaches a terminal status (threading side).
    done_event: threading.Event = field(default_factory=threading.Event)
    #: (loop, event) pairs of async handlers awaiting completion.
    waiters: List[Tuple[Any, Any]] = field(default_factory=list)

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"id": self.id, "seq": self.seq, "status": self.status}
        if self.status == "done":
            out["result"] = self.result
        elif self.status == "error":
            out["error"] = self.error
        return out


class JobJournal:
    """Append-only JSON-lines journal of jobs and their results.

    Two record types: ``{"type": "job", "seq", "id", "request"}`` written
    at submission, and ``{"type": "result", "id", "status", ...}`` written
    at completion.  No timestamps, no RNG: replaying the journal after a
    restart reconstructs exactly the jobs that were in flight, and
    re-scoring them is deterministic, so a restarted daemon converges on
    byte-identical results.  A truncated tail line (crash mid-append) is
    skipped on replay rather than poisoning the journal.
    """

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    def append(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())

    def replay(self) -> List[Dict[str, Any]]:
        records: List[Dict[str, Any]] = []
        try:
            with open(self.path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(record, dict):
                        records.append(record)
        except FileNotFoundError:
            pass
        return records


def job_id_for(seq: int, request: Dict[str, Any]) -> str:
    """Deterministic job id: submission order + request content digest."""
    return f"job-{seq}-{json_digest(request)[:12]}"


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------


class ScoringService:
    """The daemon: HTTP front end, worker pool, journal, shared cache.

    Workers are threads (scoring is subprocess-bound: the GIL is released
    in ``select``/``communicate`` waits), each owning a persistent build
    directory so fork-server groups and compiled artifacts are not
    re-materialised per request.  ``workers=0`` starts no workers — jobs
    queue up and persist, which is how the restart tests freeze a job
    in-flight.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        workers: int = 2,
        backend: str = "x86",
        cache: Optional[EvalCache] = None,
        journal: Optional[Path] = None,
        workdir: Optional[Path] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.workers = max(0, workers)
        self.backend = backend
        self.cache = cache
        self.journal = JobJournal(journal) if journal is not None else None
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        if workdir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="minic-service-")
            workdir = Path(self._tmp.name)
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)

        self.jobs: Dict[str, Job] = {}
        self._jobs_order: List[str] = []
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._threads: List[threading.Thread] = []
        self._busy: List[bool] = [False] * self.workers
        self._seq = 0
        self._lock = threading.Lock()
        self._request_counts: Dict[str, int] = {}

        self.bound_port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._thread: Optional[threading.Thread] = None

        if self.journal is not None:
            self._replay_journal()

    # -- journal replay -------------------------------------------------------

    def _replay_journal(self) -> None:
        assert self.journal is not None
        for record in self.journal.replay():
            kind = record.get("type")
            if kind == "job" and isinstance(record.get("request"), dict):
                job = Job(
                    id=str(record["id"]),
                    seq=int(record["seq"]),
                    request=record["request"],
                    journaled=True,
                )
                if job.id in self.jobs:
                    continue
                self.jobs[job.id] = job
                self._jobs_order.append(job.id)
                self._seq = max(self._seq, job.seq + 1)
            elif kind == "result" and record.get("id") in self.jobs:
                job = self.jobs[str(record["id"])]
                job.status = str(record.get("status", "error"))
                job.result = record.get("result")
                job.error = str(record.get("error", ""))
                job.done_event.set()
        # Unfinished jobs (no result record: the previous daemon died with
        # them queued or mid-run) are re-enqueued in submission order.
        for job_id in self._jobs_order:
            job = self.jobs[job_id]
            if job.status in ("pending", "running"):
                job.status = "pending"
                self._queue.put(job)

    # -- request parsing ------------------------------------------------------

    def _validate_unit(self, request: Any) -> None:
        """Cheap shape validation at submission time (HTTP 400 on failure);
        expensive failures (a reference that will not build) surface as the
        job's error status instead."""
        if not isinstance(request, dict):
            raise ServiceError("request body must be a JSON object")
        candidates = request.get("candidates")
        if not isinstance(candidates, list) or not candidates:
            raise ServiceError("'candidates' must be a non-empty list")
        for spec in candidates:
            if isinstance(spec, str):
                continue
            if not isinstance(spec, dict) or not isinstance(spec.get("text"), str):
                raise ServiceError(
                    "each candidate must be a source string or an object "
                    "with a 'text' field"
                )
        if "entry" in request:
            if not isinstance(request["entry"], dict):
                raise ServiceError("'entry' must be a DatasetEntry JSON object")
            for key in ("uid", "name", "source", "inputs", "reference"):
                if key not in request["entry"]:
                    raise ServiceError(f"'entry' is missing {key!r}")
        else:
            if not isinstance(request.get("name"), str) or not isinstance(
                request.get("reference"), str
            ):
                raise ServiceError(
                    "request needs either a prebuilt 'entry' or "
                    "'name' + 'reference' + 'inputs'"
                )
            if not isinstance(request.get("inputs"), list):
                raise ServiceError("'inputs' must be a list of argument vectors")
        backend = request.get("backend", self.backend)
        if backend not in ("x86", "arm", "none"):
            raise ServiceError(f"unknown backend {backend!r}")
        if request.get("opt_level", "O0") not in ("O0", "O3"):
            raise ServiceError("opt_level must be 'O0' or 'O3'")

    def _validate(self, request: Any) -> None:
        if isinstance(request, dict) and "requests" in request:
            units = request["requests"]
            if not isinstance(units, list) or not units:
                raise ServiceError("'requests' must be a non-empty list")
            for unit in units:
                self._validate_unit(unit)
            return
        self._validate_unit(request)

    def _parse_unit(
        self, request: Dict[str, Any]
    ) -> Tuple[DatasetEntry, List[Candidate], Dict[str, Any]]:
        backend = request.get("backend", self.backend)
        opt_level = request.get("opt_level", "O0")
        lint = bool(request.get("lint", True))
        run_timeout = float(request.get("run_timeout", 10.0))
        candidates: List[Candidate] = []
        for spec in request["candidates"]:
            if isinstance(spec, str):
                candidates.append(Candidate(spec, "", "", ""))
            else:
                candidates.append(
                    Candidate(
                        text=spec["text"],
                        label=str(spec.get("label", "")),
                        kind=str(spec.get("kind", "")),
                        expected=str(spec.get("expected", "")),
                    )
                )
        if "entry" in request:
            entry = entry_from_json(request["entry"])
        else:
            isa = backend if backend != "none" else "x86"
            uid = request.get("uid") or f"req-{json_digest(request)[:12]}"
            entry = build_entry(
                request["reference"],
                request["name"],
                [tuple(args) for args in request["inputs"]],
                uid=str(uid),
                origin="service",
                isas=(isa,),
                opt_levels=(opt_level,),
                cache=self.cache,
            )
        kwargs = {
            "backend": backend,
            "opt_level": opt_level,
            "use_batch": True,
            "lint": lint,
            "fork_server": True,
            "run_timeout": run_timeout,
        }
        return entry, candidates, kwargs

    # -- execution (worker side) ---------------------------------------------

    def _execute_unit(self, request: Dict[str, Any], workdir: Path) -> Dict[str, Any]:
        entry, candidates, kwargs = self._parse_unit(request)
        scores: List[CandidateScore] = score_entry_sets(
            [entry], [candidates], self.cache, workdir=workdir, **kwargs
        )[0]
        return {
            "schema": 1,
            "uid": entry.uid,
            "name": entry.name,
            "backend": kwargs["backend"],
            "opt_level": kwargs["opt_level"],
            "candidates": [
                {"index": score.index, **score_to_payload(score)} for score in scores
            ],
        }

    def _execute_request(self, request: Dict[str, Any], workdir: Path) -> Any:
        if "requests" in request:
            return {
                "schema": 1,
                "results": [
                    self._execute_unit(unit, workdir) for unit in request["requests"]
                ],
            }
        return self._execute_unit(request, workdir)

    def _worker_loop(self, index: int) -> None:
        workdir = self.workdir / f"worker{index}"
        workdir.mkdir(parents=True, exist_ok=True)
        while True:
            job = self._queue.get()
            if job is None:
                return
            self._busy[index] = True
            job.status = "running"
            try:
                job.result = self._execute_request(job.request, workdir)
                job.status = "done"
            except (ServiceError, DatasetError) as exc:
                job.error = str(exc)
                job.status = "error"
            except Exception as exc:  # an infrastructure failure, not a verdict
                job.error = f"{type(exc).__name__}: {exc}"
                job.status = "error"
            finally:
                self._busy[index] = False
            if job.journaled and self.journal is not None:
                record: Dict[str, Any] = {
                    "type": "result",
                    "id": job.id,
                    "status": job.status,
                }
                if job.status == "done":
                    record["result"] = job.result
                else:
                    record["error"] = job.error
                self.journal.append(record)
            with self._lock:
                job.done_event.set()
                waiters, job.waiters = list(job.waiters), []
            for loop, event in waiters:
                loop.call_soon_threadsafe(event.set)

    def _start_workers(self) -> None:
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(index,),
                name=f"scoring-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _stop_workers(self) -> None:
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=30)
        self._threads = []

    # -- submission -----------------------------------------------------------

    def _submit(self, request: Dict[str, Any], journaled: bool) -> Job:
        with self._lock:
            seq = self._seq
            self._seq += 1
            job = Job(job_id_for(seq, request), seq, request, journaled)
            self.jobs[job.id] = job
            self._jobs_order.append(job.id)
        if journaled and self.journal is not None:
            self.journal.append(
                {"type": "job", "seq": job.seq, "id": job.id, "request": request}
            )
        self._queue.put(job)
        return job

    async def _wait(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        event = asyncio.Event()
        with self._lock:
            if job.done_event.is_set():
                return
            job.waiters.append((loop, event))
        await event.wait()

    # -- stats ----------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        counts = {"pending": 0, "running": 0, "done": 0, "error": 0}
        with self._lock:
            for job in self.jobs.values():
                counts[job.status] = counts.get(job.status, 0) + 1
            requests = dict(sorted(self._request_counts.items()))
        return {
            "schema": 1,
            "backend": self.backend,
            "queue_depth": self._queue.qsize(),
            "jobs": counts,
            "workers": {"configured": self.workers, "busy": sum(self._busy)},
            "requests": requests,
            "cache": self.cache.stats_summary() if self.cache is not None else None,
            "journal": str(self.journal.path) if self.journal is not None else None,
        }

    # -- HTTP layer -----------------------------------------------------------

    async def _dispatch(self, method: str, path: str, body: bytes) -> Tuple[int, Any]:
        route = path if not path.startswith("/jobs/") else "/jobs/<id>"
        with self._lock:
            key = f"{method} {route}"
            self._request_counts[key] = self._request_counts.get(key, 0) + 1
        if method == "GET" and path == "/healthz":
            return 200, {"ok": True}
        if method == "GET" and path == "/stats":
            return 200, self.stats()
        if method == "GET" and path.startswith("/jobs/"):
            job = self.jobs.get(path[len("/jobs/") :])
            if job is None:
                return 404, {"error": "no such job"}
            return 200, job.to_json()
        if method == "POST" and path == "/shutdown":
            assert self._loop is not None and self._stop_event is not None
            # Stop slightly later so this response still reaches the client.
            self._loop.call_later(0.05, self._stop_event.set)
            return 200, {"ok": True, "shutting_down": True}
        if method == "POST" and path in ("/score", "/jobs"):
            try:
                request = json.loads(body or b"null")
            except ValueError as exc:
                return 400, {"error": f"invalid JSON body: {exc}"}
            try:
                self._validate(request)
            except ServiceError as exc:
                return 400, {"error": str(exc)}
            if path == "/jobs":
                job = self._submit(request, journaled=True)
                return 202, {"id": job.id, "seq": job.seq, "status": job.status}
            if self.workers == 0:
                return 503, {"error": "no workers configured; use POST /jobs"}
            job = self._submit(request, journaled=False)
            await self._wait(job)
            if job.status != "done":
                return 500, {"error": job.error or "scoring failed"}
            return 200, job.result
        return 404, {"error": f"no route for {method} {path}"}

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                parsed = await _read_http_request(reader)
                if parsed is None:
                    break
                method, path, body, keep_alive = parsed
                if body is None:
                    status, payload = 413, {"error": "request body too large"}
                    keep_alive = False
                else:
                    status, payload = await self._dispatch(method, path, body)
                data = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
                reason = {200: "OK", 202: "Accepted"}.get(status, "Error")
                head = (
                    f"HTTP/1.1 {status} {reason}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                    "\r\n"
                )
                writer.write(head.encode("ascii") + data)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.bound_port = server.sockets[0].getsockname()[1]
        self._ready.set()
        async with server:
            await self._stop_event.wait()

    # -- lifecycle ------------------------------------------------------------

    def run(self) -> None:
        """Serve until shut down; blocks the calling thread."""
        self._start_workers()
        try:
            asyncio.run(self._serve())
        finally:
            self._stop_workers()
            if self._tmp is not None:
                self._tmp.cleanup()
                self._tmp = None

    def start_in_thread(self, timeout: float = 60.0) -> int:
        """Run the daemon in a daemon thread; returns the bound port."""
        self._thread = threading.Thread(target=self.run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=timeout):
            raise RuntimeError("service did not come up in time")
        assert self.bound_port is not None
        return self.bound_port

    def stop(self, timeout: float = 60.0) -> None:
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None


async def _read_http_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Optional[bytes], bool]]:
    """(method, path, body, keep_alive), or None on EOF/garbage.

    ``body`` is None when Content-Length exceeds :data:`MAX_BODY_BYTES`
    (the caller answers 413).  Query strings are stripped; nothing routes
    on them.
    """
    try:
        line = await reader.readline()
    except (ConnectionError, OSError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) < 2:
        return None
    method, path = parts[0].upper(), parts[1].split("?", 1)[0]
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if not line:
            return None
        text = line.decode("latin-1").strip()
        if not text:
            break
        name, _, value = text.partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        return None
    keep_alive = headers.get("connection", "keep-alive").lower() != "close"
    if length > MAX_BODY_BYTES:
        return method, path, None, False
    body = b""
    if length > 0:
        try:
            body = await reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            return None
    return method, path, body, keep_alive


# ---------------------------------------------------------------------------
# Client
# ---------------------------------------------------------------------------


class ServiceClient:
    """Thin stdlib HTTP client for the daemon (used by tests and the
    ``score-grid`` CLI; any HTTP client works just as well)."""

    def __init__(self, url: str, timeout: float = 600.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str, payload: Optional[Any] = None) -> Any:
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace").strip()
            raise ServiceError(f"HTTP {exc.code} on {method} {path}: {detail}")

    def score(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return self._request("POST", "/score", request)

    def submit_job(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return self._request("POST", "/jobs", request)

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def wait_job(self, job_id: str, deadline: float = 600.0) -> Dict[str, Any]:
        """Poll until the job reaches a terminal status."""
        waited = 0.0
        while True:
            state = self.job(job_id)
            if state["status"] in ("done", "error"):
                return state
            if waited >= deadline:
                raise ServiceError(f"job {job_id} still {state['status']}")
            time.sleep(0.05)
            waited += 0.05

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def shutdown(self) -> Dict[str, Any]:
        return self._request("POST", "/shutdown")


def build_grid_requests(
    seed: int,
    functions: int,
    candidates: int,
    max_stmts: int = 10,
    backend: str = "x86",
    opt_level: str = "O0",
    lint: bool = True,
    cache: Optional[EvalCache] = None,
) -> Tuple[List[DatasetEntry], List[List[Candidate]], List[Dict[str, Any]]]:
    """The score CLI's fixed-seed grid, rendered as ``/score`` requests.

    Entries and candidate sets are built exactly as ``repro.eval.score``'s
    ``main()`` builds them (same seeds, same trap-label rule), then each
    entry is serialized as a prebuilt triple so the server re-derives
    nothing.  Returns (entries, candidate sets, request bodies) — the
    first two are what :func:`repro.eval.score.build_report` needs to
    assemble the byte-identical report client-side.
    """
    entries = generated_entries(
        seed,
        functions,
        max_stmts=max_stmts,
        isas=("arm",) if backend == "arm" else ("x86",),
        opt_levels=(opt_level,),
        cache=cache,
    )
    candidate_sets = [
        Mutator(
            entry.seed if entry.seed is not None else seed,
            allow_trap_labels=backend != "arm" and opt_level == "O0",
        ).candidates(entry, candidates, cache=cache)
        for entry in entries
    ]
    requests = [
        {
            "entry": entry.to_json(),
            "candidates": [
                {
                    "text": candidate.text,
                    "label": candidate.label,
                    "kind": candidate.kind,
                    "expected": candidate.expected,
                }
                for candidate in candidate_set
            ],
            "backend": backend,
            "opt_level": opt_level,
            "lint": lint,
        }
        for entry, candidate_set in zip(entries, candidate_sets)
    ]
    return entries, candidate_sets, requests


def score_grid_via_service(
    client: ServiceClient,
    seed: int,
    functions: int,
    candidates: int,
    max_stmts: int = 10,
    backend: str = "x86",
    opt_level: str = "O0",
    lint: bool = True,
    cache: Optional[EvalCache] = None,
) -> Dict[str, Any]:
    """Score the fixed-seed grid over HTTP and build the aggregate report.

    The report is byte-identical to what ``score_dataset`` produces for
    the same grid: verdict payloads come back over the wire, are rebuilt
    into :class:`CandidateScore` lists with the client-side candidate
    metadata, and go through the same :func:`build_report`.
    """
    entries, candidate_sets, requests = build_grid_requests(
        seed,
        functions,
        candidates,
        max_stmts=max_stmts,
        backend=backend,
        opt_level=opt_level,
        lint=lint,
        cache=cache,
    )
    all_scores: List[List[CandidateScore]] = []
    for request, candidate_set in zip(requests, candidate_sets):
        response = client.score(request)
        payloads = response["candidates"]
        if len(payloads) != len(candidate_set):
            raise ServiceError(
                f"server returned {len(payloads)} verdicts "
                f"for {len(candidate_set)} candidates"
            )
        all_scores.append(
            [
                score_from_payload(payload, payload["index"], candidate)
                for payload, candidate in zip(payloads, candidate_set)
            ]
        )
    return build_report(
        entries,
        candidate_sets,
        all_scores,
        backend=backend,
        opt_level=opt_level,
        use_batch=True,
        lint=lint,
        fork_server=True,
    )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _serve_main(args: argparse.Namespace) -> int:
    backend = _resolve_backend(args.backend)
    cache = cache_from_args(args)
    service = ScoringService(
        host=args.host,
        port=args.port,
        workers=args.workers,
        backend=backend,
        cache=cache,
        journal=Path(args.journal) if args.journal else None,
        workdir=Path(args.workdir).resolve() if args.workdir else None,
    )
    pending = sum(1 for job in service.jobs.values() if job.status == "pending")
    print(
        f"scoring service on http://{args.host}:{args.port} "
        f"(backend {backend!r}, {args.workers} worker(s), "
        f"cache {'off' if cache is None else str(cache.root)}, "
        f"{pending} journaled job(s) replayed)",
        flush=True,
    )
    service.run()
    if cache is not None:
        cache.sweep()
    print("scoring service stopped", flush=True)
    return 0


def _score_grid_main(args: argparse.Namespace) -> int:
    backend = _resolve_backend(args.backend)
    cache = cache_from_args(args)
    client = ServiceClient(args.url, timeout=args.timeout)
    client.healthz()
    started = time.time()
    report = score_grid_via_service(
        client,
        args.seed,
        args.functions,
        args.candidates,
        max_stmts=args.max_stmts,
        backend=backend,
        opt_level=args.opt_level,
        lint=not args.no_lint,
        cache=cache,
    )
    elapsed = time.time() - started
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    aggregate = report["aggregate"]
    print(f"wrote {args.output}")
    print(
        "  verdicts: "
        + ", ".join(f"{k}={v}" for k, v in aggregate["verdict_counts"].items())
    )
    print(
        f"  ground-truth agreement: {aggregate['ground_truth_agreement']:.1%} "
        f"({len(aggregate['mismatches'])} mismatches)"
    )
    rate = aggregate["candidates"] / max(1e-9, elapsed)
    print(f"  throughput: {rate:.1f} candidates/s over HTTP ({elapsed:.1f}s)")
    if cache is not None:
        cache.sweep()
        print("  client cache: " + describe_stats(cache.stats_summary()))
    for mismatch in aggregate["mismatches"][:10]:
        print(
            f"  MISMATCH {mismatch['uid']} candidate {mismatch['candidate']} "
            f"({mismatch['kind']}): expected {mismatch['expected']}, "
            f"got {mismatch['verdict']} — {mismatch['detail']}",
            file=sys.stderr,
        )
    return 1 if aggregate["mismatches"] else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.service",
        description="Candidate-scoring HTTP daemon over the warm eval cache.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="run the scoring daemon")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT)
    serve.add_argument(
        "--workers", type=int, default=2, help="scoring worker threads (default 2)"
    )
    serve.add_argument(
        "--backend",
        choices=("auto", "x86", "arm", "none"),
        default="auto",
        help="default substrate for requests that don't name one",
    )
    serve.add_argument(
        "--journal",
        default=None,
        help="JSON-lines job journal; jobs in it are replayed on startup "
        "(omit for a journal-less daemon)",
    )
    serve.add_argument(
        "--workdir",
        default=None,
        help="persistent build directory for the worker pool "
        "(default: a temporary directory)",
    )
    add_cache_arguments(serve)

    grid = commands.add_parser(
        "score-grid",
        help="score the fixed-seed grid over HTTP and write the CLI-identical "
        "report",
    )
    grid.add_argument("--url", default=f"http://127.0.0.1:{DEFAULT_PORT}")
    grid.add_argument("--seed", type=int, default=0)
    grid.add_argument("--functions", type=int, default=20)
    grid.add_argument("--candidates", type=int, default=8)
    grid.add_argument("--max-stmts", type=int, default=10)
    grid.add_argument(
        "--backend", choices=("auto", "x86", "arm", "none"), default="auto"
    )
    grid.add_argument("--opt-level", choices=("O0", "O3"), default="O0")
    grid.add_argument("--no-lint", action="store_true")
    grid.add_argument("--timeout", type=float, default=600.0)
    grid.add_argument("--output", default="eval_report_service.json")
    add_cache_arguments(grid)

    args = parser.parse_args(argv)
    if args.command == "serve":
        return _serve_main(args)
    return _score_grid_main(args)


__all__ = [
    "DEFAULT_PORT",
    "Job",
    "JobJournal",
    "ScoringService",
    "ServiceClient",
    "ServiceError",
    "build_grid_requests",
    "job_id_for",
    "score_grid_via_service",
]


if __name__ == "__main__":
    raise SystemExit(main())
