"""Decompilation-hypothesis scoring: the paper's evaluation loop.

SLaDe's contribution is judging candidate decompilations by **IO
equivalence against the original binary**, not text similarity.  This
package reproduces that loop end to end on the Mini-C pipeline:

* :mod:`repro.eval.dataset` — the ExeBench role: materialises (assembly,
  reference C, IO-vector) triples from the corpus and the seeded program
  generator across {x86, arm} x {O0, O3}
  (``python -m repro.eval.dataset``);
* :mod:`repro.eval.mutate` — a mutation-based pseudo-decompiler that
  manufactures candidate sets with *certified* ground-truth labels
  (semantics-preserving renames/commutes/loop-refactors vs. breaking
  off-by-ones/sign-flips/dropped-casts vs. front-end-invalid candidates),
  so the scorer's verdicts are testable without a neural model;
* :mod:`repro.eval.score` — the scorer itself
  (``python -m repro.eval.score``): every candidate runs
  parse -> typecheck -> compile -> execute-on-IO-vectors and receives one
  of six verdicts, with the N candidates of one function executed as a
  single :class:`repro.testing.native.NativeBatch` and a normalized edit
  similarity as the secondary metric;
* :mod:`repro.eval.repair` — the permuter on top of the scorer
  (``python -m repro.eval.repair``): near-miss candidates (``io_mismatch``
  / ``type_error`` / ``trap``) are beam-searched toward ``io_equivalent``
  over the reversed mutation inventory, with resumable campaign state.
"""

from typing import List

__all__: List[str] = [
    "DatasetEntry",
    "Observation",
    "build_dataset",
    "generated_entries",
    "classify_observations",
    "classify_with_diffs",
    "observation_diff",
    "front_end_gate",
    "Candidate",
    "Mutator",
    "make_candidates",
    "repair_neighbors",
    "CandidateScore",
    "score_candidates",
    "score_dataset",
    "score_entry_sets",
    "build_report",
    "edit_similarity",
    "RepairConfig",
    "repair_campaign",
    "ScoringService",
    "ServiceClient",
]


def __getattr__(name: str):
    if name in (
        "DatasetEntry",
        "Observation",
        "build_dataset",
        "generated_entries",
        "classify_observations",
        "classify_with_diffs",
        "observation_diff",
        "front_end_gate",
    ):
        from repro.eval import dataset

        return getattr(dataset, name)
    if name in ("Candidate", "Mutator", "make_candidates", "repair_neighbors"):
        from repro.eval import mutate

        return getattr(mutate, name)
    if name in (
        "CandidateScore",
        "score_candidates",
        "score_dataset",
        "score_entry_sets",
        "build_report",
        "edit_similarity",
    ):
        from repro.eval import score

        return getattr(score, name)
    if name in ("RepairConfig", "repair_campaign"):
        from repro.eval import repair

        return getattr(repair, name)
    if name in ("ScoringService", "ServiceClient"):
        from repro.eval import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
