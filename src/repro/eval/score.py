"""Candidate scorer: the paper's evaluation loop, end to end.

``python -m repro.eval.score`` takes N candidate C sources per function and
scores each against the reference's IO vectors, exactly the way SLaDe
judges decompilation hypotheses: **IO equivalence against the compiled
ground truth, not text similarity**.  Each candidate walks the gauntlet

    parse -> typecheck -> compile -> execute on every IO vector

and receives one of six verdicts: ``parse_error``, ``type_error``,
``compile_error``, ``trap``, ``io_mismatch`` or ``io_equivalent``.  A
normalized token-level edit similarity to the reference source rides along
as the secondary metric (the "how close did it look" number the paper
contrasts IO accuracy with).

Execution is batched by construction, *across functions*: gate survivors
from many functions are grouped into shared
:class:`repro.testing.native.NativeBatch` fork-server builds (one
toolchain invocation per ~32 candidates instead of per candidate or per
function), the same machinery — and therefore byte-identical verdicts —
as the fuzzing pipeline's batch path.  ``--jobs N`` shards functions
round-robin over worker processes; verdicts depend only on each
function's seed, so reports are byte-identical at any job count.
``--no-fork-server`` keeps the batches but executes them through the
one-subprocess-per-leg harness; ``--no-batch`` runs each survivor through
its own :class:`NativeFunction`.  ``--check-parity`` scores on every
available path and asserts all reports are byte-identical.

Without a native toolchain (or with ``--backend none``) survivors execute
on the interpreter instead; the front-end gauntlet, including real
assembly emission, still runs.

Typical invocations::

    python -m repro.eval.score --seed 0 --functions 50 --candidates 8
    python -m repro.eval.score --seed 0 --functions 50 --candidates 8 \\
        --check-parity --output eval_report.json
    python -m repro.eval.score --seed 3 --functions 10 --candidates 4 \\
        --backend none
"""

from __future__ import annotations

import argparse
import contextlib
import json
import multiprocessing
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, replace
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.compiler.driver import CompileError
from repro.eval.cache import (
    EvalCache,
    add_cache_arguments,
    cache_from_args,
    describe_stats,
    json_digest,
    source_digest,
)
from repro.eval.dataset import (
    DatasetEntry,
    Observation,
    classify_with_diffs,
    front_end_gate,
    generated_entries,
    interpreter_observation,
)
from repro.eval.mutate import Candidate, Mutator
from repro.lang.lexer import LexError, TokenKind, tokenize
from repro.testing import native
from repro.testing.frontend import CaseContext


# ---------------------------------------------------------------------------
# Edit similarity (the secondary, text-based metric)
# ---------------------------------------------------------------------------


@lru_cache(maxsize=512)
def _token_texts(source: str) -> Optional[Tuple[str, ...]]:
    # Cached because every candidate is compared against the same reference
    # source; callers only read the returned tuple.
    try:
        return tuple(t.text for t in tokenize(source) if t.kind is not TokenKind.EOF)
    except LexError:
        return None


def _levenshtein(a: Sequence, b: Sequence) -> int:
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Mutation-derived candidates differ from their reference in a small
    # region, so stripping the common prefix/suffix first removes most of
    # the O(len(a) * len(b)) table (the distance is unchanged: edits only
    # happen where the sequences differ).
    start = 0
    limit = min(len(a), len(b))
    while start < limit and a[start] == b[start]:
        start += 1
    end_a, end_b = len(a), len(b)
    while end_a > start and end_b > start and a[end_a - 1] == b[end_b - 1]:
        end_a -= 1
        end_b -= 1
    a = a[start:end_a]
    b = b[start:end_b]
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for row, item_a in enumerate(a):
        diagonal = previous[0]
        value = row + 1
        current = [value]
        append = current.append
        index = 0
        for item_b in b:
            index += 1
            above = previous[index]
            best = diagonal if item_a == item_b else diagonal + 1
            if above + 1 < best:
                best = above + 1
            if value + 1 < best:
                best = value + 1
            value = best
            append(value)
            diagonal = above
        previous = current
    return previous[-1]


def edit_similarity(candidate: str, reference: str) -> float:
    """Normalized edit similarity in [0, 1]: 1 - dist / max_len.

    Computed over lexer tokens so formatting differences don't count;
    candidates the lexer rejects fall back to whitespace tokenization, so
    both paths measure edits in *tokens* (the fallback previously compared
    whitespace-joined strings character by character, which made unlexable
    candidates score on a different — much finer — scale).
    """
    a = _token_texts(candidate)
    b = _token_texts(reference)
    if a is None or b is None:
        a = tuple(candidate.split())
        b = tuple(reference.split())
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return round(1.0 - _levenshtein(a, b) / longest, 4)


# ---------------------------------------------------------------------------
# Scoring one function's candidate set
# ---------------------------------------------------------------------------


@dataclass
class CandidateScore:
    """One candidate's verdict plus the secondary similarity metric."""

    index: int
    verdict: str
    similarity: float
    detail: str = ""
    kind: str = ""
    label: str = ""
    expected: str = ""
    #: The UB linter proved every call of this candidate traps (a definite
    #: division by zero on the must-execute spine).
    lint_flagged: bool = False
    #: The verdict above was assigned by the lint pre-filter, without
    #: compiling or executing the candidate.
    lint_prefilter: bool = False
    #: Fraction of IO vectors on which the candidate's observation agrees
    #: with the reference's (the repair search's primary score).  ``None``
    #: when the candidate never executed (front-end failure, build failure
    #: or lint pre-filter skip).
    agreement: Optional[float] = None

    @property
    def matches_expected(self) -> bool:
        return not self.expected or self.verdict == self.expected

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "index": self.index,
            "verdict": self.verdict,
            "similarity": self.similarity,
            "detail": self.detail,
        }
        if self.agreement is not None:
            out["agreement"] = self.agreement
        if self.lint_flagged:
            out["lint_flagged"] = True
        if self.lint_prefilter:
            out["lint_prefilter"] = True
        if self.expected:
            out.update(
                {
                    "kind": self.kind,
                    "label": self.label,
                    "expected": self.expected,
                    "ok": self.matches_expected,
                }
            )
        return out


def _front_end_gate(
    source: str,
    name: str,
    backend: str,
    opt_level: str,
    cache: Optional[EvalCache] = None,
) -> Union[Tuple[str, str], CaseContext]:
    """Run parse -> typecheck -> compile; (verdict, detail) on failure.

    Parse/typecheck verdicts come from the shared
    :func:`repro.eval.dataset.front_end_gate`, the same gate the mutation
    certifier uses — by construction the two cannot disagree on a
    candidate's front-end fate.

    With ``cache`` the emitted assembly (or the compile error) is stored
    keyed by the normalized token stream, so a warm run seeds the context
    instead of lowering and emitting again.
    """
    gate = front_end_gate(source, name)
    if isinstance(gate[0], str):
        return gate
    program, checker = gate
    context = CaseContext(source, name, program=program, checker=checker)
    isa = backend if backend != "none" else "x86"
    asm_key = None
    if cache is not None:
        asm_key = cache.key("asm", source_digest(source), name, isa, opt_level)
        cached = cache.get("asm", asm_key)
        if cached is not None:
            if cached.get("error"):
                return "compile_error", cached["detail"]
            context.seed_assembly(isa, opt_level, cached["text"])
            return context
    try:
        # The gate always emits real assembly — even when execution later
        # happens on the interpreter — so verdicts do not depend on the
        # execution substrate.
        assembly = context.assembly(isa, opt_level)
    except CompileError as exc:
        if cache is not None and asm_key is not None:
            cache.put("asm", asm_key, {"error": True, "detail": str(exc)})
        return "compile_error", str(exc)
    if cache is not None and asm_key is not None:
        cache.put("asm", asm_key, {"error": False, "text": assembly})
    return context


def _interp_observations(
    context: CaseContext, inputs: Sequence[Tuple]
) -> List[Observation]:
    return [interpreter_observation(context, tuple(args)) for args in inputs]


def _native_outcome_to_observation(outcome: Tuple[str, Any]) -> Observation:
    status, payload = outcome
    if status == "ok":
        return Observation(
            "ok", payload.return_value, list(payload.arg_values), dict(payload.globals)
        )
    return Observation(status, detail=str(payload))


def _lint_trap_finding(context: CaseContext, name: str):
    """The first linter finding proving every call traps, or None.

    Lint failures never block scoring — a candidate the analysis chokes on
    simply falls through to the execution path.
    """
    from repro.analysis.lint import lint_program

    try:
        findings = lint_program(context.program, name=name)
    except Exception:
        return None
    return next((f for f in findings if f.predicts_trap), None)


def _stage_candidates(
    entry: DatasetEntry,
    candidates: Sequence[Candidate],
    backend: str,
    opt_level: str,
    lint: bool,
    cache: Optional[EvalCache] = None,
) -> Tuple[List[CandidateScore], List[Tuple[int, CaseContext]]]:
    """Front-end gate + lint pre-filter for one candidate set.

    Returns the (partially filled) score list plus the execution survivors;
    the staging is independent of how survivors later execute, which is what
    keeps every execution path's report byte-identical.
    """
    fast_trap_sound = (
        backend in ("x86", "none")
        and opt_level == "O0"
        and len(entry.inputs) > 0
        and all(obs.status == "ok" for obs in entry.reference)
    )
    scores: List[CandidateScore] = []
    survivors: List[Tuple[int, CaseContext]] = []
    for index, candidate in enumerate(candidates):
        gate = _front_end_gate(candidate.text, entry.name, backend, opt_level, cache)
        similarity = edit_similarity(candidate.text, entry.source)
        if isinstance(gate, tuple):
            verdict, detail = gate
            scores.append(
                CandidateScore(
                    index, verdict, similarity, detail,
                    candidate.kind, candidate.label, candidate.expected,
                )
            )
            continue
        score = CandidateScore(
            index, "", similarity, "",
            candidate.kind, candidate.label, candidate.expected,
        )
        if lint:
            finding = _lint_trap_finding(gate, entry.name)
            if finding is not None:
                score.lint_flagged = True
                if fast_trap_sound:
                    score.verdict = "trap"
                    score.detail = f"lint: {finding.message} [every call traps]"
                    score.lint_prefilter = True
                    scores.append(score)
                    continue
        scores.append(score)
        survivors.append((index, gate))
    return scores, survivors


def _finalize_scores(
    entry: DatasetEntry,
    scores: List[CandidateScore],
    survivors: List[Tuple[int, CaseContext]],
    observations: List[Union[List[Observation], Tuple[str, str]]],
) -> None:
    for (index, _), obs in zip(survivors, observations):
        if isinstance(obs, tuple):  # build failure: (verdict, detail)
            # Merge into the placeholder so kind/label/expected survive
            # and a certified candidate the toolchain rejects still
            # counts against ground-truth agreement.
            scores[index].verdict, scores[index].detail = obs
            continue
        verdict, detail, diffs = classify_with_diffs(entry.reference, obs)
        scores[index].verdict = verdict
        scores[index].detail = detail
        scores[index].agreement = (
            round(sum(1 for diff in diffs if diff is None) / len(diffs), 6)
            if diffs
            else 1.0
        )


def score_candidates(
    entry: DatasetEntry,
    candidates: Sequence[Candidate],
    backend: str = "x86",
    opt_level: str = "O0",
    use_batch: bool = True,
    workdir: Optional[Path] = None,
    lint: bool = True,
    fork_server: bool = True,
    run_timeout: float = 10.0,
    cache: Optional[EvalCache] = None,
) -> List[CandidateScore]:
    """Score one function's candidate set against its IO vectors.

    ``backend`` is the ISA candidates are compiled for; ``"none"`` runs
    survivors on the interpreter (the compile gate still emits x86
    assembly).  With ``use_batch`` the N surviving candidates execute as a
    single :class:`NativeBatch`; without it each gets its own
    :class:`NativeFunction` — the slower reference path the batch path must
    match byte for byte.

    With ``lint`` (default) every gate survivor runs through the UB linter
    of :mod:`repro.analysis.lint` first.  A candidate the linter *proves*
    traps on every call (definite division by zero on the must-execute
    spine) is annotated ``lint_flagged`` — and, when the fast path is
    sound, receives its ``trap`` verdict without compiling or executing:
    that requires an all-ok reference (so :func:`classify_observations`
    would map any candidate trap/limit to ``trap``), at least one input,
    and a substrate where the dialect's trap semantics hold (``x86``/
    ``none`` at ``O0`` — AArch64 returns 0 on division by zero and -O3
    may fold the site away, exactly the cases trap labels are disabled
    for).  The pre-filter is batching-independent, so batched and
    per-candidate reports stay byte-identical.
    """
    tmp: Optional[tempfile.TemporaryDirectory] = None
    if workdir is None and backend != "none":
        tmp = tempfile.TemporaryDirectory(prefix="minic-eval-")
        workdir = Path(tmp.name)
    try:
        scores, survivors = _stage_candidates(
            entry, candidates, backend, opt_level, lint, cache
        )
        observations = _execute_survivors(
            entry, survivors, backend, opt_level, use_batch, workdir, fork_server,
            run_timeout, cache
        )
        _finalize_scores(entry, scores, survivors, observations)
        return scores
    finally:
        if tmp is not None:
            tmp.cleanup()


def _execute_survivors(
    entry: DatasetEntry,
    survivors: List[Tuple[int, CaseContext]],
    backend: str,
    opt_level: str,
    use_batch: bool,
    workdir: Optional[Path],
    fork_server: bool = True,
    run_timeout: float = 10.0,
    cache: Optional[EvalCache] = None,
) -> List[Union[List[Observation], Tuple[str, str]]]:
    """One observation list per survivor, or a (verdict, detail) failure."""
    if not survivors:
        return []
    if backend == "none":
        return [
            _interp_observations(context, entry.inputs) for _, context in survivors
        ]
    assert workdir is not None
    if use_batch:
        outcome = _execute_batch(
            entry, survivors, backend, opt_level, workdir, fork_server, run_timeout,
            cache
        )
        if outcome is not None:
            return outcome
        # Whole-batch build/run failure: fall back to the per-candidate
        # path, which attributes the problem to the right candidate.
    return [
        _execute_single(entry, context, backend, opt_level, workdir, run_timeout, cache)
        for _, context in survivors
    ]


def _execute_batch(
    entry: DatasetEntry,
    survivors: List[Tuple[int, CaseContext]],
    backend: str,
    opt_level: str,
    workdir: Path,
    fork_server: bool = True,
    run_timeout: float = 10.0,
    cache: Optional[EvalCache] = None,
) -> Optional[List[List[Observation]]]:
    cases = [
        native.BatchCase(
            source=context.source,
            name=entry.name,
            inputs=[tuple(args) for args in entry.inputs],
            context=context,
        )
        for _, context in survivors
    ]
    try:
        batch = native.NativeBatch(
            cases,
            opt_level,
            workdir,
            isa=backend,
            run_timeout=run_timeout,
            tag=f"eval_{entry.uid}",
            fork_server=fork_server,
            cache=cache,
        )
        results: List[List[Observation]] = []
        for case_index in range(len(survivors)):
            results.append(
                [
                    _native_outcome_to_observation(
                        batch.outcome(case_index, input_index)
                    )
                    for input_index in range(len(entry.inputs))
                ]
            )
        return results
    except (
        subprocess.CalledProcessError,
        subprocess.TimeoutExpired,  # the batch build itself can time out
        native.BatchExecutionError,
        OSError,
    ):
        return None


def _execute_single(
    entry: DatasetEntry,
    context: CaseContext,
    backend: str,
    opt_level: str,
    workdir: Path,
    run_timeout: float = 10.0,
    cache: Optional[EvalCache] = None,
) -> Union[List[Observation], Tuple[str, str]]:
    try:
        fn = native.NativeFunction(
            context.source,
            entry.name,
            [tuple(args) for args in entry.inputs],
            opt_level,
            workdir,
            isa=backend,
            run_timeout=run_timeout,
            context=context,
            cache=cache,
        )
    except (subprocess.CalledProcessError, subprocess.TimeoutExpired, OSError) as exc:
        stderr = getattr(exc, "stderr", None) or b""
        if isinstance(stderr, str):
            stderr = stderr.encode("utf-8", "replace")
        detail = stderr.decode("utf-8", "replace")[-500:] or str(exc)
        return "compile_error", f"toolchain failed on the assembly: {detail}"
    observations: List[Observation] = []
    for input_index in range(len(entry.inputs)):
        try:
            result = fn.run(input_index)
        except subprocess.CalledProcessError as exc:
            observations.append(
                Observation("trap", detail=f"exit status {exc.returncode}")
            )
            continue
        except subprocess.TimeoutExpired:
            observations.append(Observation("limit", detail="execution timeout"))
            continue
        observations.append(
            Observation(
                "ok", result.return_value, list(result.arg_values), dict(result.globals)
            )
        )
    return observations


# ---------------------------------------------------------------------------
# Whole-dataset scoring and the JSON report
# ---------------------------------------------------------------------------

#: Cap on gate survivors per cross-function native build (see
#: :data:`repro.testing.native.DEFAULT_GROUP_CASES` — the grouping itself
#: lives in :class:`repro.testing.native.GroupedBatchRunner` now, shared
#: with the repair search).
EVAL_GROUP_CASES = native.DEFAULT_GROUP_CASES


def _score_entries(
    entries: Sequence[DatasetEntry],
    candidate_sets: Sequence[Sequence[Candidate]],
    backend: str = "x86",
    opt_level: str = "O0",
    use_batch: bool = True,
    lint: bool = True,
    fork_server: bool = True,
    run_timeout: float = 10.0,
    cache: Optional[EvalCache] = None,
    workdir: Optional[Path] = None,
) -> List[List[CandidateScore]]:
    """One CandidateScore list per entry (the unit one ``--jobs`` worker runs).

    On the batched native path, gate survivors from *many* functions share
    one :class:`NativeBatch` (up to :data:`EVAL_GROUP_CASES` per group) so
    the toolchain runs once per group instead of once per function, and the
    next group's build is launched before the current group is drained.  A
    group that fails to build or run falls back to the per-entry executor —
    the same code the ungrouped scorer uses — so verdicts and their
    attribution are identical on every path.

    ``workdir``, when given, is reused for build products instead of a
    per-call temporary directory — the scoring service's workers keep one
    per worker so repeated requests don't churn tempdirs.  Verdicts never
    depend on it (artifacts are keyed by tag inside it, and the caller owns
    cleanup).
    """
    if backend == "none" or not use_batch:
        return [
            score_candidates(
                entry,
                candidates,
                backend=backend,
                opt_level=opt_level,
                use_batch=use_batch,
                workdir=workdir,
                lint=lint,
                fork_server=fork_server,
                run_timeout=run_timeout,
                cache=cache,
            )
            for entry, candidates in zip(entries, candidate_sets)
        ]

    staged = [
        _stage_candidates(entry, candidates, backend, opt_level, lint, cache)
        for entry, candidates in zip(entries, candidate_sets)
    ]

    units = [
        [
            native.BatchCase(
                source=context.source,
                name=entry.name,
                inputs=[tuple(args) for args in entry.inputs],
                context=context,
            )
            for _, context in survivors
        ]
        for entry, (_, survivors) in zip(entries, staged)
    ]

    if workdir is not None:
        tmp_ctx: Any = contextlib.nullcontext(str(workdir))
    else:
        tmp_ctx = tempfile.TemporaryDirectory(prefix="minic-eval-")
    with tmp_ctx as tmp:
        group_workdir = Path(tmp)
        with native.GroupedBatchRunner(
            opt_level,
            group_workdir,
            isa=backend,
            fork_server=fork_server,
            group_cases=EVAL_GROUP_CASES,
            run_timeout=run_timeout,
            cache=cache,
        ) as runner:
            for position, raw in runner.run(units):
                entry = entries[position]
                scores, survivors = staged[position]
                if raw is None:
                    # The whole group failed to build or drain: fall back to
                    # the per-entry executor, which attributes the problem to
                    # the right candidate.
                    observations = _execute_survivors(
                        entry, survivors, backend, opt_level, True, group_workdir,
                        fork_server, run_timeout, cache
                    )
                else:
                    observations = [
                        [
                            _native_outcome_to_observation(outcome)
                            for outcome in per_input
                        ]
                        for per_input in raw
                    ]
                _finalize_scores(entry, scores, survivors, observations)

    return [scores for scores, _ in staged]


def _verdict_key(
    cache: EvalCache,
    entry: DatasetEntry,
    text: str,
    backend: str,
    opt_level: str,
    lint: bool,
    run_timeout: float,
) -> str:
    """Memo key for one (candidate, reference, substrate) triple.

    Every input the verdict depends on is part of the key: the candidate
    and reference *texts* (raw, because the similarity metric's unlexable
    fallback sees formatting), the IO vectors, the reference observations,
    the substrate and the run timeout (score and repair use different
    budgets, so their ``limit`` verdicts can legitimately differ).  The
    execution path (batched / fork server) is deliberately absent: all
    paths are pinned byte-identical by ``--check-parity``.
    """
    return cache.key(
        "verdict",
        text,
        entry.source,
        entry.name,
        json.dumps([list(args) for args in entry.inputs]),
        json_digest([obs.to_json() for obs in entry.reference]),
        backend,
        opt_level,
        str(lint),
        str(run_timeout),
    )


def score_to_payload(score: CandidateScore) -> Dict[str, Any]:
    """The candidate-independent slice of a score (caller metadata —
    index/kind/label/expected — is reapplied per candidate on a hit).

    This is both the verdict-memo envelope and the scoring service's wire
    format for one candidate: every field JSON round-trips exactly, so
    :func:`score_from_payload` on the other side rebuilds a
    :class:`CandidateScore` whose ``to_json()`` is byte-identical to the
    original's."""
    return {
        "verdict": score.verdict,
        "similarity": score.similarity,
        "detail": score.detail,
        "agreement": score.agreement,
        "lint_flagged": score.lint_flagged,
        "lint_prefilter": score.lint_prefilter,
    }


def score_from_payload(
    payload: Dict[str, Any], index: int, candidate: Candidate
) -> CandidateScore:
    """Rebuild a :class:`CandidateScore` from :func:`score_to_payload`
    output plus the caller-side candidate metadata."""
    return CandidateScore(
        index,
        payload["verdict"],
        payload["similarity"],
        payload["detail"],
        candidate.kind,
        candidate.label,
        candidate.expected,
        lint_flagged=bool(payload.get("lint_flagged")),
        lint_prefilter=bool(payload.get("lint_prefilter")),
        agreement=payload.get("agreement"),
    )


def score_entry_sets(
    entries: Sequence[DatasetEntry],
    candidate_sets: Sequence[Sequence[Candidate]],
    cache: Optional[EvalCache] = None,
    **kwargs: Any,
) -> List[List[CandidateScore]]:
    """Score many (entry, candidate set) pairs: the reusable scoring seam.

    This is :func:`_score_entries` behind the verdict memo + in-run dedupe
    — the exact unit one ``--jobs`` worker runs, and what the scoring
    service executes per request.  Candidates whose memo key hits (a
    previous run, round or campaign judged the same text against the same
    reference) never reach the gate or the harness; candidates that are
    byte-identical *within* one set execute once and fan the verdict out.
    The reduced unique-miss sets go through the untouched
    :func:`_score_entries` machinery, so a warm report is byte-identical
    to a cold one by construction.

    ``kwargs`` are :func:`_score_entries`'s: ``backend``, ``opt_level``,
    ``use_batch``, ``lint``, ``fork_server``, ``run_timeout``, ``workdir``.
    """
    if cache is None:
        return _score_entries(entries, candidate_sets, **kwargs)
    backend = kwargs.get("backend", "x86")
    opt_level = kwargs.get("opt_level", "O0")
    lint = kwargs.get("lint", True)
    run_timeout = kwargs.get("run_timeout", 10.0)

    memo: Dict[str, Dict[str, Any]] = {}
    plans = []  # per entry: (keys per candidate, unique miss keys+candidates)
    for entry, candidates in zip(entries, candidate_sets):
        keys: List[str] = []
        unique_keys: List[str] = []
        unique_candidates: List[Candidate] = []
        for candidate in candidates:
            key = _verdict_key(
                cache, entry, candidate.text, backend, opt_level, lint, run_timeout
            )
            keys.append(key)
            if key in memo:
                continue
            payload = cache.get("verdict", key)
            if payload is not None:
                memo[key] = payload
                continue
            if key not in unique_keys:
                unique_keys.append(key)
                unique_candidates.append(candidate)
        plans.append((keys, unique_keys, unique_candidates))

    miss_positions = [p for p, plan in enumerate(plans) if plan[2]]
    if miss_positions:
        sub_scores = _score_entries(
            [entries[p] for p in miss_positions],
            [plans[p][2] for p in miss_positions],
            cache=cache,
            **kwargs,
        )
        for position, scores in zip(miss_positions, sub_scores):
            for key, score in zip(plans[position][1], scores):
                payload = score_to_payload(score)
                cache.put("verdict", key, payload)
                memo[key] = payload

    return [
        [
            score_from_payload(memo[key], index, candidate)
            for index, (key, candidate) in enumerate(zip(keys, candidates))
        ]
        for candidates, (keys, _, _) in zip(candidate_sets, plans)
    ]


#: Backwards-compatible private alias (the repair search imported the seam
#: under this name before it went public).
_score_entries_cached = score_entry_sets


def _entries_worker(payload):
    entries, candidate_sets, cache, kwargs = payload
    if cache is not None:
        # The pickled copy carries the parent's counters; zero them so the
        # summary shipped back is exactly this worker's delta.
        cache.stats = {}
        cache.evictions = 0
    scores = score_entry_sets(entries, candidate_sets, cache, **kwargs)
    return scores, (cache.stats_summary() if cache is not None else None)


def score_dataset(
    entries: Sequence[DatasetEntry],
    candidate_sets: Sequence[Sequence[Candidate]],
    backend: str = "x86",
    opt_level: str = "O0",
    use_batch: bool = True,
    lint: bool = True,
    fork_server: bool = True,
    jobs: int = 1,
    cache: Optional[EvalCache] = None,
) -> Dict[str, Any]:
    """Score every entry's candidate set and build the aggregate report.

    With ``jobs > 1`` the entries are striped round-robin over a process
    pool; every verdict depends only on its entry, so the report is
    byte-identical at any job count (which is why the job count is not
    recorded in it).  The same holds for ``cache``: hits reproduce exactly
    what the miss path would compute, so the report never mentions the
    cache — hit/miss statistics accumulate on the cache object instead
    (worker processes ship their counters back for aggregation).
    """
    score_kwargs = {
        "backend": backend,
        "opt_level": opt_level,
        "use_batch": use_batch,
        "lint": lint,
        "fork_server": fork_server,
    }
    if jobs > 1 and len(entries) > 1:
        workers = min(jobs, len(entries))
        # An entry's cached CaseContext holds interpreter state (closures)
        # that cannot cross the process boundary; scoring never reads it,
        # so workers receive context-free copies.
        portable = [replace(entry, context=None) for entry in entries]
        shards = [
            (list(portable[worker::workers]), list(candidate_sets[worker::workers]))
            for worker in range(workers)
        ]
        payloads = [(shard, sets, cache, score_kwargs) for shard, sets in shards]
        with multiprocessing.Pool(processes=workers) as pool:
            worker_results = pool.map(_entries_worker, payloads)
        all_scores: List[Optional[List[CandidateScore]]] = [None] * len(entries)
        for worker, (scores_list, stats) in enumerate(worker_results):
            if cache is not None and stats is not None:
                cache.absorb(stats)
            for offset, scores in enumerate(scores_list):
                all_scores[worker + offset * workers] = scores
    else:
        all_scores = list(
            score_entry_sets(entries, candidate_sets, cache, **score_kwargs)
        )

    return build_report(
        entries,
        candidate_sets,
        all_scores,
        backend=backend,
        opt_level=opt_level,
        use_batch=use_batch,
        lint=lint,
        fork_server=fork_server,
    )


def build_report(
    entries: Sequence[DatasetEntry],
    candidate_sets: Sequence[Sequence[Candidate]],
    all_scores: Sequence[Optional[List[CandidateScore]]],
    backend: str = "x86",
    opt_level: str = "O0",
    use_batch: bool = True,
    lint: bool = True,
    fork_server: bool = True,
) -> Dict[str, Any]:
    """The aggregate JSON report for already-computed per-entry scores.

    Split out of :func:`score_dataset` so any producer of
    :class:`CandidateScore` lists — the in-process scorer or the HTTP
    service's grid client reassembling scores from wire payloads — emits
    the *same* document: same key order, same rounding, byte-identical
    when serialized the same way.
    """
    functions: List[Dict[str, Any]] = []
    verdict_counts: Dict[str, int] = {}
    mismatches: List[Dict[str, Any]] = []
    max_candidates = max((len(c) for c in candidate_sets), default=0)
    topk_hits = [0] * max_candidates
    # Linter-as-classifier bookkeeping against the certified mutate labels:
    # the positive class is expected == "trap".
    lint_flagged = 0
    lint_prefilter_skips = 0
    lint_true_positives = 0
    lint_false_positives = 0
    labelled_traps = 0

    for entry, candidates, scores in zip(entries, candidate_sets, all_scores):
        assert scores is not None
        for score in scores:
            verdict_counts[score.verdict] = verdict_counts.get(score.verdict, 0) + 1
            if score.lint_flagged:
                lint_flagged += 1
            if score.lint_prefilter:
                lint_prefilter_skips += 1
            if score.expected:
                if score.expected == "trap":
                    labelled_traps += 1
                if score.lint_flagged:
                    if score.expected == "trap":
                        lint_true_positives += 1
                    else:
                        lint_false_positives += 1
            if score.expected and not score.matches_expected:
                mismatches.append(
                    {
                        "uid": entry.uid,
                        "candidate": score.index,
                        "kind": score.kind,
                        "expected": score.expected,
                        "verdict": score.verdict,
                        "detail": score.detail,
                    }
                )
        # Ranking by the text metric alone (what a model would have without
        # an oracle): is an IO-equivalent candidate among the top k most
        # reference-like?  k=1 doubles as the report's top-1 number.
        ranked = sorted(scores, key=lambda s: (-s.similarity, s.index))
        for k in range(max_candidates):
            if any(s.verdict == "io_equivalent" for s in ranked[: k + 1]):
                topk_hits[k] += 1
        functions.append(
            {
                "uid": entry.uid,
                "name": entry.name,
                "origin": entry.origin,
                "inputs": len(entry.inputs),
                "candidates": [score.to_json() for score in scores],
            }
        )

    total_functions = len(functions)
    total_candidates = sum(len(c) for c in candidate_sets)
    labelled = sum(
        1 for sets in candidate_sets for candidate in sets if candidate.expected
    )
    agreement = (labelled - len(mismatches)) / labelled if labelled else 1.0
    predicted = lint_true_positives + lint_false_positives
    lint_section: Dict[str, Any] = {
        "enabled": lint,
        "flagged": lint_flagged,
        "prefilter_skips": lint_prefilter_skips,
        "labelled_traps": labelled_traps,
        "true_positives": lint_true_positives,
        "false_positives": lint_false_positives,
        # Precision over the labelled candidates the linter flagged; 1.0
        # when it flagged none (no claims, no wrong claims).
        "precision": round(lint_true_positives / predicted, 4) if predicted else 1.0,
        "recall": round(lint_true_positives / labelled_traps, 4)
        if labelled_traps
        else 1.0,
    }
    return {
        "schema": 1,
        "config": {
            "backend": backend,
            "opt_level": opt_level,
            "batched": use_batch,
            "fork_server": fork_server,
            "lint": lint,
        },
        "functions": functions,
        "aggregate": {
            "functions": total_functions,
            "candidates": total_candidates,
            "verdict_counts": dict(sorted(verdict_counts.items())),
            "ground_truth_agreement": round(agreement, 4),
            "lint": lint_section,
            "mismatches": mismatches,
            "top1_by_similarity": round(topk_hits[0] / total_functions, 4)
            if total_functions and topk_hits
            else 0.0,
            "topk_any_equivalent": {
                str(k + 1): round(hits / total_functions, 4)
                for k, hits in enumerate(topk_hits)
            }
            if total_functions
            else {},
        },
    }


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _resolve_backend(requested: str) -> str:
    if requested == "auto":
        if native.have_native_toolchain():
            return "x86"
        if native.have_arm_toolchain():
            return "arm"
        return "none"
    if requested == "x86" and not native.have_native_toolchain():
        raise SystemExit("error: no x86-64 toolchain (gcc + as) on this host")
    if requested == "arm" and not native.have_arm_toolchain():
        raise SystemExit("error: no AArch64 toolchain/emulator on this host")
    return requested


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.score",
        description="Score decompilation candidates by IO equivalence.",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
    parser.add_argument(
        "--functions", type=int, default=20, help="reference functions (default 20)"
    )
    parser.add_argument(
        "--candidates", type=int, default=8, help="candidates per function (default 8)"
    )
    parser.add_argument(
        "--max-stmts", type=int, default=10, help="statement budget per reference"
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "x86", "arm", "none"),
        default="auto",
        help="execution substrate: native ISA, or 'none' for the interpreter "
        "(default auto: x86 when the toolchain exists)",
    )
    parser.add_argument(
        "--opt-level",
        choices=("O0", "O3"),
        default="O0",
        help="opt level candidates are compiled at (default O0)",
    )
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="execute candidates one binary at a time (the parity reference)",
    )
    parser.add_argument(
        "--no-fork-server",
        action="store_true",
        help="execute batches through the one-subprocess-per-leg harness "
        "instead of the persistent fork server (the parity reference)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; functions are sharded round-robin and the "
        "report is byte-identical at any job count (default 1)",
    )
    parser.add_argument(
        "--check-parity",
        action="store_true",
        help="score on every execution path (fork-server batches, subprocess "
        "batches, per-candidate) and fail unless all reports are "
        "byte-identical",
    )
    parser.add_argument(
        "--no-lint",
        action="store_true",
        help="skip the UB-linter pre-filter (on by default: candidates the "
        "linter proves trap on every call skip compile+execute)",
    )
    parser.add_argument(
        "--output", default="eval_report.json", help="where to write the JSON report"
    )
    add_cache_arguments(parser)
    args = parser.parse_args(argv)
    if args.max_stmts < 3:
        parser.error("--max-stmts must be at least 3 (the generator's minimum)")

    backend = _resolve_backend(args.backend)
    cache = cache_from_args(args)
    started = time.time()
    # Scoring never reads the reference assembly grid, so only the ISA/opt
    # the compile gate uses is materialised (the dataset CLI still builds
    # the full {x86, arm} x {O0, O3} grid — that is its job).
    entries = generated_entries(
        args.seed,
        args.functions,
        max_stmts=args.max_stmts,
        isas=("arm",) if backend == "arm" else ("x86",),
        opt_levels=(args.opt_level,),
        cache=cache,
    )
    candidate_sets = [
        Mutator(
            entry.seed if entry.seed is not None else args.seed,
            # Interpreter-certified trap labels do not transfer everywhere:
            # AArch64 returns 0 on integer division by zero instead of
            # faulting, and -O3 DCE can delete a dead trapping division
            # entirely.  Both substrates get trap-free candidate sets.
            allow_trap_labels=backend != "arm" and args.opt_level == "O0",
        ).candidates(entry, args.candidates, cache=cache)
        for entry in entries
    ]
    built = time.time()
    print(
        f"dataset: {len(entries)} functions x {args.candidates} candidates "
        f"({sum(len(e.inputs) for e in entries)} IO vectors) "
        f"in {built - started:.1f}s; scoring on {backend!r}"
    )

    report = score_dataset(
        entries,
        candidate_sets,
        backend=backend,
        opt_level=args.opt_level,
        use_batch=not args.no_batch,
        lint=not args.no_lint,
        fork_server=not args.no_fork_server,
        jobs=max(1, args.jobs),
        cache=cache,
    )
    scored = time.time()

    parity_failed = False
    if args.check_parity:
        # Score again on every execution path the main run did not take;
        # the runs may differ only in the recorded execution-path flags.
        main_path = (not args.no_batch, not args.no_fork_server)
        variants = [
            (use_batch, fork_server)
            for use_batch, fork_server in [(True, True), (True, False), (False, False)]
            if (use_batch, fork_server) != main_path
        ]

        def _comparable(rep: Dict[str, Any]) -> str:
            scrubbed = {
                **rep,
                "config": {**rep["config"], "batched": None, "fork_server": None},
            }
            return json.dumps(scrubbed, sort_keys=True)

        for use_batch, fork_server in variants:
            # Reference runs are deliberately cache-free: a memo hit would
            # replay the main run's verdicts and make the parity check
            # vacuous.
            reference = score_dataset(
                entries,
                candidate_sets,
                backend=backend,
                opt_level=args.opt_level,
                use_batch=use_batch,
                lint=not args.no_lint,
                fork_server=fork_server,
            )
            label = (
                "fork-server batches" if use_batch and fork_server
                else "subprocess batches" if use_batch
                else "per-candidate"
            )
            mismatch = _comparable(report) != _comparable(reference)
            parity_failed = parity_failed or mismatch
            print(
                f"parity vs {label}: "
                + ("NOT byte-identical" if mismatch else "byte-identical")
            )

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    aggregate = report["aggregate"]
    rate = aggregate["candidates"] / max(1e-9, scored - built)
    print(f"wrote {args.output}")
    print(
        "  verdicts: "
        + ", ".join(f"{k}={v}" for k, v in aggregate["verdict_counts"].items())
    )
    print(
        f"  ground-truth agreement: {aggregate['ground_truth_agreement']:.1%} "
        f"({len(aggregate['mismatches'])} mismatches)"
    )
    lint_section = aggregate["lint"]
    if lint_section["enabled"]:
        print(
            f"  lint pre-filter: {lint_section['flagged']} flagged, "
            f"{lint_section['prefilter_skips']} execution(s) skipped, "
            f"precision {lint_section['precision']:.1%} / "
            f"recall {lint_section['recall']:.1%} vs certified trap labels"
        )
    print(
        f"  top-1 by similarity: {aggregate['top1_by_similarity']:.1%}; "
        f"any-equivalent@N: "
        + ", ".join(
            f"@{k}={v:.0%}" for k, v in aggregate["topk_any_equivalent"].items()
        )
    )
    print(f"  throughput: {rate:.1f} candidates/s ({scored - built:.1f}s scoring)")
    if cache is not None:
        cache.sweep()
        print("  cache: " + describe_stats(cache.stats_summary()))

    for mismatch in aggregate["mismatches"][:10]:
        print(
            f"  MISMATCH {mismatch['uid']} candidate {mismatch['candidate']} "
            f"({mismatch['kind']}): expected {mismatch['expected']}, "
            f"got {mismatch['verdict']} — {mismatch['detail']}",
            file=sys.stderr,
        )
    if aggregate["mismatches"] or parity_failed:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
