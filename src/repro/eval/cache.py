"""Content-addressed artifact & verdict cache: warm starts for ``repro.eval``.

Every ``repro.eval`` entry point used to cold-start the world: ``score``
regenerated the dataset, rebuilt every reference binary and re-executed
every candidate from scratch, and the repair search re-judged neighbors
that were byte-identical to ones already scored in a previous round or
campaign.  This module is the missing persistence layer — a single
on-disk store (default ``.repro-cache/``) shared by three cache layers:

* **dataset entries** — built (assembly, reference C, IO-vector) triples
  and certified candidate sets, keyed by their content, so warm runs load
  instead of regenerating and recompiling;
* **compiled artifacts** — emitted candidate assembly and linked batch
  binaries, keyed by the sha256 of the normalized token stream (or the
  full generated translation units), the ISA, the opt level and the
  cache schema version;
* **verdict memos** — ``(candidate, reference, substrate) →``
  :class:`~repro.eval.score.CandidateScore` payloads, so one execution
  fans out to every byte-identical candidate, across rounds, beams and
  campaigns.

Correctness properties:

* **Self-invalidating keys.**  Every key mixes in
  :func:`pipeline_fingerprint` — a digest of every ``.py`` file in the
  ``repro`` package — plus :data:`SCHEMA_VERSION`.  Changing any stage of
  the pipeline (generator, compiler, interpreter, harness ABI, scorer)
  changes every key, so a stale cache can never resurrect verdicts the
  current code would not produce.  ``--no-cache`` and cache-warm runs are
  byte-identical by construction: a hit returns exactly what the miss
  path would have computed and stored.
* **Crash- and race-safe writes.**  Entries are written to a temp file in
  the cache root and published with :func:`os.replace`, so concurrent
  ``--jobs`` workers (or parallel CI legs sharing one cache dir) never
  observe a partial entry; the losing writer of a race simply overwrites
  the same bytes.
* **Corruption is a miss, never a crash.**  A truncated, garbage or
  schema-mismatched entry is quarantined (removed) and counted, and the
  caller recomputes.
* **Bounded size.**  :meth:`EvalCache.sweep` evicts least-recently-used
  entries (hits refresh mtime) until the store fits ``max_bytes``;
  ties are broken by path so eviction order is deterministic.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

#: Bump when any cached payload's shape or meaning changes; part of every
#: key *and* checked in every stored envelope, so schema-mismatched files
#: read as misses even if the key somehow collides.
SCHEMA_VERSION = 1

#: Default cache location (relative to the working directory) used by the
#: ``--cache-dir`` CLI flags.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Default size cap applied by the CLI-level eviction sweep.
DEFAULT_MAX_BYTES = 512 * 1024 * 1024

_fingerprint: Optional[str] = None


def pipeline_fingerprint() -> str:
    """Digest of every ``.py`` file in the ``repro`` package, cached.

    This is the self-invalidation component of every cache key: any edit
    to the generator, front end, compiler, interpreter, native harness or
    scorer yields a different fingerprint and therefore a cold cache —
    the safe default for a codebase where all of those define what the
    cached bytes *mean*.
    """
    global _fingerprint
    if _fingerprint is None:
        package_root = Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(path.relative_to(package_root).as_posix().encode())
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        _fingerprint = digest.hexdigest()
    return _fingerprint


def normalize_source(source: str) -> str:
    """The token stream of ``source`` joined by single spaces.

    Formatting-insensitive: two sources that lex identically normalize
    identically, so reformatted candidates share artifacts and verdicts.
    Sources the lexer rejects normalize to themselves prefixed with a
    marker (they can still be cached — their verdicts are deterministic
    too — but never collide with a lexable spelling).
    """
    from repro.lang.lexer import LexError, TokenKind, tokenize

    try:
        tokens = tokenize(source)
    except LexError:
        return "\x00unlexable\x00" + source
    return " ".join(t.text for t in tokens if t.kind is not TokenKind.EOF)


def source_digest(source: str) -> str:
    """sha256 hex digest of the normalized token stream of ``source``."""
    return hashlib.sha256(normalize_source(source).encode("utf-8")).hexdigest()


def json_digest(payload: Any) -> str:
    """sha256 hex digest of a canonical JSON rendering of ``payload``."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _counter() -> Dict[str, int]:
    return {"hits": 0, "misses": 0, "stores": 0, "corrupt": 0}


def merge_stats(into: Dict[str, Any], other: Dict[str, Any]) -> Dict[str, Any]:
    """Accumulate one stats summary into another (for ``--jobs`` workers)."""
    for field in ("hits", "misses", "stores", "corrupt", "evictions"):
        into[field] = into.get(field, 0) + other.get(field, 0)
    layers = into.setdefault("layers", {})
    for layer, counts in other.get("layers", {}).items():
        target = layers.setdefault(layer, _counter())
        for field, value in counts.items():
            target[field] = target.get(field, 0) + value
    return into


class EvalCache:
    """One content-addressed store with named layers.

    A *layer* is a subdirectory (``entry``, ``candidates``, ``asm``,
    ``bin``, ``score``); a *key* is a hex digest computed by :meth:`key`,
    which always mixes in the schema version and the pipeline
    fingerprint.  JSON payloads are stored in an envelope that repeats the
    schema version so corrupted or legacy files are detected on read.
    """

    #: A ``.tmp-*`` file older than this is considered abandoned (its
    #: writer crashed before publishing) and is reaped by :meth:`sweep` and
    #: on open.  Generous enough that a live concurrent writer — whose
    #: publish window is milliseconds — is never raced.
    STALE_TMP_SECONDS = 3600.0

    def __init__(self, root: Path, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats: Dict[str, Dict[str, int]] = {}
        self.evictions = 0
        self._reap_stale_tmp()

    # -- keys -----------------------------------------------------------------

    def key(self, *parts: Any) -> str:
        """A cache key from string-able parts + schema + fingerprint."""
        digest = hashlib.sha256()
        digest.update(f"schema={SCHEMA_VERSION}".encode())
        digest.update(b"\x00")
        digest.update(pipeline_fingerprint().encode())
        for part in parts:
            digest.update(b"\x00")
            digest.update(str(part).encode("utf-8"))
        return digest.hexdigest()

    # -- bookkeeping ----------------------------------------------------------

    def _bump(self, layer: str, field: str) -> None:
        self.stats.setdefault(layer, _counter())[field] += 1

    def absorb(self, summary: Dict[str, Any]) -> None:
        """Fold a worker process's :meth:`stats_summary` into this cache.

        ``--jobs`` workers operate on pickled copies of the cache object;
        their hit/miss counters come back with their results and are
        accumulated here so the parent's summary covers the whole run.
        """
        for layer, counts in summary.get("layers", {}).items():
            target = self.stats.setdefault(layer, _counter())
            for field in ("hits", "misses", "stores", "corrupt"):
                target[field] += counts.get(field, 0)
        self.evictions += summary.get("evictions", 0)

    def stats_summary(self) -> Dict[str, Any]:
        summary: Dict[str, Any] = {
            "hits": 0,
            "misses": 0,
            "stores": 0,
            "corrupt": 0,
            "evictions": self.evictions,
            "layers": {},
        }
        for layer, counts in sorted(self.stats.items()):
            summary["layers"][layer] = dict(counts)
            for field in ("hits", "misses", "stores", "corrupt"):
                summary[field] += counts[field]
        return summary

    # -- paths and atomic publication ----------------------------------------

    def _path(self, layer: str, key: str, suffix: str) -> Path:
        # Two-level fan-out keeps directories small under heavy use.
        return self.root / layer / key[:2] / f"{key}{suffix}"

    def _publish(self, writer, destination: Path) -> None:
        """Write via ``writer(tmp_path)`` then atomically rename into place.

        The temp file lives inside the cache root, so the rename never
        crosses a filesystem boundary; racing writers each publish a
        complete file and the last rename wins with identical bytes.

        The temp file is removed on *every* failure: OSErrors (disk full,
        permissions) are swallowed — cache writes are best-effort — while
        anything else (a writer passed a bad payload, KeyboardInterrupt
        mid-write) cleans up and propagates.  Previously only OSError
        cleaned up, so any other exception stranded ``.tmp-*`` files in the
        root forever, invisible to the LRU sweep.
        """
        destination.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, prefix=".tmp-")
        os.close(fd)
        tmp = Path(tmp_name)
        try:
            writer(tmp)
            os.replace(tmp, destination)
        except OSError:
            tmp.unlink(missing_ok=True)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise

    def _reap_stale_tmp(self) -> int:
        """Remove abandoned ``.tmp-*`` files (stranded by a crashed writer
        of an older code version, or a kill signal no handler could catch).
        Fresh temp files may belong to a live concurrent writer and are
        left alone.  Returns the number reaped."""
        cutoff = time.time() - self.STALE_TMP_SECONDS
        reaped = 0
        try:
            candidates = list(self.root.glob(".tmp-*"))
        except OSError:
            return 0
        for path in candidates:
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    reaped += 1
            except OSError:
                continue
        return reaped

    def _quarantine(self, layer: str, path: Path) -> None:
        """A damaged entry is removed so it cannot fail a second reader."""
        self._bump(layer, "corrupt")
        try:
            path.unlink()
        except OSError:
            pass

    # -- JSON payloads --------------------------------------------------------

    def get(self, layer: str, key: str) -> Optional[Any]:
        """The stored payload, or None (miss).  Damage reads as a miss."""
        path = self._path(layer, key, ".json")
        try:
            raw = path.read_bytes()
        except OSError:
            self._bump(layer, "misses")
            return None
        try:
            envelope = json.loads(raw)
            if (
                not isinstance(envelope, dict)
                or envelope.get("schema") != SCHEMA_VERSION
                or "payload" not in envelope
            ):
                raise ValueError("bad cache envelope")
        except (ValueError, UnicodeDecodeError):
            self._quarantine(layer, path)
            self._bump(layer, "misses")
            return None
        self._bump(layer, "hits")
        self._touch(path)
        return envelope["payload"]

    def put(self, layer: str, key: str, payload: Any) -> None:
        envelope = {"schema": SCHEMA_VERSION, "payload": payload}
        # Insertion order is part of the payload (e.g. a dataset entry's
        # assembly grid keeps its build order through the JSON round-trip),
        # so no sort_keys here — canonical sorting is for digests only.
        data = json.dumps(envelope).encode("utf-8")
        self._publish(lambda tmp: tmp.write_bytes(data), self._path(layer, key, ".json"))
        self._bump(layer, "stores")

    # -- binary payloads (linked batch/case executables) ----------------------

    def get_file(self, layer: str, key: str, destination: Path) -> bool:
        """Copy a cached binary to ``destination`` (executable); False = miss."""
        path = self._path(layer, key, ".bin")
        try:
            shutil.copyfile(path, destination)
            os.chmod(destination, 0o755)
        except OSError:
            self._bump(layer, "misses")
            return False
        self._bump(layer, "hits")
        self._touch(path)
        return True

    def put_file(self, layer: str, key: str, source: Path) -> None:
        try:
            self._publish(
                lambda tmp: shutil.copyfile(source, tmp),
                self._path(layer, key, ".bin"),
            )
        except OSError:
            return
        self._bump(layer, "stores")

    # -- eviction -------------------------------------------------------------

    def _touch(self, path: Path) -> None:
        try:
            os.utime(path)
        except OSError:
            pass

    def _entries(self) -> List[Tuple[int, str, int, Path]]:
        """(mtime_ns, path-as-string, size, path) for every stored entry."""
        out: List[Tuple[int, str, int, Path]] = []
        for path in self.root.rglob("*"):
            if not path.is_file() or path.name.startswith(".tmp-"):
                continue
            try:
                stat = path.stat()
            except OSError:
                continue
            out.append((stat.st_mtime_ns, str(path), stat.st_size, path))
        return out

    def total_bytes(self) -> int:
        return sum(size for _, _, size, _ in self._entries())

    def sweep(self, max_bytes: Optional[int] = None) -> int:
        """Evict least-recently-used entries until the store fits the cap.

        Entries are removed oldest-mtime first (hits refresh mtime, making
        this LRU), ties broken by path so the order is deterministic.
        Returns the number of entries evicted.
        """
        cap = self.max_bytes if max_bytes is None else max_bytes
        self._reap_stale_tmp()
        entries = sorted(self._entries())
        total = sum(size for _, _, size, _ in entries)
        evicted = 0
        for _, _, size, path in entries:
            if total <= cap:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
        self.evictions += evicted
        return evicted


def open_cache(
    cache_dir: Optional[object], max_bytes: int = DEFAULT_MAX_BYTES
) -> Optional[EvalCache]:
    """An :class:`EvalCache` at ``cache_dir``, or None when disabled."""
    if cache_dir is None:
        return None
    return EvalCache(Path(os.fspath(cache_dir)), max_bytes=max_bytes)


def describe_stats(summary: Dict[str, Any]) -> str:
    """One human line for the CLI ``cache`` section."""
    layers = ", ".join(
        f"{layer} {counts['hits']}/{counts['hits'] + counts['misses']}"
        for layer, counts in sorted(summary.get("layers", {}).items())
    )
    line = (
        f"{summary.get('hits', 0)} hits, {summary.get('misses', 0)} misses, "
        f"{summary.get('stores', 0)} stores, {summary.get('corrupt', 0)} corrupt, "
        f"{summary.get('evictions', 0)} evicted"
    )
    return f"{line} [{layers}]" if layers else line


def add_cache_arguments(parser) -> None:
    """The shared ``--cache-dir`` / ``--no-cache`` CLI surface."""
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help="content-addressed cache directory for built entries, compiled "
        f"artifacts and verdict memos (default {DEFAULT_CACHE_DIR}/; results "
        "are byte-identical with or without it)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the cache entirely (cold-start every layer)",
    )


def cache_from_args(args) -> Optional[EvalCache]:
    return None if args.no_cache else open_cache(args.cache_dir)


__all__ = [
    "DEFAULT_CACHE_DIR",
    "DEFAULT_MAX_BYTES",
    "EvalCache",
    "SCHEMA_VERSION",
    "add_cache_arguments",
    "cache_from_args",
    "describe_stats",
    "json_digest",
    "merge_stats",
    "normalize_source",
    "open_cache",
    "pipeline_fingerprint",
    "source_digest",
]
