"""Mutation-based pseudo-decompiler with ground-truth labels.

SLaDe's scorer judges *neural* decompilation hypotheses; reproducing that
loop without a model needs candidate sets whose correct verdicts are known
in advance.  This module manufactures them: each candidate is the reference
function pushed through one of three mutation classes —

* **preserving** — semantics-preserving rewrites a correct decompiler might
  legitimately produce: consistent local/parameter renames, commuted
  operands of commutative integer operators, ``for`` → ``while`` loop
  refactors, dead local declarations;
* **breaking** — the classic decompiler failure modes: off-by-one literals,
  wrong operators, dropped casts, flipped signedness, negated conditions,
  dropped statements, zeroed divisors (which trap);
* **invalid** — candidates that do not survive the front end at all:
  truncated source (``parse_error``), ill-typed statements
  (``type_error``), non-constant global initialisers (``compile_error``).

Every candidate's label is **validated at generation time** against the
reference semantics: preserving mutants must match the reference's
observable state on every IO vector (interpreter-checked), breaking
mutants must differ on at least one — under the *same* observability rule
the native scorer uses (globals are only observable when the candidate's
function references them, because unreferenced globals are not emitted
into the assembly).  Mutants whose label cannot be certified are discarded
and resampled, so the scorer's verdicts are testable: any disagreement
between :mod:`repro.eval.score` and these labels is a real bug in the
scoring pipeline, not label noise.
"""

from __future__ import annotations

import copy
import json
import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.compiler.driver import CompileError, lower_for_backend
from repro.eval.dataset import (
    DatasetEntry,
    Observation,
    classify_observations,
    front_end_gate,
    interpreter_observation,
)
from repro.lang import ast_nodes as ast
from repro.lang import ctypes as ct
from repro.lang.lexer import LexError
from repro.lang.parser import ParseError, parse_program
from repro.lang.printer import print_program
from repro.testing.frontend import CaseContext
from repro.testing.reduce import (
    expr_slots,
    get_slot,
    set_slot,
    subexpressions,
    walk_stmt_lists,
)

#: Operators whose operands may be swapped without changing the result
#: (on integer operands; the mutator checks the annotated types).
_COMMUTATIVE = ("+", "*", "&", "|", "^", "==", "!=")

#: op -> wrong op used by the ``swap_op`` breaking mutation.
_WRONG_OP: Dict[str, str] = {
    "+": "-",
    "-": "+",
    "*": "+",
    "<": "<=",
    "<=": "<",
    ">": ">=",
    ">=": ">",
    "==": "!=",
    "!=": "==",
    "&": "|",
    "|": "&",
    "^": "&",
    "<<": ">>",
    ">>": "<<",
}

#: IntType -> the same width with flipped signedness.
_FLIPPED_SIGN: Dict[Tuple[int, bool], ct.IntType] = {
    (t.rank, t.unsigned): t
    for t in (
        ct.CHAR, ct.UCHAR, ct.SHORT, ct.USHORT, ct.INT, ct.UINT, ct.LONG, ct.ULONG
    )
}


@dataclass
class Candidate:
    """One pseudo-decompilation hypothesis with its certified ground truth."""

    text: str
    label: str  # "preserving" | "breaking" | "invalid"
    kind: str  # which mutation produced it
    expected: str  # the exact verdict the scorer must emit
    detail: str = ""


class MutationError(Exception):
    """No certifiable candidate could be produced for a requested label."""


# ---------------------------------------------------------------------------
# AST helpers
# ---------------------------------------------------------------------------


def _has_side_effects(node: ast.Node) -> bool:
    if isinstance(node, (ast.Assignment, ast.Call, ast.PostfixOp)):
        return True
    if isinstance(node, ast.UnaryOp) and node.op in ("++", "--"):
        return True
    for value in vars(node).values():
        if isinstance(value, ast.Node) and _has_side_effects(value):
            return True
        if isinstance(value, list):
            for item in value:
                if isinstance(item, ast.Node) and _has_side_effects(item):
                    return True
    return False


def _walk_nodes(node: ast.Node):
    yield node
    for value in vars(node).values():
        if isinstance(value, ast.Node):
            yield from _walk_nodes(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.Node):
                    yield from _walk_nodes(item)


def _identifiers(node: ast.Node) -> Set[str]:
    return {n.name for n in _walk_nodes(node) if isinstance(n, ast.Identifier)}


def _declared_globals(program: ast.Program) -> Set[str]:
    return {decl.name for decl in program.globals()}


def _observable_globals(program: ast.Program, name: str) -> Set[str]:
    """Globals the compiled candidate's assembly will define.

    The backends only emit ``.comm``/``.data`` objects for globals the
    compiled function references, so the native harness can only observe
    those; label validation must judge breaking mutations through the same
    keyhole or the scorer would (correctly) disagree.
    """
    func = program.function(name)
    if func is None:
        return set()
    return _declared_globals(program) & _identifiers(func)


def _restrict_globals(obs: Observation, keys: Set[str]) -> Observation:
    return Observation(
        obs.status,
        obs.return_value,
        list(obs.arg_values),
        {k: v for k, v in obs.globals.items() if k in keys},
        obs.detail,
    )


def _int_decl_slots(func: ast.FunctionDef) -> List[ast.Declaration]:
    """Local declarations (including for-init) with a plain integer type."""
    decls = [
        stmt
        for stmts in walk_stmt_lists(func)
        for stmt in stmts
        if isinstance(stmt, ast.Declaration) and isinstance(stmt.type, ct.IntType)
    ]
    decls.extend(
        node.init
        for node in _walk_nodes(func)
        if isinstance(node, ast.For)
        and isinstance(node.init, ast.Declaration)
        and isinstance(node.init.type, ct.IntType)
    )
    return decls


# ---------------------------------------------------------------------------
# Preserving mutations.  Each takes (program, func, rng), edits in place and
# returns a short description, or None when inapplicable.
# ---------------------------------------------------------------------------


def _mut_rename(program: ast.Program, func: ast.FunctionDef, rng: random.Random):
    top_level = _declared_globals(program) | {func.name}
    declared = {p.name for p in func.params}
    declared.update(
        stmt.name
        for stmts in walk_stmt_lists(func)
        for stmt in stmts
        if isinstance(stmt, ast.Declaration)
    )
    declared.update(
        node.init.name
        for node in _walk_nodes(func)
        if isinstance(node, ast.For) and isinstance(node.init, ast.Declaration)
    )
    declared -= top_level  # never rename globals: they are observable state
    if not declared:
        return None
    mapping = {name: f"{name}_rn" for name in declared}
    for node in _walk_nodes(func):
        if isinstance(node, ast.Identifier) and node.name in mapping:
            node.name = mapping[node.name]
        elif isinstance(node, ast.Declaration) and node.name in mapping:
            node.name = mapping[node.name]
        elif isinstance(node, ast.Param) and node.name in mapping:
            node.name = mapping[node.name]
    return f"renamed {len(mapping)} locals"


def _mut_commute(program: ast.Program, func: ast.FunctionDef, rng: random.Random):
    sites = [
        node
        for node in _walk_nodes(func)
        if isinstance(node, ast.BinaryOp)
        and node.op in _COMMUTATIVE
        and isinstance(node.left.ctype, ct.IntType)
        and isinstance(node.right.ctype, ct.IntType)
        and not _has_side_effects(node.left)
        and not _has_side_effects(node.right)
    ]
    if not sites:
        return None
    site = rng.choice(sites)
    site.left, site.right = site.right, site.left
    return f"commuted operands of {site.op!r}"


def _mut_for_to_while(program: ast.Program, func: ast.FunctionDef, rng: random.Random):
    sites = []
    for stmts in walk_stmt_lists(func):
        for index, stmt in enumerate(stmts):
            if (
                isinstance(stmt, ast.For)
                and stmt.cond is not None
                and stmt.step is not None
                and not any(
                    isinstance(n, ast.Continue) for n in _walk_nodes(stmt.body)
                )
            ):
                sites.append((stmts, index))
    if not sites:
        return None
    stmts, index = rng.choice(sites)
    loop = stmts[index]
    body_stmts = (
        list(loop.body.stmts) if isinstance(loop.body, ast.Block) else [loop.body]
    )
    new_body = ast.Block(body_stmts + [ast.ExprStmt(loop.step)])
    replacement: List[ast.Stmt] = []
    if loop.init is not None:
        replacement.append(
            loop.init if isinstance(loop.init, ast.Stmt) else ast.ExprStmt(loop.init)
        )
    replacement.append(ast.While(loop.cond, new_body))
    stmts[index : index + 1] = [ast.Block(replacement)]
    return "rewrote for loop as while"


def _mut_dead_decl(program: ast.Program, func: ast.FunctionDef, rng: random.Random):
    name = f"__dead{rng.randint(0, 999)}"
    decl = ast.Declaration(name, ct.LONG, ast.IntLiteral(rng.randint(0, 99)))
    body = func.body
    assert body is not None
    position = rng.randint(0, max(0, len(body.stmts) - 1))
    body.stmts.insert(position, decl)
    return f"inserted dead local {name}"


# ---------------------------------------------------------------------------
# Breaking mutations
# ---------------------------------------------------------------------------


def _mut_bump_literal(program: ast.Program, func: ast.FunctionDef, rng: random.Random):
    slots = [
        (parent, attr, index)
        for parent, attr, index in expr_slots(func)
        if isinstance(get_slot(parent, attr, index), ast.IntLiteral)
    ]
    if not slots:
        return None
    parent, attr, index = rng.choice(slots)
    literal = get_slot(parent, attr, index)
    delta = rng.choice((1, -1))
    set_slot(parent, attr, index, ast.IntLiteral(literal.value + delta))
    return f"literal {literal.value} -> {literal.value + delta}"


def _mut_swap_op(program: ast.Program, func: ast.FunctionDef, rng: random.Random):
    sites = [
        node
        for node in _walk_nodes(func)
        if isinstance(node, ast.BinaryOp) and node.op in _WRONG_OP
    ]
    if not sites:
        return None
    site = rng.choice(sites)
    old = site.op
    site.op = _WRONG_OP[old]
    return f"operator {old!r} -> {site.op!r}"


def _mut_drop_cast(program: ast.Program, func: ast.FunctionDef, rng: random.Random):
    slots = [
        (parent, attr, index)
        for parent, attr, index in expr_slots(func)
        if isinstance(get_slot(parent, attr, index), ast.Cast)
    ]
    if not slots:
        return None
    parent, attr, index = rng.choice(slots)
    cast = get_slot(parent, attr, index)
    set_slot(parent, attr, index, cast.operand)
    return f"dropped cast to {cast.target_type}"


def _mut_flip_signedness(
    program: ast.Program, func: ast.FunctionDef, rng: random.Random
):
    decls = _int_decl_slots(func)
    casts = [
        node
        for node in _walk_nodes(func)
        if isinstance(node, ast.Cast) and isinstance(node.target_type, ct.IntType)
    ]
    sites: List = decls + casts
    if not sites:
        return None
    site = rng.choice(sites)
    if isinstance(site, ast.Declaration):
        flipped = _FLIPPED_SIGN[(site.type.rank, not site.type.unsigned)]
        site.type = flipped
        return f"local {site.name} signedness -> {flipped}"
    flipped = _FLIPPED_SIGN[(site.target_type.rank, not site.target_type.unsigned)]
    site.target_type = flipped
    return f"cast signedness -> {flipped}"


def _mut_negate_condition(
    program: ast.Program, func: ast.FunctionDef, rng: random.Random
):
    sites = [
        node
        for node in _walk_nodes(func)
        if isinstance(node, (ast.If, ast.While, ast.DoWhile))
        or (isinstance(node, ast.For) and node.cond is not None)
    ]
    if not sites:
        return None
    site = rng.choice(sites)
    site.cond = ast.UnaryOp("!", site.cond)
    return f"negated {type(site).__name__} condition"


def _mut_drop_stmt(program: ast.Program, func: ast.FunctionDef, rng: random.Random):
    sites = []
    for stmts in walk_stmt_lists(func):
        for index, stmt in enumerate(stmts):
            # Dropping a declaration would orphan later uses (a type error,
            # not a semantic break); dropping the return changes the shape.
            if not isinstance(stmt, (ast.Return, ast.Declaration)):
                sites.append((stmts, index))
    if not sites:
        return None
    stmts, index = rng.choice(sites)
    dropped = stmts[index]
    del stmts[index]
    return f"dropped a {type(dropped).__name__}"


def _mut_bump_return(program: ast.Program, func: ast.FunctionDef, rng: random.Random):
    sites = [
        node
        for node in _walk_nodes(func)
        if isinstance(node, ast.Return) and node.value is not None
    ]
    if not sites:
        return None
    site = rng.choice(sites)
    site.value = ast.BinaryOp("+", site.value, ast.IntLiteral(1))
    return "offset the returned value by one"


def _mut_zero_divisor(program: ast.Program, func: ast.FunctionDef, rng: random.Random):
    sites: List = [
        node
        for node in _walk_nodes(func)
        if isinstance(node, ast.BinaryOp) and node.op in ("/", "%")
    ]
    sites.extend(
        node
        for node in _walk_nodes(func)
        if isinstance(node, ast.Assignment) and node.op in ("/=", "%=")
    )
    if not sites:
        return None
    site = rng.choice(sites)
    if isinstance(site, ast.BinaryOp):
        site.right = ast.IntLiteral(0)
    else:
        site.value = ast.IntLiteral(0)
    return "zeroed a divisor"


# ---------------------------------------------------------------------------
# Invalid mutations (operate on source text / whole program)
# ---------------------------------------------------------------------------


def _invalid_parse(source: str, rng: random.Random) -> Tuple[str, str]:
    if rng.random() < 0.5:
        brace = source.rfind("}")
        return source[:brace] + source[brace + 1 :], "truncated closing brace"
    brace = source.find("{")
    return source[: brace + 1] + "\n    @@@\n" + source[brace + 1 :], "garbage token"


def _invalid_type(
    program: ast.Program, func: ast.FunctionDef, rng: random.Random
) -> str:
    assert func.body is not None
    if rng.random() < 0.5:
        # Dereferencing an integer literal is a hard type error.
        func.body.stmts.insert(0, ast.ExprStmt(ast.UnaryOp("*", ast.IntLiteral(1))))
        return "deref of non-pointer"
    # An undefined identifier leaves the checker's missing-set non-empty.
    func.body.stmts.insert(
        0,
        ast.ExprStmt(
            ast.Assignment("=", ast.Identifier("__undefined_sym"), ast.IntLiteral(1))
        ),
    )
    return "undefined identifier"


def _invalid_compile(program: ast.Program, rng: random.Random) -> str:
    # A global initialised from another global parses and type-checks but is
    # rejected by the backend driver's constant evaluator.
    program.decls.insert(0, ast.Declaration("__nc_seed", ct.INT, ast.IntLiteral(1)))
    program.decls.insert(
        1,
        ast.Declaration(
            "__nc",
            ct.INT,
            ast.BinaryOp("+", ast.Identifier("__nc_seed"), ast.IntLiteral(1)),
        ),
    )
    return "non-constant global initialiser"


_PRESERVING: List[Tuple[str, Callable]] = [
    ("rename", _mut_rename),
    ("commute", _mut_commute),
    ("for_to_while", _mut_for_to_while),
    ("dead_decl", _mut_dead_decl),
]

_BREAKING: List[Tuple[str, Callable]] = [
    ("bump_literal", _mut_bump_literal),
    ("swap_op", _mut_swap_op),
    ("drop_cast", _mut_drop_cast),
    ("flip_signedness", _mut_flip_signedness),
    ("negate_condition", _mut_negate_condition),
    ("drop_stmt", _mut_drop_stmt),
    ("zero_divisor", _mut_zero_divisor),
    ("bump_return", _mut_bump_return),
]

_INVALID_KINDS = ("parse_break", "type_break", "compile_break")


# ---------------------------------------------------------------------------
# Label validation
# ---------------------------------------------------------------------------


def _front_end(source: str, name: str):
    """(program, checker) when the candidate survives parse + typecheck,
    else the verdict string it dies with (the scorer's own gate)."""
    gate = front_end_gate(source, name)
    if isinstance(gate[0], str):
        return gate[0]
    return gate


def _compiles(program: ast.Program, name: str, checker) -> bool:
    try:
        lower_for_backend(program, name=name, opt_level="O0", checker=checker)
    except CompileError:
        return False
    return True


def _certify_executable(
    source: str, entry: DatasetEntry, label: str, allow_traps: bool = True
) -> Optional[Tuple[str, str]]:
    """(expected_verdict, detail) for a preserving/breaking mutant, or None
    when the label cannot be certified and the mutant must be discarded.

    ``allow_traps=False`` rejects breaking mutants whose certified verdict
    is ``trap``: the interpreter's trap semantics (division by zero faults)
    match x86 hardware, but AArch64 defines integer division by zero to
    return 0, so trap ground truth does not transfer to the arm backend.
    """
    front = _front_end(source, entry.name)
    if isinstance(front, str):
        return None  # the rewrite must survive the front end to carry a label
    program, checker = front
    if not _compiles(program, entry.name, checker):
        return None
    context = CaseContext(source, entry.name, program=program, checker=checker)
    observations: List[Observation] = []
    for args in entry.inputs:
        obs = interpreter_observation(context, args)
        if obs.status == "limit":
            return None  # e.g. a dropped decrement made the loop infinite
        observations.append(obs)

    if label == "preserving":
        # Strict: equal on every observable under full observability (the
        # mutations never touch global declarations, so both sides report
        # the same global set and nothing is skipped as unobservable).
        verdict, _ = classify_observations(entry.reference, observations)
        if verdict != "io_equivalent":
            return None
        return "io_equivalent", ""

    # Breaking: the difference must be visible through the native keyhole
    # (return value, pointer arguments, globals the candidate references).
    visible = _observable_globals(program, entry.name)
    restricted = [_restrict_globals(obs, visible) for obs in observations]
    verdict, detail = classify_observations(entry.reference, restricted)
    allowed = ("trap", "io_mismatch") if allow_traps else ("io_mismatch",)
    if verdict not in allowed:
        return None
    return verdict, detail


def _certify_invalid(source: str, entry: DatasetEntry, kind: str) -> Optional[str]:
    front = _front_end(source, entry.name)
    if kind == "parse_break":
        return "parse_error" if front == "parse_error" else None
    if kind == "type_break":
        return "type_error" if front == "type_error" else None
    if isinstance(front, str):
        return None
    program, checker = front
    if _compiles(program, entry.name, checker):
        return None
    return "compile_error"


# ---------------------------------------------------------------------------
# The candidate factory
# ---------------------------------------------------------------------------


class Mutator:
    """Deterministic candidate-set factory (one instance per seed)."""

    #: Resampling budget per requested candidate before giving up.
    MAX_ATTEMPTS = 40

    def __init__(self, seed: int, allow_trap_labels: bool = True) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        #: False when candidates will be scored on a substrate whose trap
        #: behaviour differs from the certifying interpreter's (AArch64
        #: returns 0 on integer division by zero instead of faulting).
        self.allow_trap_labels = allow_trap_labels

    def _mutation_source(self, entry: DatasetEntry) -> ast.Program:
        """The annotated reference AST mutations are applied to (copies of).

        The entry's context has already parsed and type-checked the
        reference, so expression nodes carry their checked ``ctype`` —
        which the commutation mutation uses to stay off pointer arithmetic.
        Entries loaded from a dataset file or the entry cache carry no
        context; re-front-ending the source reproduces it exactly.
        """
        if entry.context is None:
            entry.context = CaseContext(entry.source, entry.name)
        return entry.context.program

    def _one(self, entry: DatasetEntry, label: str) -> Candidate:
        reference = self._mutation_source(entry)
        for _ in range(self.MAX_ATTEMPTS):
            if label == "invalid":
                kind = self.rng.choice(_INVALID_KINDS)
                program = copy.deepcopy(reference)
                func = program.function(entry.name)
                assert func is not None
                if kind == "parse_break":
                    text, detail = _invalid_parse(entry.source, self.rng)
                elif kind == "type_break":
                    detail = _invalid_type(program, func, self.rng)
                    text = print_program(program)
                else:
                    detail = _invalid_compile(program, self.rng)
                    text = print_program(program)
                expected = _certify_invalid(text, entry, kind)
                if expected is None:
                    continue
                return Candidate(text, label, kind, expected, detail)

            kinds = _PRESERVING if label == "preserving" else _BREAKING
            kind, mutation = self.rng.choice(kinds)
            program = copy.deepcopy(reference)
            func = program.function(entry.name)
            assert func is not None
            detail = mutation(program, func, self.rng)
            if detail is None:
                continue
            text = print_program(program)
            if text == entry.source:
                continue
            certified = _certify_executable(
                text, entry, label, allow_traps=self.allow_trap_labels
            )
            if certified is None:
                continue
            expected, certify_detail = certified
            return Candidate(text, label, kind, expected, detail or certify_detail)
        raise MutationError(
            f"could not certify a {label!r} candidate for {entry.uid} "
            f"within {self.MAX_ATTEMPTS} attempts"
        )

    def _candidate_key(self, cache, entry: DatasetEntry, count: int) -> str:
        """Content address of one certified candidate set.

        The raw source text is part of the key (not the normalized token
        stream): ``parse_break`` candidates are produced by slicing the
        reference *text*, so formatting is observable in the output.
        """
        return cache.key(
            "candidates",
            entry.source,
            entry.name,
            json.dumps([list(args) for args in entry.inputs]),
            str(self.seed),
            str(count),
            str(self.allow_trap_labels),
        )

    def candidates(
        self, entry: DatasetEntry, count: int, cache=None
    ) -> List[Candidate]:
        """``count`` labelled candidates for one dataset entry.

        The mix is random but anchored: any set of three or more always
        contains at least one preserving and one breaking candidate (so
        top-k accuracy and verdict pins are meaningful for every function).

        Certification is the expensive step (each mutant is interpreted on
        every IO vector, with resampling); with ``cache`` the finished set
        is stored content-addressed and warm runs skip it entirely.
        """
        key = None
        if cache is not None:
            key = self._candidate_key(cache, entry, count)
            cached = cache.get("candidates", key)
            if cached is not None:
                return [Candidate(**data) for data in cached]
        labels: List[str] = []
        if count >= 3:
            labels = ["preserving", "breaking"]
        while len(labels) < count:
            roll = self.rng.random()
            if roll < 0.40:
                labels.append("preserving")
            elif roll < 0.80:
                labels.append("breaking")
            else:
                labels.append("invalid")
        self.rng.shuffle(labels)
        produced = [self._one(entry, label) for label in labels[:count]]
        if cache is not None and key is not None:
            cache.put("candidates", key, [vars(candidate) for candidate in produced])
        return produced


def make_candidates(
    entry: DatasetEntry, count: int, seed: int, cache=None
) -> List[Candidate]:
    """Convenience wrapper: a deterministic candidate set for one entry."""
    return Mutator(seed).candidates(entry, count, cache=cache)


# ---------------------------------------------------------------------------
# Repair neighborhoods: the breaking-mutation inventory, run in reverse
# ---------------------------------------------------------------------------

#: Integer types the ``cast_insert`` repair family wraps expressions in
#: (the inverse of the ``drop_cast`` breaking mutation).
_CAST_TYPES: Tuple[ct.IntType, ...] = (
    ct.CHAR, ct.UCHAR, ct.SHORT, ct.USHORT, ct.INT, ct.UINT, ct.LONG, ct.ULONG
)


def _op_alternatives(op: str) -> List[str]:
    """Replacement operators for ``op``, inverse direction first.

    The inverse image of :data:`_WRONG_OP` undoes a ``swap_op`` mutation
    exactly (the candidate holds the *wrong* operator, so mapping it back
    recovers the reference's); the forward image rides along because the
    search cannot know which direction a break went.  The order is fixed
    and RNG-free so the repair stream is reproducible.
    """
    alternatives: List[str] = []
    for alt in sorted(k for k, v in _WRONG_OP.items() if v == op):
        if alt != op and alt not in alternatives:
            alternatives.append(alt)
    forward = _WRONG_OP.get(op)
    if forward is not None and forward != op and forward not in alternatives:
        alternatives.append(forward)
    return alternatives


def _binop_sites(func: ast.FunctionDef) -> List[ast.BinaryOp]:
    return [n for n in _walk_nodes(func) if isinstance(n, ast.BinaryOp)]


def _literal_slots(func: ast.FunctionDef) -> List[Tuple[ast.Node, str, Optional[int]]]:
    return [
        (parent, attr, index)
        for parent, attr, index in expr_slots(func)
        if isinstance(get_slot(parent, attr, index), ast.IntLiteral)
    ]


def _sign_sites(func: ast.FunctionDef) -> List:
    return _int_decl_slots(func) + [
        n
        for n in _walk_nodes(func)
        if isinstance(n, ast.Cast) and isinstance(n.target_type, ct.IntType)
    ]


def _conditional_sites(func: ast.FunctionDef) -> List:
    return [
        n
        for n in _walk_nodes(func)
        if isinstance(n, (ast.If, ast.While, ast.DoWhile))
        or (isinstance(n, ast.For) and n.cond is not None)
    ]


def repair_neighbors(source: str, name: str) -> Iterator[Tuple[str, str]]:
    """Deterministic ``(kind, text)`` repair-edit stream for a near-miss.

    Each yielded text is ``source`` with one AST edit applied — the
    breaking-mutation inventory run *in reverse* (operator un-swaps,
    literal nudges, signedness flips, condition un-negations, cast
    insertion) plus reducer-style simplifications (expression collapse,
    statement drops).  Families are ordered so the exact inverses of the
    common single-edit breaks come first and the speculative wide families
    (``cast_insert``: every expression slot x every integer type) come
    last.

    The stream carries no RNG and its order depends only on ``source``:
    the beam search persists a cursor into it and reproduces the exact
    continuation on ``--resume``.  It is lazy — one AST deep copy per
    *consumed* neighbor.  Sources that do not parse or do not define
    ``name`` yield nothing (``parse_error`` candidates cannot be repaired
    by AST edits).
    """
    try:
        base = parse_program(source)
    except (ParseError, LexError, RecursionError):
        return
    func = base.function(name)
    if func is None:
        return

    edits: List[Tuple[str, Callable[[ast.FunctionDef], None]]] = []

    # 1. op_swap: undoes the swap_op mutation (inverse direction first).
    for index, node in enumerate(_binop_sites(func)):
        for alt in _op_alternatives(node.op):
            edits.append(
                ("op_swap", lambda f, i=index, a=alt: setattr(_binop_sites(f)[i], "op", a))
            )

    # 2. literal_nudge: undoes bump_literal (and half of zero_divisor).
    def _nudge(f: ast.FunctionDef, i: int, d: int) -> None:
        parent, attr, index = _literal_slots(f)[i]
        literal = get_slot(parent, attr, index)
        set_slot(parent, attr, index, ast.IntLiteral(literal.value + d))

    for index in range(len(_literal_slots(func))):
        for delta in (1, -1):
            edits.append(("literal_nudge", lambda f, i=index, d=delta: _nudge(f, i, d)))

    # 3. sign_flip: undoes flip_signedness (an involution).
    def _flip_sign(f: ast.FunctionDef, i: int) -> None:
        site = _sign_sites(f)[i]
        if isinstance(site, ast.Declaration):
            site.type = _FLIPPED_SIGN[(site.type.rank, not site.type.unsigned)]
        else:
            site.target_type = _FLIPPED_SIGN[
                (site.target_type.rank, not site.target_type.unsigned)
            ]

    for index in range(len(_sign_sites(func))):
        edits.append(("sign_flip", lambda f, i=index: _flip_sign(f, i)))

    # 4. condition_flip: unwraps a ``!`` (undoing negate_condition) or
    #    wraps one (the forward direction, for symmetric coverage).
    def _flip_cond(f: ast.FunctionDef, i: int) -> None:
        site = _conditional_sites(f)[i]
        if isinstance(site.cond, ast.UnaryOp) and site.cond.op == "!":
            site.cond = site.cond.operand
        else:
            site.cond = ast.UnaryOp("!", site.cond)

    for index in range(len(_conditional_sites(func))):
        edits.append(("condition_flip", lambda f, i=index: _flip_cond(f, i)))

    # 5. collapse: replace an expression by one of its direct children
    #    (the reducer's move; undoes wrapper breaks such as bump_return).
    def _collapse(f: ast.FunctionDef, slot: int, child: int) -> None:
        parent, attr, index = list(expr_slots(f))[slot]
        set_slot(parent, attr, index, subexpressions(get_slot(parent, attr, index))[child])

    for slot_index, (parent, attr, index) in enumerate(expr_slots(func)):
        for child_index in range(len(subexpressions(get_slot(parent, attr, index)))):
            edits.append(
                ("collapse", lambda f, s=slot_index, c=child_index: _collapse(f, s, c))
            )

    # 6. stmt_drop: repairs candidates whose break *added* a statement
    #    (and type_error candidates carrying one injected bad statement).
    def _drop_stmt(f: ast.FunctionDef, list_index: int, stmt_index: int) -> None:
        del list(walk_stmt_lists(f))[list_index][stmt_index]

    for list_index, stmts in enumerate(walk_stmt_lists(func)):
        for stmt_index in range(len(stmts)):
            edits.append(
                (
                    "stmt_drop",
                    lambda f, li=list_index, si=stmt_index: _drop_stmt(f, li, si),
                )
            )

    # 7. cast_insert: the wide family (every expression slot x every
    #    integer type), last so cheaper exact inverses are tried first.
    def _insert_cast(f: ast.FunctionDef, slot: int, ctype: ct.IntType) -> None:
        parent, attr, index = list(expr_slots(f))[slot]
        set_slot(parent, attr, index, ast.Cast(ctype, get_slot(parent, attr, index)))

    for slot_index in range(len(list(expr_slots(func)))):
        for ctype in _CAST_TYPES:
            edits.append(
                ("cast_insert", lambda f, s=slot_index, t=ctype: _insert_cast(f, s, t))
            )

    for kind, edit in edits:
        program = copy.deepcopy(base)
        edited = program.function(name)
        assert edited is not None
        try:
            edit(edited)
        except Exception:
            continue
        text = print_program(program)
        if text != source:
            yield kind, text
