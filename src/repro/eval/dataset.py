"""Dataset builder for decompilation-hypothesis scoring.

This module plays the role ExeBench plays for SLaDe: it materialises
(assembly, reference C, IO-vector) triples the candidate scorer evaluates
against.  Every :class:`DatasetEntry` bundles

* the **reference C** source and entry-point name (ground truth);
* its compiled **assembly** for every requested (ISA, opt level) — the
  artefact a real decompiler would be prompted with;
* the **IO vectors**: argument tuples plus the reference's observable
  state on each of them (return value, final pointer-argument contents,
  final globals), produced by the interpreter — the paper's notion of the
  function's input/output behaviour.

Entries come from two sources: the seeded program generator
(:mod:`repro.testing.generator`), which supplies unlimited fixed-seed
functions, and the hand-written test corpus (``tests/corpus.py``) when it
is available on disk.

Datasets round-trip through JSON (``--output`` / ``--input``): a file
written by one run can be loaded by a later one — or by the scorer — and
produces byte-identical downstream reports, because every observable field
(source, inputs, assembly grid, reference observations) survives the trip.
Built entries are also cached content-addressed (``--cache-dir`` /
``--no-cache``, see :mod:`repro.eval.cache`), so warm runs load triples
instead of regenerating and recompiling them.

CLI::

    python -m repro.eval.dataset --seed 0 --count 10 --output dataset.json
    python -m repro.eval.dataset --input dataset.json --output copy.json
    python -m repro.eval.dataset --seed 0 --count 50 --include-corpus \\
        --isas x86,arm --opt-levels O0,O3
"""

from __future__ import annotations

import argparse
import importlib.util
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.eval.cache import add_cache_arguments, cache_from_args, describe_stats
from repro.lang.interpreter import CInterpreterError, RuntimeLimitExceeded
from repro.lang.lexer import LexError
from repro.lang.parser import ParseError, parse_program
from repro.lang.typecheck import TypeChecker
from repro.testing.frontend import CaseContext
from repro.testing.fuzz import case_seed
from repro.testing.generator import ProgramGenerator
from repro.testing.oracle import values_equal

#: The (ISA, opt level) grid a dataset entry is compiled across by default.
DEFAULT_ISAS: Tuple[str, ...] = ("x86", "arm")
DEFAULT_OPT_LEVELS: Tuple[str, ...] = ("O0", "O3")

#: Scorer verdict classes, worst to best.  ``classify_observations`` returns
#: one of the last three; the front-end gate produces the first three.
VERDICTS: Tuple[str, ...] = (
    "parse_error",
    "type_error",
    "compile_error",
    "trap",
    "io_mismatch",
    "io_equivalent",
)


@dataclass
class Observation:
    """Observable state of one execution of one input vector.

    ``status`` is ``"ok"``, ``"trap"`` (runtime fault: division by zero,
    SIGFPE, non-zero exit) or ``"limit"`` (step budget / wall-clock
    exhaustion).  The value fields are only meaningful when ``status`` is
    ``"ok"``.
    """

    status: str
    return_value: Any = None
    arg_values: List[Any] = field(default_factory=list)
    globals: Dict[str, Any] = field(default_factory=dict)
    detail: str = ""

    def to_json(self) -> Dict[str, Any]:
        return {
            "status": self.status,
            "return_value": self.return_value,
            "arg_values": self.arg_values,
            "globals": self.globals,
        }


@dataclass
class DatasetEntry:
    """One (assembly, reference C, IO-vector) triple."""

    uid: str
    origin: str  # "generated" | "corpus"
    name: str
    source: str
    inputs: List[Tuple]
    assembly: Dict[str, str]  # "<isa>-<opt>" -> assembly text
    reference: List[Observation]  # one per input vector
    seed: Optional[int] = None
    context: Optional[CaseContext] = field(default=None, repr=False, compare=False)

    def to_json(self) -> Dict[str, Any]:
        return {
            "uid": self.uid,
            "origin": self.origin,
            "name": self.name,
            "seed": self.seed,
            "source": self.source,
            "inputs": [list(vector) for vector in self.inputs],
            "assembly": dict(self.assembly),
            "reference": [obs.to_json() for obs in self.reference],
        }


class DatasetError(Exception):
    """A reference function could not be materialised (it is supposed to be
    ground truth: it must compile everywhere and execute cleanly)."""


def front_end_gate(source: str, name: str):
    """Run parse -> typecheck on a candidate: the single source of truth
    for front-end verdicts.

    Returns ``(verdict, detail)`` — both strings — when the candidate dies
    in the front end, else ``(program, checker)``.  Both the scorer and the
    mutation certifier judge candidates through this one gate, so their
    notions of ``parse_error``/``type_error`` cannot drift apart.
    """
    try:
        program = parse_program(source)
    except (ParseError, LexError, RecursionError) as exc:
        return "parse_error", f"{type(exc).__name__}: {exc}"
    if program.function(name) is None:
        return "type_error", f"candidate does not define {name!r}"
    checker = TypeChecker(program)
    result = checker.check()
    if result.errors or not result.missing.is_empty():
        detail = result.errors[0] if result.errors else "unresolved symbols"
        return "type_error", str(detail)
    return program, checker


def interpreter_observation(context: CaseContext, args: Tuple) -> Observation:
    """Run the interpreter on one input vector and record what it observed."""
    try:
        result = context.interpreter().run_function(context.name, args)
    except RuntimeLimitExceeded as exc:
        return Observation("limit", detail=str(exc))
    except CInterpreterError as exc:
        return Observation("trap", detail=str(exc))
    return Observation(
        "ok", result.return_value, list(result.arg_values), dict(result.globals)
    )


def observation_diff(
    index: int, ref: Observation, cand: Observation
) -> Optional[Tuple[str, str]]:
    """The per-input divergence between one reference/candidate pair.

    Returns ``None`` when the two observations agree under the oracle's
    IO-equivalence notion, else ``(category, detail)`` with ``category``
    one of ``"trap"`` (the candidate faults or exhausts its budget where
    the reference does not) or ``"mismatch"`` (both finish but an
    observable value differs, or the reference traps and the candidate
    does not).  The repair search scores candidates by the *fraction* of
    inputs whose diff is ``None`` — a finer signal than the verdict alone.
    """
    if cand.status == "limit":
        return "trap", f"input #{index}: resource limit ({cand.detail})"
    if cand.status == "trap" and ref.status != "trap":
        return "trap", f"input #{index}: {cand.detail or 'runtime trap'}"
    if cand.status == "ok" and ref.status == "trap":
        return "mismatch", f"input #{index}: reference traps, candidate does not"
    if cand.status == "ok" and ref.status == "ok":
        field_name = _first_value_mismatch(ref, cand)
        if field_name is not None:
            return "mismatch", f"input #{index}: {field_name} differs"
    return None


def classify_with_diffs(
    reference: Sequence[Observation], candidate: Sequence[Observation]
) -> Tuple[str, str, List[Optional[Tuple[str, str]]]]:
    """(verdict, detail, per-input diffs) — see :func:`classify_observations`.

    The diff list has one entry per compared input (``None`` = agreement);
    the verdict and detail are exactly what :func:`classify_observations`
    returns: a trap anywhere takes precedence over a value mismatch, and
    the detail names the first input exhibiting the winning category.
    """
    diffs: List[Optional[Tuple[str, str]]] = [
        observation_diff(index, ref, cand)
        for index, (ref, cand) in enumerate(zip(reference, candidate))
    ]
    trap_detail = next(
        (detail for diff in diffs if diff is not None
         for category, detail in (diff,) if category == "trap"),
        None,
    )
    mismatch_detail = next(
        (detail for diff in diffs if diff is not None
         for category, detail in (diff,) if category == "mismatch"),
        None,
    )
    if trap_detail is not None:
        return "trap", trap_detail, diffs
    if mismatch_detail is not None:
        return "io_mismatch", mismatch_detail, diffs
    return "io_equivalent", "", diffs


def classify_observations(
    reference: Sequence[Observation], candidate: Sequence[Observation]
) -> Tuple[str, str]:
    """(verdict, detail) for a candidate's observations vs the reference's.

    The comparison is the oracle's IO-equivalence notion: status (a trap is
    an observation both sides must share), return value, final pointer
    arguments, and final globals over the keys **both** sides report (the
    native harness only observes globals that appear in the assembly).  A
    trap anywhere takes precedence over a value mismatch; a resource limit
    counts as a trap (a candidate that cannot finish within budget is not
    IO-equivalent in any usable sense).
    """
    verdict, detail, _ = classify_with_diffs(reference, candidate)
    return verdict, detail


def _first_value_mismatch(ref: Observation, cand: Observation) -> Optional[str]:
    if ref.return_value is not None and not values_equal(
        ref.return_value, cand.return_value
    ):
        return "return_value"
    if not values_equal(ref.arg_values, cand.arg_values):
        return "arg_values"
    for key in sorted(ref.globals.keys() & cand.globals.keys()):
        if not values_equal(ref.globals[key], cand.globals[key]):
            return f"globals[{key}]"
    return None


def entry_from_json(data: Dict[str, Any]) -> DatasetEntry:
    """Rebuild a :class:`DatasetEntry` from its :meth:`~DatasetEntry.to_json`.

    The entry carries no :class:`CaseContext` (nothing downstream of the
    dataset reads it — the scorer builds contexts for *candidates*), and
    every observable field survives the JSON trip, so scoring a loaded
    entry is byte-identical to scoring the freshly built one.
    """
    return DatasetEntry(
        uid=data["uid"],
        origin=data["origin"],
        name=data["name"],
        source=data["source"],
        inputs=[tuple(args) for args in data["inputs"]],
        assembly=dict(data["assembly"]),
        reference=[
            Observation(
                obs["status"],
                obs["return_value"],
                list(obs["arg_values"]),
                dict(obs["globals"]),
            )
            for obs in data["reference"]
        ],
        seed=data.get("seed"),
    )


def dataset_from_json(document: Dict[str, Any]) -> List[DatasetEntry]:
    if document.get("schema") != 1:
        raise DatasetError(f"unsupported dataset schema {document.get('schema')!r}")
    return [entry_from_json(data) for data in document["entries"]]


def load_dataset(path) -> List[DatasetEntry]:
    """Entries from a ``--output`` file written by this module's CLI."""
    with open(path) as handle:
        return dataset_from_json(json.load(handle))


def _entry_cache_key(
    cache,
    source: str,
    name: str,
    inputs: Sequence[Tuple],
    isas: Sequence[str],
    opt_levels: Sequence[str],
) -> str:
    from repro.eval.cache import source_digest

    return cache.key(
        "entry",
        source_digest(source),
        name,
        json.dumps([list(args) for args in inputs]),
        ",".join(isas),
        ",".join(opt_levels),
    )


def build_entry(
    source: str,
    name: str,
    inputs: Sequence[Tuple],
    uid: str,
    origin: str,
    seed: Optional[int] = None,
    isas: Sequence[str] = DEFAULT_ISAS,
    opt_levels: Sequence[str] = DEFAULT_OPT_LEVELS,
    program=None,
    checker=None,
    cache=None,
) -> DatasetEntry:
    """Materialise one triple: compile the grid, record the IO vectors.

    With ``cache`` (an :class:`repro.eval.cache.EvalCache`) the built
    entry is stored content-addressed — keyed by the normalized source
    token stream, the requested grid and the pipeline fingerprint — and a
    later call with the same inputs loads it instead of compiling and
    interpreting again.  ``uid``/``origin``/``seed`` are caller metadata
    and always come from the current call, not the cache.
    """
    key = None
    if cache is not None:
        key = _entry_cache_key(cache, source, name, inputs, isas, opt_levels)
        cached = cache.get("entry", key)
        if cached is not None:
            entry = entry_from_json(cached)
            entry.uid = uid
            entry.origin = origin
            entry.seed = seed
            return entry
    try:
        context = CaseContext(source, name, program=program, checker=checker)
        assembly = {
            f"{isa}-{opt}": context.assembly(isa, opt)
            for isa in isas
            for opt in opt_levels
        }
    except Exception as exc:
        raise DatasetError(f"reference {uid} does not compile: {exc}") from exc
    reference = [interpreter_observation(context, tuple(args)) for args in inputs]
    for index, obs in enumerate(reference):
        if obs.status == "limit":
            raise DatasetError(
                f"reference {uid} exhausts the step budget on input #{index}"
            )
    entry = DatasetEntry(
        uid=uid,
        origin=origin,
        name=name,
        source=source,
        inputs=[tuple(args) for args in inputs],
        assembly=assembly,
        reference=reference,
        seed=seed,
        context=context,
    )
    if cache is not None and key is not None:
        cache.put("entry", key, entry.to_json())
    return entry


def generated_entries(
    seed: int,
    count: int,
    max_stmts: int = 10,
    isas: Sequence[str] = DEFAULT_ISAS,
    opt_levels: Sequence[str] = DEFAULT_OPT_LEVELS,
    cache=None,
) -> List[DatasetEntry]:
    """``count`` fixed-seed generator functions, ExeBench-style."""
    entries: List[DatasetEntry] = []
    for index in range(count):
        entry_seed = case_seed(seed, index)
        case = ProgramGenerator(entry_seed, max_stmts=max_stmts).generate()
        entries.append(
            build_entry(
                case.source,
                case.name,
                case.inputs,
                uid=f"gen-{seed}-{index}",
                origin="generated",
                seed=entry_seed,
                isas=isas,
                opt_levels=opt_levels,
                program=case.program,
                checker=case.checker,
                cache=cache,
            )
        )
    return entries


def load_corpus(path: Optional[Path] = None) -> List[Tuple[str, str, List[Tuple]]]:
    """The hand-written test corpus as (source, name, inputs) triples.

    The corpus lives in the test tree (``tests/corpus.py``); when the
    package is used outside a checkout the file may be absent, in which
    case an empty list is returned.
    """
    if path is None:
        path = Path(__file__).resolve().parents[3] / "tests" / "corpus.py"
    if not path.is_file():
        return []
    spec = importlib.util.spec_from_file_location("repro_eval_corpus", path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return [(source, name, list(inputs)) for source, name, inputs in module.CORPUS]


def corpus_entries(
    corpus: Optional[Sequence[Tuple[str, str, List[Tuple]]]] = None,
    isas: Sequence[str] = DEFAULT_ISAS,
    opt_levels: Sequence[str] = DEFAULT_OPT_LEVELS,
    cache=None,
) -> List[DatasetEntry]:
    if corpus is None:
        corpus = load_corpus()
    entries: List[DatasetEntry] = []
    for index, (source, name, inputs) in enumerate(corpus):
        entries.append(
            build_entry(
                source,
                name,
                inputs,
                uid=f"corpus-{index}-{name}",
                origin="corpus",
                isas=isas,
                opt_levels=opt_levels,
                cache=cache,
            )
        )
    return entries


def build_dataset(
    seed: int,
    count: int,
    include_corpus: bool = False,
    max_stmts: int = 10,
    isas: Sequence[str] = DEFAULT_ISAS,
    opt_levels: Sequence[str] = DEFAULT_OPT_LEVELS,
    cache=None,
) -> List[DatasetEntry]:
    """Generator-sourced entries, optionally prefixed by the corpus."""
    entries: List[DatasetEntry] = []
    if include_corpus:
        entries.extend(corpus_entries(isas=isas, opt_levels=opt_levels, cache=cache))
    entries.extend(
        generated_entries(
            seed, count, max_stmts=max_stmts, isas=isas, opt_levels=opt_levels,
            cache=cache,
        )
    )
    return entries


def dataset_to_json(entries: Sequence[DatasetEntry]) -> Dict[str, Any]:
    return {
        "schema": 1,
        "entries": [entry.to_json() for entry in entries],
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.dataset",
        description="Materialise (assembly, reference C, IO-vector) triples.",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
    parser.add_argument(
        "--count", type=int, default=10, help="generated functions (default 10)"
    )
    parser.add_argument(
        "--max-stmts", type=int, default=10, help="statement budget per function"
    )
    parser.add_argument(
        "--include-corpus",
        action="store_true",
        help="prepend the hand-written tests/corpus.py functions",
    )
    parser.add_argument(
        "--isas",
        default=",".join(DEFAULT_ISAS),
        help="comma-separated ISAs to compile (default x86,arm)",
    )
    parser.add_argument(
        "--opt-levels",
        default=",".join(DEFAULT_OPT_LEVELS),
        help="comma-separated opt levels to compile (default O0,O3)",
    )
    parser.add_argument(
        "--output", default="dataset.json", help="where to write the dataset"
    )
    parser.add_argument(
        "--input",
        default=None,
        help="load a previously written dataset instead of building one "
        "(--seed/--count/--isas/... are ignored)",
    )
    add_cache_arguments(parser)
    args = parser.parse_args(argv)
    if args.max_stmts < 3:
        parser.error("--max-stmts must be at least 3 (the generator's minimum)")

    cache = cache_from_args(args)
    if args.input is not None:
        entries = load_dataset(args.input)
    else:
        entries = build_dataset(
            args.seed,
            args.count,
            include_corpus=args.include_corpus,
            max_stmts=args.max_stmts,
            isas=tuple(s for s in args.isas.split(",") if s),
            opt_levels=tuple(s for s in args.opt_levels.split(",") if s),
            cache=cache,
        )
    with open(args.output, "w") as handle:
        json.dump(dataset_to_json(entries), handle, indent=2)
        handle.write("\n")
    vectors = sum(len(entry.inputs) for entry in entries)
    print(
        f"wrote {args.output}: {len(entries)} functions, {vectors} IO vectors, "
        f"{sum(len(entry.assembly) for entry in entries)} assembly listings"
    )
    if cache is not None:
        cache.sweep()
        print(describe_stats(cache.stats_summary()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
