"""Search-based candidate repair: a permuter on top of the scorer.

``repro.eval.score`` answers *"is this candidate IO-equivalent?"* — this
module answers *"can we make it equivalent?"*, the decomp-permuter loop
(write C -> compile -> observe the IO diff -> edit -> repeat) run over the
scorer's near-miss verdicts.  Every candidate scored ``io_mismatch``,
``type_error`` or ``trap`` becomes a repair **target**; the campaign then

* generates repair neighborhoods with
  :func:`repro.eval.mutate.repair_neighbors` — the breaking-mutation
  inventory applied *in reverse* plus reducer-style simplifications;
* scores whole populations of neighbors through the existing
  cross-function :class:`repro.testing.native.NativeBatch` fork-server
  groups (one toolchain invocation per ~32 attempts, next group compiling
  while the current one executes);
* beam-searches on **IO-vector agreement** (the fraction of inputs whose
  observation matches the reference's, from the scorer's per-input diffs),
  ties broken by token edit similarity, until a neighbor scores
  ``io_equivalent`` or the per-target attempt budget is spent.

The search is deterministic by construction: neighbor enumeration carries
no RNG, the frontier is ranked by ``(-agreement, -similarity, seq)`` with
a persisted tie-break counter, and each target's search reads nothing but
its own state — so reports are byte-identical at any ``--jobs`` count,
and the campaign JSON written after every round lets
``python -m repro.eval.repair --resume`` continue **byte-identically**
from where a killed run stopped (the file intentionally contains no
timestamps).

Typical invocations::

    python -m repro.eval.repair --seed 0 --functions 50 --candidates 8 \\
        --budget 200 --output repair_campaign.json
    python -m repro.eval.repair --seed 0 --functions 50 --candidates 8 \\
        --budget 200 --resume --output repair_campaign.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import multiprocessing
import sys
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.eval.cache import (
    EvalCache,
    add_cache_arguments,
    cache_from_args,
    describe_stats,
)
from repro.eval.dataset import DatasetEntry, generated_entries
from repro.eval.mutate import Candidate, Mutator, repair_neighbors
from repro.eval.score import (
    CandidateScore,
    _resolve_backend,
    score_dataset,
    score_entry_sets,
)

#: Verdicts that make a scored candidate a repair target.  ``parse_error``
#: sources cannot be repaired by AST edits and ``compile_error`` candidates
#: never reach execution, so neither produces an agreement signal to climb.
REPAIRABLE_VERDICTS: Tuple[str, ...] = ("io_mismatch", "type_error", "trap")

#: Per-pair native execution timeout used while scoring repair neighbors.
#: Generated functions run in microseconds, but the neighbor families
#: routinely manufacture infinite loops (flipped loop conditions, nudged
#: bounds); the eval scorer's default 10 s per pair would let a single such
#: neighbor stall a whole round.  Verdicts are unaffected: anything slower
#: than this is a ``limit`` outcome either way.
REPAIR_RUN_TIMEOUT = 1.0


@dataclass
class RepairConfig:
    """Search knobs shared by the CLI, the library API and the workers."""

    backend: str = "x86"
    opt_level: str = "O0"
    #: Scored neighbors allowed per target before it is declared exhausted.
    budget: int = 200
    #: Frontier size: how many scored-but-not-equivalent sources are kept
    #: as future expansion roots.
    beam: int = 4
    #: Neighbors scheduled per target per round (one round = one shared
    #: cross-target batch).
    chunk: int = 24
    #: Maximum edit depth from the original candidate.
    max_depth: int = 3
    fork_server: bool = True
    #: Stop after this many rounds per target (None = run to completion);
    #: the partial campaign file is resumable.
    max_rounds: Optional[int] = None


def _hash_source(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


def _rank_key(member: Dict[str, Any]) -> Tuple[float, float, int]:
    return (-member["agreement"], -member["similarity"], member["seq"])


def _new_target(
    entry: DatasetEntry, candidate: Candidate, index: int, score: CandidateScore
) -> Dict[str, Any]:
    """Initial search state for one near-miss candidate."""
    root = {
        "source": candidate.text,
        "agreement": score.agreement if score.agreement is not None else 0.0,
        "similarity": score.similarity,
        "depth": 0,
        "seq": 0,
    }
    return {
        "uid": f"{entry.uid}#c{index}",
        "entry_uid": entry.uid,
        "candidate_index": index,
        "kind": candidate.kind,
        "label": candidate.label,
        "start_verdict": score.verdict,
        "status": "active",  # "active" | "repaired" | "exhausted"
        "attempts_used": 0,
        "rounds": 0,
        "seq_counter": 1,
        "best": {
            "agreement": root["agreement"],
            "similarity": root["similarity"],
            "verdict": score.verdict,
            "source": candidate.text,
        },
        "repaired_source": None,
        "frontier": [root],
        "visited": [_hash_source(candidate.text)],
        "expanding": None,  # {"source", "depth", "cursor"}
        "history": [],
    }


def _collect_chunk(
    target: Dict[str, Any], entry: DatasetEntry, config: RepairConfig
) -> List[Tuple[str, str, int]]:
    """The next up-to-``chunk`` unvisited ``(kind, text, depth)`` neighbors.

    Advances the target's expansion cursor; everything consumed from the
    neighbor stream — scheduled or skipped as already visited — bumps the
    cursor, so re-generating the stream and skipping ``cursor`` items
    reproduces the exact continuation after a resume.  A chunk may span
    several expansion roots (when one root's stream runs dry the best
    frontier member is popped next), which is why each neighbor carries
    its own depth.  Marks the target ``exhausted`` (and returns ``[]``)
    when the budget is spent or there is nothing left to expand.
    """
    room = config.budget - target["attempts_used"]
    if room <= 0:
        target["status"] = "exhausted"
        return []
    visited = set(target["visited"])
    batch: List[Tuple[str, str, int]] = []
    want = min(config.chunk, room)
    while len(batch) < want:
        if target["expanding"] is None:
            if not target["frontier"]:
                break
            target["frontier"].sort(key=_rank_key)
            member = target["frontier"].pop(0)
            target["expanding"] = {
                "source": member["source"],
                "depth": member["depth"],
                "cursor": 0,
            }
        expanding = target["expanding"]
        stream = repair_neighbors(expanding["source"], entry.name)
        consumed = 0
        exhausted_stream = True
        for kind, text in stream:
            if consumed < expanding["cursor"]:
                consumed += 1
                continue
            expanding["cursor"] += 1
            digest = _hash_source(text)
            if digest in visited:
                continue
            visited.add(digest)
            target["visited"].append(digest)
            batch.append((kind, text, expanding["depth"]))
            if len(batch) >= want:
                exhausted_stream = False
                break
        if exhausted_stream:
            target["expanding"] = None
            if not target["frontier"]:
                break
    if not batch:
        target["status"] = "exhausted"
    return batch


def _apply_scores(
    target: Dict[str, Any],
    chunk: List[Tuple[str, str, int]],
    scores: Sequence[CandidateScore],
    config: RepairConfig,
) -> None:
    """Fold one round's verdicts back into the target's search state."""
    verdicts: Dict[str, int] = {}
    for (kind, text, depth), score in zip(chunk, scores):
        target["attempts_used"] += 1
        verdicts[score.verdict] = verdicts.get(score.verdict, 0) + 1
        if score.verdict == "io_equivalent":
            target["status"] = "repaired"
            target["repaired_source"] = text
            target["best"] = {
                "agreement": 1.0,
                "similarity": score.similarity,
                "verdict": "io_equivalent",
                "source": text,
            }
            break
        if score.agreement is None:
            continue  # never executed: no signal to climb on
        if (score.agreement, score.similarity) > (
            target["best"]["agreement"],
            target["best"]["similarity"],
        ):
            target["best"] = {
                "agreement": score.agreement,
                "similarity": score.similarity,
                "verdict": score.verdict,
                "source": text,
            }
        if depth + 1 <= config.max_depth:
            target["frontier"].append(
                {
                    "source": text,
                    "agreement": score.agreement,
                    "similarity": score.similarity,
                    "depth": depth + 1,
                    "seq": target["seq_counter"],
                }
            )
            target["seq_counter"] += 1
    target["frontier"].sort(key=_rank_key)
    del target["frontier"][config.beam :]
    target["rounds"] += 1
    target["history"].append(
        {
            "round": target["rounds"],
            "attempts": len(chunk),
            "best_agreement": target["best"]["agreement"],
            "verdicts": dict(sorted(verdicts.items())),
        }
    )
    if target["status"] == "active" and target["attempts_used"] >= config.budget:
        target["status"] = "exhausted"


def _run_rounds(
    targets: List[Dict[str, Any]],
    entries_by_uid: Dict[str, DatasetEntry],
    config: RepairConfig,
    persist=None,
    cache: Optional[EvalCache] = None,
) -> None:
    """Advance every active target to completion (or the round limit).

    Each round gathers one neighbor chunk per active target and scores all
    of them through one shared ``score_entry_sets`` call —
    cross-function batch groups with compile-while-execute lookahead,
    ``lint=False`` so every gate survivor really executes and carries an
    agreement score, and (with ``cache``) the verdict memo skips the
    toolchain entirely for neighbors judged in prior rounds or campaigns.
    ``persist`` (when given) is called after every round.
    """
    while True:
        active = [
            t
            for t in targets
            if t["status"] == "active"
            and (config.max_rounds is None or t["rounds"] < config.max_rounds)
        ]
        if not active:
            break
        chunks: List[Tuple[Dict[str, Any], List[Tuple[str, str, int]]]] = []
        for target in active:
            entry = entries_by_uid[target["entry_uid"]]
            chunk = _collect_chunk(target, entry, config)
            if chunk:
                chunks.append((target, chunk))
        if not chunks:
            if persist is not None:
                persist()
            continue
        score_entries = [entries_by_uid[t["entry_uid"]] for t, _ in chunks]
        candidate_sets = [
            [Candidate(text, "", kind, "") for kind, text, _ in chunk]
            for _, chunk in chunks
        ]
        all_scores = score_entry_sets(
            score_entries,
            candidate_sets,
            cache,
            backend=config.backend,
            opt_level=config.opt_level,
            use_batch=True,
            lint=False,
            fork_server=config.fork_server,
            run_timeout=REPAIR_RUN_TIMEOUT,
        )
        for (target, chunk), scores in zip(chunks, all_scores):
            _apply_scores(target, chunk, scores, config)
        if persist is not None:
            persist()


def _repair_worker(payload):
    targets, entries, config, cache = payload
    if cache is not None:
        # The pickled copy carries the parent's counters; zero them so the
        # summary shipped back is exactly this worker's delta.
        cache.stats = {}
        cache.evictions = 0
    entries_by_uid = {entry.uid: entry for entry in entries}
    _run_rounds(targets, entries_by_uid, config, cache=cache)
    return targets, (cache.stats_summary() if cache is not None else None)


def _aggregate(targets: List[Dict[str, Any]]) -> Dict[str, Any]:
    def rate(repaired: int, total: int) -> float:
        return round(repaired / total, 4) if total else 1.0

    repaired = sum(1 for t in targets if t["status"] == "repaired")
    mismatch = [t for t in targets if t["start_verdict"] == "io_mismatch"]
    mismatch_repaired = sum(1 for t in mismatch if t["status"] == "repaired")
    start_counts: Dict[str, int] = {}
    for target in targets:
        start = target["start_verdict"]
        start_counts[start] = start_counts.get(start, 0) + 1
    return {
        "targets": len(targets),
        "repaired": repaired,
        "exhausted": sum(1 for t in targets if t["status"] == "exhausted"),
        "active": sum(1 for t in targets if t["status"] == "active"),
        "attempts": sum(t["attempts_used"] for t in targets),
        "rounds": max((t["rounds"] for t in targets), default=0),
        "start_verdicts": dict(sorted(start_counts.items())),
        "repair_rate": rate(repaired, len(targets)),
        "io_mismatch_targets": len(mismatch),
        "io_mismatch_repaired": mismatch_repaired,
        "io_mismatch_repair_rate": rate(mismatch_repaired, len(mismatch)),
    }


def _campaign_json(
    targets: List[Dict[str, Any]], config: RepairConfig, extra_config: Dict[str, Any]
) -> Dict[str, Any]:
    return {
        "schema": 1,
        "config": {
            **extra_config,
            "backend": config.backend,
            "opt_level": config.opt_level,
            "budget": config.budget,
            "beam": config.beam,
            "chunk": config.chunk,
            "max_depth": config.max_depth,
        },
        "targets": targets,
        "aggregate": _aggregate(targets),
    }


def repair_campaign(
    entries: Sequence[DatasetEntry],
    candidate_sets: Sequence[Sequence[Candidate]],
    config: Optional[RepairConfig] = None,
    jobs: int = 1,
    state: Optional[Dict[str, Any]] = None,
    persist=None,
    extra_config: Optional[Dict[str, Any]] = None,
    baseline: Optional[Dict[str, Any]] = None,
    cache: Optional[EvalCache] = None,
) -> Dict[str, Any]:
    """Run (or resume) a repair campaign; returns the campaign document.

    Fresh campaigns first score the dataset to find the near-miss targets
    (pass ``baseline`` to reuse an existing ``score_dataset`` report built
    from the same entries/candidates); ``state`` resumes a prior campaign
    document instead.  ``persist`` is called with the current campaign
    document after every round (single-process runs only — with
    ``jobs > 1`` workers run their shards to completion and the document
    is produced once at the end).  Per-target searches never read other
    targets' state, so the result is byte-identical at any ``jobs`` count.
    ``cache`` (a :class:`repro.eval.cache.EvalCache`) memoises verdicts
    across rounds, runs and campaigns without changing a byte of the
    campaign document.
    """
    if config is None:
        config = RepairConfig()
    extra_config = dict(extra_config or {})
    entries_by_uid = {entry.uid: entry for entry in entries}

    if state is not None:
        targets = [dict(t) for t in state["targets"]]
    else:
        if baseline is None:
            baseline = score_dataset(
                entries,
                candidate_sets,
                backend=config.backend,
                opt_level=config.opt_level,
                fork_server=config.fork_server,
                jobs=jobs,
                cache=cache,
            )
        targets = []
        score_index = {f["uid"]: f["candidates"] for f in baseline["functions"]}
        for entry, candidates in zip(entries, candidate_sets):
            for index, candidate in enumerate(candidates):
                scored = score_index[entry.uid][index]
                if scored["verdict"] not in REPAIRABLE_VERDICTS:
                    continue
                score = CandidateScore(
                    index,
                    scored["verdict"],
                    scored["similarity"],
                    agreement=scored.get("agreement"),
                )
                targets.append(_new_target(entry, candidate, index, score))

    def document() -> Dict[str, Any]:
        return _campaign_json(targets, config, extra_config)

    active = [t for t in targets if t["status"] == "active"]
    if jobs > 1 and len(active) > 1:
        workers = min(jobs, len(active))
        # Shard only the active targets round-robin; contexts cannot cross
        # the process boundary (same rule as score_dataset --jobs).
        shards: List[List[Dict[str, Any]]] = [[] for _ in range(workers)]
        for position, target in enumerate(active):
            shards[position % workers].append(target)
        payloads = []
        for shard in shards:
            needed = sorted({t["entry_uid"] for t in shard})
            portable = [replace(entries_by_uid[uid], context=None) for uid in needed]
            payloads.append((shard, portable, config, cache))
        with multiprocessing.Pool(processes=workers) as pool:
            finished = pool.map(_repair_worker, payloads)
        for _, summary in finished:
            if cache is not None and summary is not None:
                cache.absorb(summary)
        by_uid = {t["uid"]: t for shard, _ in finished for t in shard}
        targets = [by_uid.get(t["uid"], t) for t in targets]
    else:
        if persist is not None:
            persist(document())
        _run_rounds(
            targets,
            entries_by_uid,
            config,
            persist=(lambda: persist(document())) if persist is not None else None,
            cache=cache,
        )

    return _campaign_json(targets, config, extra_config)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

#: Config keys that must match for ``--resume`` to continue a campaign
#: file (``fork_server``/``jobs`` are execution details with no effect on
#: the bytes, so they may differ between the original run and the resume).
_RESUME_KEYS = (
    "seed",
    "functions",
    "candidates",
    "max_stmts",
    "backend",
    "opt_level",
    "budget",
    "beam",
    "chunk",
    "max_depth",
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.repair",
        description="Repair near-miss decompilation candidates by beam search "
        "on IO-vector agreement.",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
    parser.add_argument(
        "--functions", type=int, default=20, help="reference functions (default 20)"
    )
    parser.add_argument(
        "--candidates", type=int, default=8, help="candidates per function (default 8)"
    )
    parser.add_argument(
        "--max-stmts", type=int, default=10, help="statement budget per reference"
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "x86", "arm", "none"),
        default="auto",
        help="execution substrate (default auto: x86 when the toolchain exists)",
    )
    parser.add_argument(
        "--opt-level", choices=("O0", "O3"), default="O0",
        help="opt level candidates are compiled at (default O0)",
    )
    parser.add_argument(
        "--budget", type=int, default=200,
        help="scored repair attempts per target (default 200)",
    )
    parser.add_argument(
        "--beam", type=int, default=4,
        help="frontier size per target (default 4)",
    )
    parser.add_argument(
        "--chunk", type=int, default=24,
        help="neighbors scored per target per round (default 24)",
    )
    parser.add_argument(
        "--max-depth", type=int, default=3,
        help="maximum edit depth from the original candidate (default 3)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes; targets are sharded round-robin and the "
        "campaign is byte-identical at any job count (default 1)",
    )
    parser.add_argument(
        "--no-fork-server", action="store_true",
        help="score neighbor batches through the one-subprocess-per-leg "
        "harness instead of the persistent fork server",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="continue the campaign in --output byte-identically from where "
        "it stopped (the dataset config must match)",
    )
    parser.add_argument(
        "--max-rounds", type=int, default=None,
        help="stop after N search rounds per target (the partial campaign "
        "file is resumable; default: run to completion)",
    )
    parser.add_argument(
        "--min-repair-rate", type=float, default=None,
        help="exit 1 unless the io_mismatch repair rate reaches this floor",
    )
    parser.add_argument(
        "--output", default="repair_campaign.json",
        help="campaign progress/result file (default repair_campaign.json)",
    )
    add_cache_arguments(parser)
    args = parser.parse_args(argv)
    if args.max_stmts < 3:
        parser.error("--max-stmts must be at least 3 (the generator's minimum)")
    if args.budget < 1 or args.beam < 1 or args.chunk < 1 or args.max_depth < 1:
        parser.error("--budget/--beam/--chunk/--max-depth must be at least 1")

    backend = _resolve_backend(args.backend)
    config = RepairConfig(
        backend=backend,
        opt_level=args.opt_level,
        budget=args.budget,
        beam=args.beam,
        chunk=args.chunk,
        max_depth=args.max_depth,
        fork_server=not args.no_fork_server,
        max_rounds=args.max_rounds,
    )
    extra_config = {
        "seed": args.seed,
        "functions": args.functions,
        "candidates": args.candidates,
        "max_stmts": args.max_stmts,
    }

    state: Optional[Dict[str, Any]] = None
    if args.resume:
        try:
            with open(args.output) as handle:
                state = json.load(handle)
        except FileNotFoundError:
            raise SystemExit(f"error: --resume: no campaign file at {args.output!r}")
        stored = state.get("config", {})
        want = {**extra_config, **{
            "backend": backend,
            "opt_level": args.opt_level,
            "budget": args.budget,
            "beam": args.beam,
            "chunk": args.chunk,
            "max_depth": args.max_depth,
        }}
        for key in _RESUME_KEYS:
            if stored.get(key) != want[key]:
                raise SystemExit(
                    f"error: --resume: config mismatch on {key!r} "
                    f"(file has {stored.get(key)!r}, run wants {want[key]!r})"
                )

    cache = cache_from_args(args)
    started = time.time()
    entries = generated_entries(
        args.seed,
        args.functions,
        max_stmts=args.max_stmts,
        isas=("arm",) if backend == "arm" else ("x86",),
        opt_levels=(args.opt_level,),
        cache=cache,
    )
    candidate_sets = [
        Mutator(
            entry.seed if entry.seed is not None else args.seed,
            allow_trap_labels=backend != "arm" and args.opt_level == "O0",
        ).candidates(entry, args.candidates, cache=cache)
        for entry in entries
    ]
    built = time.time()
    print(
        f"dataset: {len(entries)} functions x {args.candidates} candidates "
        f"in {built - started:.1f}s; repairing on {backend!r}"
    )

    def persist(campaign: Dict[str, Any]) -> None:
        with open(args.output, "w") as handle:
            json.dump(campaign, handle, indent=2, sort_keys=True)
            handle.write("\n")

    campaign = repair_campaign(
        entries,
        candidate_sets,
        config=config,
        jobs=max(1, args.jobs),
        state=state,
        persist=persist if args.jobs <= 1 else None,
        extra_config=extra_config,
        cache=cache,
    )
    persist(campaign)
    finished = time.time()

    aggregate = campaign["aggregate"]
    elapsed = max(1e-9, finished - built)
    print(f"wrote {args.output}")
    print(
        f"  targets: {aggregate['targets']} "
        f"({', '.join(f'{k}={v}' for k, v in aggregate['start_verdicts'].items())})"
    )
    print(
        f"  repaired: {aggregate['repaired']}/{aggregate['targets']} "
        f"({aggregate['repair_rate']:.1%}); io_mismatch "
        f"{aggregate['io_mismatch_repaired']}/{aggregate['io_mismatch_targets']} "
        f"({aggregate['io_mismatch_repair_rate']:.1%})"
    )
    print(
        f"  attempts: {aggregate['attempts']} in {aggregate['rounds']} round(s); "
        f"{aggregate['attempts'] / elapsed:.1f} attempts/s, "
        f"{aggregate['repaired'] / elapsed:.2f} repaired/s"
    )
    if cache is not None:
        cache.sweep()
        print("  cache: " + describe_stats(cache.stats_summary()))
    if aggregate["active"]:
        print(
            f"  {aggregate['active']} target(s) still active "
            f"(run again with --resume to continue)"
        )

    if args.min_repair_rate is not None:
        if aggregate["io_mismatch_repair_rate"] < args.min_repair_rate:
            print(
                f"REPAIR RATE GATE FAILED: io_mismatch repair rate "
                f"{aggregate['io_mismatch_repair_rate']:.1%} is below the "
                f"{args.min_repair_rate:.1%} floor",
                file=sys.stderr,
            )
            return 1
        print(
            f"  repair-rate gate: {aggregate['io_mismatch_repair_rate']:.1%} "
            f">= {args.min_repair_rate:.1%} floor"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
