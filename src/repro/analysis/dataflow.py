"""Forward dataflow over the typechecked Mini-C AST.

A single forward pass per function computes, at every program point:

* **definite assignment** — which locals have certainly been written;
* **interval/constant values** — a bounds-plus-nonzero abstraction of every
  integer scalar local, precise enough to prove the generator's guard
  idioms safe (``(expr & mask) + k`` divisors, ``expr & mask`` shift
  counts) while still flagging a literal-zero divisor as a *definite*
  trap;
* **reachability** — statements after a ``return``/``break``/``continue``
  or under a constant-false condition;
* **must-execute** — whether the current point runs on *every* call (no
  enclosing conditional or loop), which is what lets the scorer's
  pre-filter turn a definite division-by-zero into a verdict without
  executing anything.

The analysis is deliberately unsound-free in one direction only: a
``definite`` finding (interval exactly ``[0, 0]``) is a proof under the
dialect's wrapped semantics, whereas the *absence* of findings proves
nothing.  Interval arithmetic degrades to TOP whenever a result could
wrap at its C type, so bounds never lie.

Structured Mini-C has no ``goto``, so the walk follows the AST directly;
loop bodies are analysed once with every variable assigned (or
address-taken) in the body widened to TOP, which keeps single-pass
analysis sound across iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.lang import ast_nodes as ast
from repro.lang import ctypes as ct

#: Finding kinds produced by the analysis.
KINDS = (
    "div_by_zero",
    "possible_div_by_zero",
    "shift_width",
    "uninitialized",
    "unreachable",
)


@dataclass(frozen=True)
class Interval:
    """Bounds (``None`` = unbounded) plus a wrap-safe nonzero flag."""

    lo: Optional[int] = None
    hi: Optional[int] = None
    nonzero: bool = False

    @staticmethod
    def const(value: int) -> "Interval":
        return Interval(value, value, value != 0)

    @property
    def is_zero(self) -> bool:
        return self.lo == 0 and self.hi == 0

    def may_be_zero(self) -> bool:
        if self.nonzero:
            return False
        if self.lo is not None and self.lo > 0:
            return False
        if self.hi is not None and self.hi < 0:
            return False
        return True

    def join(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi, self.nonzero and other.nonzero)


TOP = Interval()
ZERO = Interval.const(0)


def clamp(interval: Interval, ctype: Optional[ct.CType]) -> Interval:
    """Degrade an interval that might wrap at ``ctype`` to TOP.

    Bounds survive only when the whole interval fits the type's
    representable range; the ``nonzero`` flag survives unconditionally for
    bounded-fit intervals and is dropped otherwise (wrapping can reach 0).
    """
    if not isinstance(ctype, ct.IntType):
        return TOP
    if interval.lo is None or interval.hi is None:
        # Unbounded: keep only a nonzero flag that was established
        # wrap-safely by the producer (e.g. ``x | c`` with c wrapped != 0).
        return Interval(None, None, interval.nonzero)
    if ctype.min_value() <= interval.lo and interval.hi <= ctype.max_value():
        return interval
    return TOP


@dataclass
class State:
    """The abstract state at one program point."""

    values: Dict[str, Interval] = field(default_factory=dict)
    assigned: Set[str] = field(default_factory=set)
    declared: Set[str] = field(default_factory=set)
    reachable: bool = True
    must: bool = True  # this point executes on every call

    def copy(self) -> "State":
        return State(
            dict(self.values),
            set(self.assigned),
            set(self.declared),
            self.reachable,
            self.must,
        )

    def merge(self, other: "State") -> "State":
        """Join two states at a control-flow merge point."""
        if not self.reachable:
            return other.copy()
        if not other.reachable:
            return self.copy()
        values: Dict[str, Interval] = {}
        for name in self.values.keys() & other.values.keys():
            values[name] = self.values[name].join(other.values[name])
        return State(
            values,
            self.assigned & other.assigned,
            self.declared | other.declared,
            True,
            self.must and other.must,
        )


#: ``on_finding(kind, message, node, definite, must_execute)``
FindingSink = Callable[[str, str, ast.Node, bool, bool], None]


def analyze_function(
    func: ast.FunctionDef,
    sink: FindingSink,
    globals_declared: Optional[Set[str]] = None,
) -> None:
    """Run the forward analysis over ``func``, reporting through ``sink``."""
    _Analyzer(func, sink, globals_declared or set()).run()


def assigned_names(node: ast.Node) -> Set[str]:
    """Names assigned, incremented or address-taken anywhere under ``node``.

    Used to widen loop bodies: any of these may change between iterations.
    """
    names: Set[str] = set()
    _collect_assigned(node, names)
    return names


def _collect_assigned(node, names: Set[str]) -> None:
    if isinstance(node, ast.Assignment):
        if isinstance(node.target, ast.Identifier):
            names.add(node.target.name)
        _collect_assigned(node.target, names)
        _collect_assigned(node.value, names)
    elif isinstance(node, (ast.UnaryOp, ast.PostfixOp)):
        if node.op in ("++", "--", "&") and isinstance(node.operand, ast.Identifier):
            names.add(node.operand.name)
        _collect_assigned(node.operand, names)
    elif isinstance(node, ast.Declaration):
        names.add(node.name)
        if node.init is not None:
            _collect_assigned(node.init, names)
    elif isinstance(node, ast.Block):
        for stmt in node.stmts:
            _collect_assigned(stmt, names)
    elif isinstance(node, ast.ExprStmt):
        _collect_assigned(node.expr, names)
    elif isinstance(node, ast.If):
        _collect_assigned(node.cond, names)
        _collect_assigned(node.then, names)
        if node.otherwise is not None:
            _collect_assigned(node.otherwise, names)
    elif isinstance(node, (ast.While, ast.DoWhile)):
        _collect_assigned(node.cond, names)
        _collect_assigned(node.body, names)
    elif isinstance(node, ast.For):
        for part in (node.init, node.cond, node.step, node.body):
            if part is not None:
                _collect_assigned(part, names)
    elif isinstance(node, ast.Return):
        if node.value is not None:
            _collect_assigned(node.value, names)
    elif isinstance(node, ast.BinaryOp):
        _collect_assigned(node.left, names)
        _collect_assigned(node.right, names)
    elif isinstance(node, ast.Conditional):
        _collect_assigned(node.cond, names)
        _collect_assigned(node.then, names)
        _collect_assigned(node.otherwise, names)
    elif isinstance(node, ast.Call):
        _collect_assigned(node.func, names)
        for arg in node.args:
            _collect_assigned(arg, names)
    elif isinstance(node, ast.Index):
        _collect_assigned(node.base, names)
        _collect_assigned(node.index, names)
    elif isinstance(node, ast.Member):
        _collect_assigned(node.base, names)
    elif isinstance(node, ast.Cast):
        _collect_assigned(node.operand, names)
    elif isinstance(node, ast.InitializerList):
        for item in node.items:
            _collect_assigned(item, names)


def _int_ctype(expr: ast.Expr) -> Optional[ct.IntType]:
    t = getattr(expr, "ctype", None)
    if isinstance(t, ct.NamedType):
        return None
    if isinstance(t, ct.IntType):
        return t
    return None


def _is_integer_division(expr: ast.BinaryOp) -> bool:
    """True for ``/`` and ``%`` performed in an integer type (float division
    never traps)."""
    t = getattr(expr, "ctype", None)
    if t is not None:
        return t.is_integer()
    left = getattr(expr.left, "ctype", None)
    right = getattr(expr.right, "ctype", None)
    if left is not None and left.is_float():
        return False
    if right is not None and right.is_float():
        return False
    return True


class _Analyzer:
    def __init__(
        self, func: ast.FunctionDef, sink: FindingSink, globals_declared: Set[str]
    ) -> None:
        self.func = func
        self.sink = sink
        self.globals_declared = globals_declared
        # Locals whose address escapes: their value is permanently unknown.
        self.escaped: Set[str] = set()

    # -- reporting ----------------------------------------------------------

    def report(
        self,
        kind: str,
        message: str,
        node: ast.Node,
        state: State,
        definite: bool = False,
    ) -> None:
        self.sink(kind, message, node, definite, state.must)

    # -- entry --------------------------------------------------------------

    def run(self) -> None:
        state = State()
        for param in self.func.params:
            state.declared.add(param.name)
            state.assigned.add(param.name)
            state.values[param.name] = TOP
        if self.func.body is not None:
            self.analyze_block(self.func.body, state)

    # -- statements ---------------------------------------------------------

    def analyze_block(self, block: ast.Block, state: State) -> State:
        shadowed: Dict[str, Tuple[Optional[Interval], bool, bool]] = {}
        reported_dead = False
        for stmt in block.stmts:
            if not state.reachable:
                if not reported_dead and not isinstance(stmt, ast.EmptyStmt):
                    self.report(
                        "unreachable",
                        "statement is unreachable (follows a return/break/continue "
                        "or a constant-false path)",
                        stmt,
                        state,
                    )
                    reported_dead = True
                continue
            reported_dead = False
            if isinstance(stmt, ast.Declaration) and stmt.name not in shadowed:
                shadowed[stmt.name] = (
                    state.values.get(stmt.name),
                    stmt.name in state.assigned,
                    stmt.name in state.declared,
                )
            state = self.analyze_stmt(stmt, state)
        for name, (value, was_assigned, was_declared) in shadowed.items():
            if value is None:
                state.values.pop(name, None)
            else:
                state.values[name] = value
            (state.assigned.add if was_assigned else state.assigned.discard)(name)
            (state.declared.add if was_declared else state.declared.discard)(name)
        return state

    def analyze_stmt(self, stmt: ast.Stmt, state: State) -> State:
        if isinstance(stmt, ast.Block):
            return self.analyze_block(stmt, state)
        if isinstance(stmt, ast.Declaration):
            return self.analyze_declaration(stmt, state)
        if isinstance(stmt, ast.ExprStmt):
            _, state = self.eval(stmt.expr, state)
            return state
        if isinstance(stmt, ast.If):
            return self.analyze_if(stmt, state)
        if isinstance(stmt, ast.While):
            return self.analyze_loop(
                stmt, state, cond=stmt.cond, body=stmt.body, at_least_once=False
            )
        if isinstance(stmt, ast.DoWhile):
            return self.analyze_loop(
                stmt, state, cond=stmt.cond, body=stmt.body, at_least_once=True
            )
        if isinstance(stmt, ast.For):
            return self.analyze_for(stmt, state)
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                _, state = self.eval(stmt.value, state)
            state.reachable = False
            return state
        if isinstance(stmt, (ast.Break, ast.Continue)):
            state.reachable = False
            return state
        return state  # EmptyStmt and anything future

    def analyze_declaration(self, decl: ast.Declaration, state: State) -> State:
        state.declared.add(decl.name)
        decl_type = decl.type
        if isinstance(decl.init, ast.Expr):
            value, state = self.eval(decl.init, state)
            state.assigned.add(decl.name)
            state.values[decl.name] = clamp(value, decl_type)
        elif decl.init is not None:  # initializer list
            for item in decl.init.items:
                if isinstance(item, ast.Expr):
                    _, state = self.eval(item, state)
            state.assigned.add(decl.name)
            state.values[decl.name] = TOP
        else:
            # Aggregates have no scalar "read before write" notion here;
            # only scalar locals participate in definite assignment.
            if isinstance(decl_type, (ct.ArrayType, ct.StructType)):
                state.assigned.add(decl.name)
            elif decl.storage == "static":
                state.assigned.add(decl.name)  # statics are zero-initialised
            else:
                state.assigned.discard(decl.name)
            state.values[decl.name] = TOP
        return state

    def analyze_if(self, stmt: ast.If, state: State) -> State:
        cond_value, state = self.eval(stmt.cond, state)
        then_state = state.copy()
        else_state = state.copy()
        self.refine(stmt.cond, then_state, else_state)
        if cond_value.is_zero:
            self.report(
                "unreachable",
                "branch condition is always 0: the then-branch never runs",
                stmt.then,
                state,
            )
            if stmt.otherwise is not None:
                return self.analyze_stmt(stmt.otherwise, else_state)
            return state
        if cond_value.nonzero and stmt.otherwise is not None:
            self.report(
                "unreachable",
                "branch condition is always nonzero: the else-branch never runs",
                stmt.otherwise,
                state,
            )
            return self.analyze_stmt(stmt.then, then_state)
        then_state.must = state.must and cond_value.nonzero
        else_state.must = False
        after_then = self.analyze_stmt(stmt.then, then_state)
        if stmt.otherwise is not None:
            after_else = self.analyze_stmt(stmt.otherwise, else_state)
        else:
            after_else = else_state
        merged = after_then.merge(after_else)
        merged.must = state.must
        return merged

    def analyze_loop(
        self,
        stmt: ast.Stmt,
        state: State,
        cond: ast.Expr,
        body: ast.Stmt,
        at_least_once: bool,
        step: Optional[ast.Expr] = None,
    ) -> State:
        if not at_least_once:
            cond_value, state = self.eval(cond, state)
            if cond_value.is_zero:
                self.report(
                    "unreachable",
                    "loop condition is always 0: the body never runs",
                    body,
                    state,
                )
                return state
        # Widen everything the body (or step) can change: one analysis pass
        # then covers any iteration.
        widened = assigned_names(body)
        if step is not None:
            widened |= assigned_names(step)
        widened |= assigned_names(cond)
        body_state = state.copy()
        for name in widened:
            if name in body_state.values:
                body_state.values[name] = TOP
        if not at_least_once:
            self.refine(cond, body_state, State())
            body_state.must = False
        after_body = self.analyze_stmt(body, body_state)
        if step is not None:
            if after_body.reachable:
                _, after_body = self.eval(step, after_body)
            else:
                # A continue still reaches the step; approximate with the
                # widened pre-body state.
                step_state = body_state.copy()
                _, _ = self.eval(step, step_state)
        if at_least_once:
            eval_state = after_body if after_body.reachable else body_state.copy()
            eval_state = eval_state.copy()
            _, eval_state = self.eval(cond, eval_state)
            exit_state = eval_state
            exit_state.must = state.must
            exit_state.reachable = True
            # Variables the body changes are unknown at exit, but a
            # do-while body runs at least once, so its definite
            # assignments survive (conservatively only when the body
            # cannot break before them: keep the intersection).
            for name in widened:
                if name in exit_state.values:
                    exit_state.values[name] = TOP
            exit_state.assigned &= after_body.assigned | state.assigned | widened
            return exit_state
        exit_state = state.copy()
        for name in widened:
            if name in exit_state.values:
                exit_state.values[name] = TOP
        self.refine_false(cond, exit_state)
        return exit_state

    def analyze_for(self, stmt: ast.For, state: State) -> State:
        shadowed: Optional[Tuple[str, Optional[Interval], bool, bool]] = None
        if isinstance(stmt.init, ast.Declaration):
            shadowed = (
                stmt.init.name,
                state.values.get(stmt.init.name),
                stmt.init.name in state.assigned,
                stmt.init.name in state.declared,
            )
            state = self.analyze_declaration(stmt.init, state)
        elif isinstance(stmt.init, ast.ExprStmt):
            _, state = self.eval(stmt.init.expr, state)
        elif isinstance(stmt.init, ast.Expr):
            _, state = self.eval(stmt.init, state)
        cond = stmt.cond if stmt.cond is not None else ast.IntLiteral(1)
        state = self.analyze_loop(
            stmt, state, cond=cond, body=stmt.body, at_least_once=False, step=stmt.step
        )
        if shadowed is not None:
            name, value, was_assigned, was_declared = shadowed
            if value is None:
                state.values.pop(name, None)
            else:
                state.values[name] = value
            (state.assigned.add if was_assigned else state.assigned.discard)(name)
            (state.declared.add if was_declared else state.declared.discard)(name)
        return state

    # -- condition refinement ------------------------------------------------

    def refine(self, cond: ast.Expr, true_state: State, false_state: State) -> None:
        """Sharpen variable values under ``cond`` true / ``cond`` false."""
        if isinstance(cond, ast.Identifier):
            self._refine_var(cond.name, true_state, nonzero=True)
            self._refine_var(cond.name, false_state, zero=True)
            return
        if isinstance(cond, ast.UnaryOp) and cond.op == "!":
            self.refine(cond.operand, false_state, true_state)
            return
        if isinstance(cond, ast.BinaryOp):
            if cond.op == "&&":
                self.refine(cond.left, true_state, State())
                self.refine(cond.right, true_state, State())
                return
            if cond.op in ("==", "!="):
                var, literal = self._var_vs_const(cond)
                if var is not None:
                    eq_state, ne_state = (
                        (true_state, false_state)
                        if cond.op == "=="
                        else (false_state, true_state)
                    )
                    if literal == 0:
                        self._refine_var(var, eq_state, zero=True)
                        self._refine_var(var, ne_state, nonzero=True)
                    else:
                        eq_state.values[var] = Interval.const(literal)
                return
            if cond.op in ("<", "<=", ">", ">="):
                self._refine_relational(cond, true_state, false_state)

    def refine_false(self, cond: ast.Expr, state: State) -> None:
        dummy = State()
        self.refine(cond, dummy, state)

    def _var_vs_const(self, cond: ast.BinaryOp):
        left, right = cond.left, cond.right
        if isinstance(left, ast.Identifier) and isinstance(right, ast.IntLiteral):
            return left.name, right.value
        if isinstance(right, ast.Identifier) and isinstance(left, ast.IntLiteral):
            return right.name, left.value
        return None, None

    def _refine_relational(
        self, cond: ast.BinaryOp, true_state: State, false_state: State
    ) -> None:
        # Normalise to ``name <op> literal``.
        op = cond.op
        if isinstance(cond.left, ast.Identifier) and isinstance(
            cond.right, ast.IntLiteral
        ):
            name, literal = cond.left.name, cond.right.value
        elif isinstance(cond.right, ast.Identifier) and isinstance(
            cond.left, ast.IntLiteral
        ):
            name, literal = cond.right.name, cond.left.value
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
        else:
            return
        bounds = {
            "<": ((None, literal - 1), (literal, None)),
            "<=": ((None, literal), (literal + 1, None)),
            ">": ((literal + 1, None), (None, literal)),
            ">=": ((literal, None), (None, literal - 1)),
        }
        (true_lo, true_hi), (false_lo, false_hi) = bounds[op]
        self._refine_bounds(name, true_state, true_lo, true_hi)
        self._refine_bounds(name, false_state, false_lo, false_hi)

    def _refine_bounds(
        self, name: str, state: State, lo: Optional[int], hi: Optional[int]
    ) -> None:
        if name in self.escaped or name not in state.values:
            return
        current = state.values[name]
        new_lo = lo if current.lo is None else (
            current.lo if lo is None else max(current.lo, lo)
        )
        new_hi = hi if current.hi is None else (
            current.hi if hi is None else min(current.hi, hi)
        )
        nonzero = current.nonzero
        if new_lo is not None and new_hi is not None and new_lo > new_hi:
            return  # contradictory path; keep the old value
        refined = Interval(new_lo, new_hi, nonzero)
        if not refined.may_be_zero():
            refined = replace(refined, nonzero=True)
        state.values[name] = refined

    def _refine_var(
        self, name: str, state: State, nonzero: bool = False, zero: bool = False
    ) -> None:
        if name in self.escaped or name not in state.values:
            return
        if zero:
            state.values[name] = ZERO
        elif nonzero:
            current = state.values[name]
            state.values[name] = replace(current, nonzero=True)

    # -- expressions ---------------------------------------------------------

    def eval(self, expr: ast.Expr, state: State) -> Tuple[Interval, State]:
        """Abstractly evaluate ``expr``, applying its side effects to a copy
        of ``state`` (which is returned)."""
        if isinstance(expr, (ast.IntLiteral, ast.CharLiteral)):
            return Interval.const(expr.value), state
        if isinstance(expr, ast.FloatLiteral):
            return TOP, state
        if isinstance(expr, ast.StringLiteral):
            return Interval(None, None, True), state  # a non-null address
        if isinstance(expr, ast.Identifier):
            return self._eval_identifier(expr, state), state
        if isinstance(expr, ast.BinaryOp):
            return self._eval_binary(expr, state)
        if isinstance(expr, ast.UnaryOp):
            return self._eval_unary(expr, state)
        if isinstance(expr, ast.PostfixOp):
            return self._eval_incdec(expr.operand, expr.op, state, postfix=True)
        if isinstance(expr, ast.Assignment):
            return self._eval_assignment(expr, state)
        if isinstance(expr, ast.Conditional):
            return self._eval_conditional(expr, state)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, state)
        if isinstance(expr, ast.Index):
            _, state = self.eval(expr.base, state)
            _, state = self.eval(expr.index, state)
            return TOP, state
        if isinstance(expr, ast.Member):
            _, state = self.eval(expr.base, state)
            return TOP, state
        if isinstance(expr, ast.Cast):
            value, state = self.eval(expr.operand, state)
            return clamp(value, expr.target_type), state
        if isinstance(expr, ast.SizeOf):
            if expr.target_type is not None:
                try:
                    return Interval.const(expr.target_type.sizeof()), state
                except Exception:
                    return TOP, state
            return TOP, state
        return TOP, state

    def _eval_identifier(self, expr: ast.Identifier, state: State) -> Interval:
        name = expr.name
        if name in state.declared:
            if name not in state.assigned and name not in self.escaped:
                self.report(
                    "uninitialized",
                    f"local {name!r} may be read before it is assigned",
                    expr,
                    state,
                )
                state.assigned.add(name)  # report each variable once
            if name in self.escaped:
                return TOP
            return state.values.get(name, TOP)
        return TOP  # global or function name: unknown

    def _eval_binary(self, expr: ast.BinaryOp, state: State) -> Tuple[Interval, State]:
        op = expr.op
        if op in ("&&", "||"):
            left, state = self.eval(expr.left, state)
            # The right side evaluates conditionally.
            right_state = state.copy()
            right_state.must = False
            if op == "&&":
                self.refine(expr.left, right_state, State())
            else:
                self.refine_false(expr.left, right_state)
            _, right_state = self.eval(expr.right, right_state)
            merged = state.merge(right_state)
            merged.must = state.must
            if op == "||" and left.nonzero:
                return Interval.const(1), merged
            return Interval(0, 1), merged
        left, state = self.eval(expr.left, state)
        right, state = self.eval(expr.right, state)
        if op in ("/", "%") and _is_integer_division(expr):
            self._check_division(expr, right, state)
        elif op in ("<<", ">>"):
            self._check_shift(expr, right, state)
        result = self._binop_interval(op, left, right, getattr(expr, "ctype", None))
        return result, state

    def _eval_unary(self, expr: ast.UnaryOp, state: State) -> Tuple[Interval, State]:
        op = expr.op
        if op in ("++", "--"):
            return self._eval_incdec(expr.operand, op, state, postfix=False)
        if op == "&":
            if isinstance(expr.operand, ast.Identifier):
                name = expr.operand.name
                self.escaped.add(name)
                state.assigned.add(name)
                state.values[name] = TOP
            else:
                _, state = self.eval(expr.operand, state)
            return Interval(None, None, True), state  # a non-null address
        value, state = self.eval(expr.operand, state)
        if op == "-":
            lo = None if value.hi is None else -value.hi
            hi = None if value.lo is None else -value.lo
            return clamp(
                Interval(lo, hi, value.nonzero), getattr(expr, "ctype", None)
            ), state
        if op == "!":
            if value.nonzero:
                return Interval.const(0), state
            if value.is_zero:
                return Interval.const(1), state
            return Interval(0, 1), state
        if op == "+":
            return value, state
        return TOP, state  # ~, *, and anything else

    def _eval_incdec(
        self, operand: ast.Expr, op: str, state: State, postfix: bool
    ) -> Tuple[Interval, State]:
        value, state = self.eval(operand, state)
        updated = self._binop_interval(
            "+" if op == "++" else "-", value, Interval.const(1),
            getattr(operand, "ctype", None),
        )
        if isinstance(operand, ast.Identifier) and operand.name in state.declared:
            state.assigned.add(operand.name)
            if operand.name not in self.escaped:
                state.values[operand.name] = updated
        return (value if postfix else updated), state

    def _eval_assignment(
        self, expr: ast.Assignment, state: State
    ) -> Tuple[Interval, State]:
        target = expr.target
        if expr.op == "=":
            value, state = self.eval(expr.value, state)
            if not isinstance(target, ast.Identifier):
                _, state = self.eval(target, state)
            result = clamp(value, getattr(target, "ctype", None))
        else:
            current, state = self.eval(target, state)
            value, state = self.eval(expr.value, state)
            base_op = expr.op[:-1]  # "+=" -> "+"
            if base_op in ("/", "%") and _is_integer_division_types(target, expr.value):
                self._check_division(expr, value, state)
            elif base_op in ("<<", ">>"):
                self._check_shift(expr, value, state, target=target)
            result = self._binop_interval(
                base_op, current, value, getattr(target, "ctype", None)
            )
        if isinstance(target, ast.Identifier) and target.name in state.declared:
            state.assigned.add(target.name)
            if target.name not in self.escaped:
                state.values[target.name] = result
        return result, state

    def _eval_conditional(
        self, expr: ast.Conditional, state: State
    ) -> Tuple[Interval, State]:
        cond_value, state = self.eval(expr.cond, state)
        then_state = state.copy()
        else_state = state.copy()
        self.refine(expr.cond, then_state, else_state)
        then_state.must = state.must and cond_value.nonzero
        else_state.must = state.must and cond_value.is_zero
        then_value, then_state = self.eval(expr.then, then_state)
        else_value, else_state = self.eval(expr.otherwise, else_state)
        if cond_value.nonzero:
            then_state.must = state.must
            return then_value, then_state
        if cond_value.is_zero:
            else_state.must = state.must
            return else_value, else_state
        merged = then_state.merge(else_state)
        merged.must = state.must
        return then_value.join(else_value), merged

    def _eval_call(self, expr: ast.Call, state: State) -> Tuple[Interval, State]:
        for arg in expr.args:
            _, state = self.eval(arg, state)
        return TOP, state

    # -- interval arithmetic ---------------------------------------------------

    def _binop_interval(
        self,
        op: str,
        left: Interval,
        right: Interval,
        result_type: Optional[ct.CType],
    ) -> Interval:
        """Transfer function for a binary operator, clamped at the result's
        C type so wrapping can never produce bounds that lie."""
        if op == "+":
            lo = None if left.lo is None or right.lo is None else left.lo + right.lo
            hi = None if left.hi is None or right.hi is None else left.hi + right.hi
            result = Interval(lo, hi)
        elif op == "-":
            lo = None if left.lo is None or right.hi is None else left.lo - right.hi
            hi = None if left.hi is None or right.lo is None else left.hi - right.lo
            result = Interval(lo, hi)
        elif op == "*":
            if (
                left.lo is not None
                and left.lo == left.hi
                and right.lo is not None
                and right.lo == right.hi
            ):
                result = Interval.const(left.lo * right.lo)
            else:
                result = TOP
        elif op == "&":
            # ``x & c`` with c >= 0 lands in [0, c] in two's complement,
            # whatever the sign of x — the generator's divisor guard.
            const = None
            if right.lo is not None and right.lo == right.hi and right.lo >= 0:
                const = right.lo
            elif left.lo is not None and left.lo == left.hi and left.lo >= 0:
                const = left.lo
            if const is not None:
                result = Interval(0, const)
            elif (
                left.lo is not None
                and left.lo >= 0
                and right.lo is not None
                and right.lo >= 0
            ):
                hi = (
                    None
                    if left.hi is None or right.hi is None
                    else min(left.hi, right.hi)
                )
                result = Interval(0, hi)
            else:
                result = TOP
        elif op == "|":
            # Setting the bits of a nonzero constant keeps the value nonzero
            # at any width where the constant survives wrapping.
            nonzero = False
            for side in (left, right):
                if side.lo is not None and side.lo == side.hi:
                    wrapped = (
                        result_type.wrap(side.lo)
                        if isinstance(result_type, ct.IntType)
                        else side.lo
                    )
                    if wrapped != 0:
                        nonzero = True
            if (
                left.lo is not None
                and left.lo >= 0
                and right.lo is not None
                and right.lo >= 0
                and left.hi is not None
                and right.hi is not None
            ):
                # Nonnegative | nonnegative stays below the next power of two.
                bound = max(left.hi, right.hi)
                bits = max(bound.bit_length(), 1)
                result = Interval(0, (1 << bits) - 1, nonzero)
            else:
                result = Interval(None, None, nonzero)
        elif op == "%":
            if (
                right.lo is not None
                and right.lo > 0
                and right.hi is not None
                and left.lo is not None
                and left.lo >= 0
            ):
                result = Interval(0, right.hi - 1)
            else:
                result = TOP
        elif op in ("==", "!=", "<", "<=", ">", ">="):
            result = Interval(0, 1)
        else:
            result = TOP  # /, shifts, ^ and anything else
        return clamp(result, result_type)

    # -- checks ---------------------------------------------------------------

    def _check_division(
        self, expr: ast.Expr, divisor: Interval, state: State
    ) -> None:
        from repro.lang.printer import print_expr

        op = expr.op if isinstance(expr, (ast.BinaryOp, ast.Assignment)) else "/"
        if divisor.is_zero:
            self.report(
                "div_by_zero",
                f"integer division by zero: the divisor of {print_expr(expr)!r} "
                f"is always 0",
                expr,
                state,
                definite=True,
            )
        elif divisor.may_be_zero() and (
            divisor.lo is not None or divisor.hi is not None
        ):
            # Only *bounded* ranges that include zero are worth reporting:
            # a completely unknown divisor (plain parameter, call result)
            # would flag essentially every division in real code.
            self.report(
                "possible_div_by_zero",
                f"divisor of {print_expr(expr)!r} may be 0 "
                f"(op {op!r}, bounds [{divisor.lo}, {divisor.hi}])",
                expr,
                state,
            )

    def _check_shift(
        self,
        expr: ast.Expr,
        count: Interval,
        state: State,
        target: Optional[ast.Expr] = None,
    ) -> None:
        from repro.lang.printer import print_expr

        shifted = target if target is not None else getattr(expr, "left", None)
        t = _int_ctype(shifted) if shifted is not None else None
        promoted = ct.integer_promote(t) if t is not None else ct.INT
        width = 8 * promoted.sizeof() if isinstance(promoted, ct.IntType) else 32
        out_of_range = (count.lo is not None and count.lo >= width) or (
            count.hi is not None and count.hi < 0
        )
        if out_of_range:
            self.report(
                "shift_width",
                f"shift count of {print_expr(expr)!r} is outside [0, {width - 1}] "
                f"(bounds [{count.lo}, {count.hi}]): well-defined here only "
                f"because the dialect masks counts, undefined in C",
                expr,
                state,
            )


def _is_integer_division_types(target: ast.Expr, value: ast.Expr) -> bool:
    for side in (target, value):
        t = getattr(side, "ctype", None)
        if t is not None and t.is_float():
            return False
    return True
