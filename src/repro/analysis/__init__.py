"""Static analysis over the Mini-C pipeline: trust the oracle, cheaply.

The differential fuzzer and the IO-equivalence scorer both assume the
reference pipeline is sound: a miscompile in our own lowering/backends or
silent UB in a generated program corrupts verdicts without failing any
test.  This package adds three static gates that catch broken artifacts
*before* they burn a compile+execute cycle:

* :mod:`repro.analysis.verifier` — a structural + typed-invariant checker
  over :mod:`repro.compiler.ir` (def-before-use, width/signedness
  discipline, cast shapes, branch targets, call arity, terminators),
  runnable standalone (``python -m repro.analysis.verifier``) and wired
  into ``lower_for_backend`` so every -O3 pass is validated individually
  with pass-attributed diagnostics;
* :mod:`repro.analysis.dataflow` / :mod:`repro.analysis.lint` — a forward
  interval/definite-assignment dataflow over the typechecked AST flagging
  possible division by zero, oversized shift counts, uninitialised reads
  and unreachable statements (``python -m repro.analysis.lint``), reused
  by :mod:`repro.eval.score` as a static pre-filter;
* :mod:`repro.analysis.sanitize` — UBSan/ASan compilation of the per-batch
  native translation unit with runtime reports parsed and attributed to
  the owning ``__caseN_*`` case.
"""

from typing import List

__all__: List[str] = [
    "Diagnostic",
    "IRVerificationError",
    "verify_function",
    "verify_function_or_raise",
    "Finding",
    "lint_program",
    "lint_source",
    "SanitizerConfig",
    "SanitizerReport",
    "parse_sanitizer_reports",
]


def __getattr__(name: str):
    if name in (
        "Diagnostic",
        "IRVerificationError",
        "verify_function",
        "verify_function_or_raise",
    ):
        from repro.analysis import verifier

        return getattr(verifier, name)
    if name in ("Finding", "lint_program", "lint_source"):
        from repro.analysis import lint

        return getattr(lint, name)
    if name in ("SanitizerConfig", "SanitizerReport", "parse_sanitizer_reports"):
        from repro.analysis import sanitize

        return getattr(sanitize, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
