"""Typed-invariant verifier for the Mini-C compiler IR.

The IR carries a representation invariant (see :class:`repro.compiler.ir.VReg`):
an integer register always holds the 64-bit sign-extension (signed) or
zero-extension (unsigned) of its ``bits``-wide value.  Lowering maintains it
with explicit ``sext*``/``zext*`` casts and every -O3 pass must preserve it —
a dropped re-extension is exactly the kind of bug that otherwise surfaces only
as a differential-fuzz needle thousands of cases later.

:func:`verify_function` checks, per instruction:

* every virtual register is defined (by a parameter or an earlier
  instruction) before it is used, with a consistent annotation;
* ``IRBinOp``/``IRCmp``/``IRUnary`` operands are *representable* at the
  instruction's ``(bits, unsigned)`` — an operand annotated wider than the
  operation means a narrowing cast was dropped, an equal-width operand with
  the opposite signedness means a re-extension was dropped (the shift count
  operand is exempt: the semantics mask it, so lowering passes it raw);
* ``IRCast`` destinations match the cast kind's ``(bits, unsigned)`` from
  :data:`repro.compiler.ir.WIDTH_CASTS` and float/int register classes are
  used consistently everywhere;
* integer constants are already wrapped into the width they are used at;
* branch/jump targets resolve to labels defined exactly once, frame
  addresses name real slots, call arity is consistent across call sites,
  and control cannot fall off the end of the function.

Diagnostics carry the optimisation pass after which the invariant broke
(``pass_name``), so a future opt bug reads ``after local_fold_and_propagate[1]``
instead of "the fuzzer found a divergence".

CLI (the IR is ISA-independent — both backends emit from the same
instruction list — so one run covers x86 and arm)::

    python -m repro.analysis.verifier --seed 0 --count 500
    python -m repro.analysis.verifier --seed 0 --count 500 --opt-levels O0,O3
    python -m repro.analysis.verifier path/to/file.c
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler import ir
from repro.lang import ctypes as ct

#: Callees the dialect treats as variadic: call sites legitimately disagree
#: on argument counts, so cross-site arity consistency is not checked.
VARIADIC_CALLEES = frozenset(
    {"printf", "fprintf", "sprintf", "snprintf", "scanf", "sscanf"}
)

#: Non-width IRCast kinds (width casts live in ir.WIDTH_CASTS).
_CLASS_CASTS = ("i2f", "f2i", "f2f")

_UNARY_OPS = ("neg", "not")

_LOAD_STORE_SIZES = (1, 2, 4, 8)


@dataclass(frozen=True)
class Diagnostic:
    """One invariant violation, attributed to the pass that introduced it."""

    function: str
    pass_name: str
    index: int  # instruction index, -1 for function-level findings
    message: str
    instr: str = ""

    def __str__(self) -> str:
        where = f"{self.function} after {self.pass_name}"
        if self.index >= 0:
            where += f", instr #{self.index}"
        text = f"[ir-verifier] {where}: {self.message}"
        if self.instr:
            text += f"   <{self.instr}>"
        return text


class IRVerificationError(Exception):
    """Raised by :func:`verify_function_or_raise` when the IR is broken."""

    def __init__(self, diagnostics: Sequence[Diagnostic]):
        self.diagnostics: List[Diagnostic] = list(diagnostics)
        super().__init__("\n".join(str(d) for d in self.diagnostics))

    @property
    def pass_name(self) -> str:
        return self.diagnostics[0].pass_name if self.diagnostics else "unknown"


def verify_function(
    func: ir.IRFunction,
    pass_name: str = "lowering",
    signatures: Optional[Dict[str, int]] = None,
) -> List[Diagnostic]:
    """Check every invariant on ``func`` and return the violations found.

    ``signatures`` optionally maps callee names to their parameter counts;
    the verified function's own name is always checked against its actual
    parameter list.
    """
    return _FunctionVerifier(func, pass_name, signatures or {}).run()


def verify_function_or_raise(
    func: ir.IRFunction,
    pass_name: str = "lowering",
    signatures: Optional[Dict[str, int]] = None,
) -> None:
    diagnostics = verify_function(func, pass_name, signatures)
    if diagnostics:
        raise IRVerificationError(diagnostics)


def _const_fits(value: int, bits: int, unsigned: bool) -> bool:
    """Is an integer immediate already wrapped into the width it is used at?"""
    if bits >= 64:
        return -(1 << 63) <= value < (1 << 64)
    return ct.int_type_for_bits(bits, unsigned).wrap(value) == value


def _operand_representable(reg: ir.VReg, bits: int, unsigned: bool) -> bool:
    """Is ``reg``'s 64-bit extension also a valid extension at (bits, unsigned)?

    Mirrors the no-op cases of lowering's ``_narrow``: at 64 bits any integer
    register is acceptable (no representation change happens at full width);
    below that, a wider register means a dropped narrowing cast, an
    equal-width register must agree on signedness, and a narrower register is
    only acceptable when its extension is reusable (unsigned source, or
    signed source feeding a signed operation).
    """
    if bits >= 64:
        return True
    if reg.bits > bits:
        return False
    if reg.bits == bits:
        return reg.unsigned == unsigned
    return reg.unsigned or not unsigned


class _FunctionVerifier:
    def __init__(
        self, func: ir.IRFunction, pass_name: str, signatures: Dict[str, int]
    ) -> None:
        self.func = func
        self.pass_name = pass_name
        self.signatures = dict(signatures)
        self.diagnostics: List[Diagnostic] = []
        self.labels: Dict[str, int] = {}
        # id -> the VReg value it was defined with (annotation consistency).
        self.defined: Dict[int, ir.VReg] = {}
        self.arities: Dict[str, Tuple[int, int]] = {}  # name -> (argc, index)
        # id -> known immediate for registers materialised by IRConst.
        # Lowering emits constants into default 64-bit registers (the wrapped
        # value's 64-bit pattern is simultaneously a valid narrow extension),
        # so operand checks judge a constant-valued register by its value,
        # not its annotation.
        self.const_values: Dict[int, Optional[int]] = {}

    # -- reporting ----------------------------------------------------------

    def report(self, index: int, instr: Optional[ir.IRInstr], message: str) -> None:
        self.diagnostics.append(
            Diagnostic(
                self.func.name,
                self.pass_name,
                index,
                message,
                str(instr) if instr is not None else "",
            )
        )

    # -- driver -------------------------------------------------------------

    def run(self) -> List[Diagnostic]:
        self._collect_labels()
        for param in self.func.params:
            self._define(param)
        for index, instr in enumerate(self.func.instrs):
            self._check_uses(index, instr)
            self._check_instr(index, instr)
            for dst in instr.defs():
                self._define(dst, index, instr)
                if isinstance(instr, ir.IRConst) and isinstance(instr.value, int):
                    self.const_values[dst.id] = instr.value
                else:
                    self.const_values[dst.id] = None
        self._check_terminator()
        return self.diagnostics

    def _define(
        self,
        reg: ir.VReg,
        index: int = -1,
        instr: Optional[ir.IRInstr] = None,
    ) -> None:
        seen = self.defined.get(reg.id)
        if seen is not None and seen != reg:
            self.report(
                index,
                instr,
                f"register %{'f' if reg.is_float else 'v'}{reg.id} redefined with "
                f"annotation (float={reg.is_float}, bits={reg.bits}, "
                f"unsigned={reg.unsigned}); originally (float={seen.is_float}, "
                f"bits={seen.bits}, unsigned={seen.unsigned})",
            )
        self.defined[reg.id] = reg

    # -- structural checks --------------------------------------------------

    def _collect_labels(self) -> None:
        for index, instr in enumerate(self.func.instrs):
            if isinstance(instr, ir.IRLabel):
                if instr.name in self.labels:
                    self.report(
                        index,
                        instr,
                        f"label {instr.name} defined more than once "
                        f"(first at instr #{self.labels[instr.name]})",
                    )
                else:
                    self.labels[instr.name] = index

    def _check_uses(self, index: int, instr: ir.IRInstr) -> None:
        for reg in instr.uses():
            seen = self.defined.get(reg.id)
            if seen is None:
                self.report(index, instr, f"use of undefined register {reg}")
            elif seen != reg:
                self.report(
                    index,
                    instr,
                    f"register {reg} used with annotation (float={reg.is_float}, "
                    f"bits={reg.bits}, unsigned={reg.unsigned}) but defined with "
                    f"(float={seen.is_float}, bits={seen.bits}, "
                    f"unsigned={seen.unsigned})",
                )

    def _check_target(self, index: int, instr: ir.IRInstr, target: str) -> None:
        if target not in self.labels:
            self.report(index, instr, f"branch target {target} is not a label")

    def _check_terminator(self) -> None:
        instrs = self.func.instrs
        if not instrs:
            self.report(-1, None, "function has an empty body")
            return
        last = instrs[-1]
        if not isinstance(last, (ir.IRRet, ir.IRJump, ir.IRBranch)):
            self.report(
                len(instrs) - 1,
                last,
                "control falls off the end of the function "
                "(last instruction is not ret/jmp/br)",
            )

    # -- operand typing -----------------------------------------------------

    def _check_int_operand(
        self,
        index: int,
        instr: ir.IRInstr,
        operand: ir.Operand,
        bits: int,
        unsigned: bool,
        what: str,
    ) -> None:
        if isinstance(operand, ir.VReg):
            if operand.is_float:
                self.report(
                    index, instr, f"{what} is a float register in an integer op"
                )
                return
            known = self.const_values.get(operand.id)
            if known is not None:
                if not _const_fits(known, bits, unsigned):
                    self.report(
                        index,
                        instr,
                        f"{what} {operand} holds immediate {known}, which is "
                        f"not wrapped at (bits={bits}, unsigned={unsigned})",
                    )
            elif not _operand_representable(operand, bits, unsigned):
                kind = (
                    "missing narrowing cast"
                    if operand.bits > bits
                    else "dropped re-extension (signedness mismatch)"
                )
                self.report(
                    index,
                    instr,
                    f"{what} {operand} (bits={operand.bits}, "
                    f"unsigned={operand.unsigned}) is not representable at the "
                    f"op's width (bits={bits}, unsigned={unsigned}): {kind}",
                )
        elif isinstance(operand, float):
            self.report(index, instr, f"{what} is a float constant in an integer op")
        elif not _const_fits(operand, bits, unsigned):
            self.report(
                index,
                instr,
                f"{what} constant {operand} is not wrapped at "
                f"(bits={bits}, unsigned={unsigned})",
            )

    def _check_float_operand(
        self, index: int, instr: ir.IRInstr, operand: ir.Operand, what: str
    ) -> None:
        if isinstance(operand, ir.VReg) and not operand.is_float:
            self.report(
                index, instr, f"{what} is an integer register in a float op"
            )

    def _check_shift_count(
        self, index: int, instr: ir.IRInstr, operand: ir.Operand
    ) -> None:
        # The shift count is masked by the width at execution time, so
        # lowering passes it unconverted: only the register class matters.
        if isinstance(operand, ir.VReg):
            if operand.is_float:
                self.report(index, instr, "shift count is a float register")
        elif isinstance(operand, float):
            self.report(index, instr, "shift count is a float constant")

    # -- per-instruction checks ---------------------------------------------

    def _check_instr(self, index: int, instr: ir.IRInstr) -> None:
        if isinstance(instr, ir.IRConst):
            self._check_const(index, instr)
        elif isinstance(instr, ir.IRMove):
            self._check_move(index, instr)
        elif isinstance(instr, ir.IRBinOp):
            self._check_binop(index, instr)
        elif isinstance(instr, ir.IRCmp):
            self._check_cmp(index, instr)
        elif isinstance(instr, ir.IRUnary):
            self._check_unary(index, instr)
        elif isinstance(instr, ir.IRCast):
            self._check_cast(index, instr)
        elif isinstance(instr, ir.IRLoad):
            self._check_load(index, instr)
        elif isinstance(instr, ir.IRStore):
            self._check_store(index, instr)
        elif isinstance(instr, ir.IRFrameAddr):
            if instr.slot not in self.func.slots:
                self.report(index, instr, f"frameaddr of unknown slot {instr.slot!r}")
            self._check_address_dst(index, instr, instr.dst)
        elif isinstance(instr, ir.IRGlobalAddr):
            self._check_address_dst(index, instr, instr.dst)
        elif isinstance(instr, ir.IRCall):
            self._check_call(index, instr)
        elif isinstance(instr, ir.IRJump):
            self._check_target(index, instr, instr.target)
        elif isinstance(instr, ir.IRBranch):
            self._check_target(index, instr, instr.true_target)
            self._check_target(index, instr, instr.false_target)
            if instr.cond.is_float:
                self.report(index, instr, "branch condition is a float register")
        elif isinstance(instr, ir.IRRet):
            self._check_ret(index, instr)
        elif not isinstance(instr, ir.IRLabel):
            self.report(index, instr, f"unknown instruction {type(instr).__name__}")

    def _check_address_dst(
        self, index: int, instr: ir.IRInstr, dst: ir.VReg
    ) -> None:
        if dst.is_float:
            self.report(index, instr, "address computed into a float register")
        elif dst.bits != 64:
            self.report(
                index, instr, f"address register annotated {dst.bits}-bit (want 64)"
            )

    def _check_const(self, index: int, instr: ir.IRConst) -> None:
        if instr.dst.is_float:
            return  # any numeric immediate is fine in the FP class
        if isinstance(instr.value, float):
            self.report(index, instr, "float immediate into an integer register")
        elif not _const_fits(instr.value, instr.dst.bits, instr.dst.unsigned):
            self.report(
                index,
                instr,
                f"immediate {instr.value} is not wrapped at the destination's "
                f"annotation (bits={instr.dst.bits}, unsigned={instr.dst.unsigned})",
            )

    def _check_move(self, index: int, instr: ir.IRMove) -> None:
        if instr.dst.is_float:
            self._check_float_operand(index, instr, instr.src, "move source")
            return
        self._check_int_operand(
            index, instr, instr.src, instr.dst.bits, instr.dst.unsigned, "move source"
        )

    def _check_binop(self, index: int, instr: ir.IRBinOp) -> None:
        if instr.op not in ir.BIN_OPS:
            self.report(index, instr, f"unknown binary op {instr.op!r}")
            return
        if instr.is_float:
            if not instr.dst.is_float:
                self.report(index, instr, "float op into an integer register")
            self._check_float_operand(index, instr, instr.left, "left operand")
            self._check_float_operand(index, instr, instr.right, "right operand")
            return
        if instr.dst.is_float:
            self.report(index, instr, "integer op into a float register")
        elif (instr.dst.bits, instr.dst.unsigned) != (instr.bits, instr.unsigned):
            self.report(
                index,
                instr,
                f"result register annotated (bits={instr.dst.bits}, "
                f"unsigned={instr.dst.unsigned}) but the op computes at "
                f"(bits={instr.bits}, unsigned={instr.unsigned})",
            )
        self._check_int_operand(
            index, instr, instr.left, instr.bits, instr.unsigned, "left operand"
        )
        if instr.op in ("shl", "shr"):
            self._check_shift_count(index, instr, instr.right)
        else:
            self._check_int_operand(
                index, instr, instr.right, instr.bits, instr.unsigned, "right operand"
            )

    def _check_cmp(self, index: int, instr: ir.IRCmp) -> None:
        if instr.op not in ir.CMP_OPS:
            self.report(index, instr, f"unknown comparison op {instr.op!r}")
            return
        if instr.dst.is_float:
            self.report(index, instr, "comparison result in a float register")
        if instr.is_float:
            self._check_float_operand(index, instr, instr.left, "left operand")
            self._check_float_operand(index, instr, instr.right, "right operand")
            return
        self._check_int_operand(
            index, instr, instr.left, instr.bits, instr.unsigned, "left operand"
        )
        self._check_int_operand(
            index, instr, instr.right, instr.bits, instr.unsigned, "right operand"
        )

    def _check_unary(self, index: int, instr: ir.IRUnary) -> None:
        if instr.op not in _UNARY_OPS:
            self.report(index, instr, f"unknown unary op {instr.op!r}")
            return
        if instr.is_float:
            if not instr.dst.is_float:
                self.report(index, instr, "float op into an integer register")
            self._check_float_operand(index, instr, instr.src, "operand")
            return
        if instr.dst.is_float:
            self.report(index, instr, "integer op into a float register")
        elif (instr.dst.bits, instr.dst.unsigned) != (instr.bits, instr.unsigned):
            self.report(
                index,
                instr,
                f"result register annotated (bits={instr.dst.bits}, "
                f"unsigned={instr.dst.unsigned}) but the op computes at "
                f"(bits={instr.bits}, unsigned={instr.unsigned})",
            )
        self._check_int_operand(
            index, instr, instr.src, instr.bits, instr.unsigned, "operand"
        )

    def _check_cast(self, index: int, instr: ir.IRCast) -> None:
        width = ir.WIDTH_CASTS.get(instr.kind)
        if width is not None:
            bits, unsigned = width
            if instr.dst.is_float:
                self.report(index, instr, "width cast into a float register")
            elif (instr.dst.bits, instr.dst.unsigned) != (bits, unsigned):
                self.report(
                    index,
                    instr,
                    f"{instr.kind} destination annotated (bits={instr.dst.bits}, "
                    f"unsigned={instr.dst.unsigned}); the cast produces "
                    f"(bits={bits}, unsigned={unsigned})",
                )
            if isinstance(instr.src, ir.VReg) and instr.src.is_float:
                self.report(index, instr, "width cast of a float register")
            elif isinstance(instr.src, float):
                self.report(index, instr, "width cast of a float constant")
            return
        if instr.kind == "i2f":
            if not instr.dst.is_float:
                self.report(index, instr, "i2f into an integer register")
            if isinstance(instr.src, ir.VReg) and instr.src.is_float:
                self.report(index, instr, "i2f of a float register")
        elif instr.kind == "f2i":
            if instr.dst.is_float:
                self.report(index, instr, "f2i into a float register")
            self._check_float_operand(index, instr, instr.src, "f2i source")
        elif instr.kind == "f2f":
            if not instr.dst.is_float:
                self.report(index, instr, "f2f into an integer register")
            self._check_float_operand(index, instr, instr.src, "f2f source")
        else:
            self.report(index, instr, f"unknown cast kind {instr.kind!r}")

    def _check_load(self, index: int, instr: ir.IRLoad) -> None:
        if instr.size not in _LOAD_STORE_SIZES:
            self.report(index, instr, f"load of unsupported size {instr.size}")
            return
        if instr.addr.is_float:
            self.report(index, instr, "load address in a float register")
        if instr.is_float:
            if not instr.dst.is_float:
                self.report(index, instr, "float load into an integer register")
            return
        if instr.dst.is_float:
            self.report(index, instr, "integer load into a float register")
            return
        if instr.size == 8:
            if instr.dst.bits != 64:
                self.report(
                    index,
                    instr,
                    f"8-byte load annotated {instr.dst.bits}-bit (want 64)",
                )
        else:
            expected = (8 * instr.size, not instr.signed)
            if (instr.dst.bits, instr.dst.unsigned) != expected:
                self.report(
                    index,
                    instr,
                    f"load{instr.size} (signed={instr.signed}) destination "
                    f"annotated (bits={instr.dst.bits}, "
                    f"unsigned={instr.dst.unsigned}); the extending load "
                    f"produces (bits={expected[0]}, unsigned={expected[1]})",
                )

    def _check_store(self, index: int, instr: ir.IRStore) -> None:
        if instr.size not in _LOAD_STORE_SIZES:
            self.report(index, instr, f"store of unsupported size {instr.size}")
            return
        if instr.addr.is_float:
            self.report(index, instr, "store address in a float register")
        if instr.is_float:
            self._check_float_operand(index, instr, instr.src, "store source")
        elif isinstance(instr.src, ir.VReg) and instr.src.is_float:
            self.report(index, instr, "float register in an integer store")
        elif isinstance(instr.src, float):
            self.report(index, instr, "float constant in an integer store")
        elif isinstance(instr.src, int) and not _const_fits(instr.src, 64, False):
            self.report(index, instr, f"store immediate {instr.src} out of range")

    def _check_call(self, index: int, instr: ir.IRCall) -> None:
        if instr.dst is not None and instr.dst.is_float != instr.float_ret:
            self.report(
                index,
                instr,
                f"call result register class (float={instr.dst.is_float}) "
                f"disagrees with float_ret={instr.float_ret}",
            )
        argc = len(instr.args)
        if instr.name == self.func.name:
            if argc != len(self.func.params):
                self.report(
                    index,
                    instr,
                    f"recursive call passes {argc} argument(s); "
                    f"{self.func.name} takes {len(self.func.params)}",
                )
            return
        if instr.name in VARIADIC_CALLEES:
            return
        expected = self.signatures.get(instr.name)
        if expected is not None:
            if argc != expected:
                self.report(
                    index,
                    instr,
                    f"call passes {argc} argument(s); "
                    f"{instr.name} takes {expected}",
                )
            return
        seen = self.arities.get(instr.name)
        if seen is None:
            self.arities[instr.name] = (argc, index)
        elif seen[0] != argc:
            self.report(
                index,
                instr,
                f"call passes {argc} argument(s); an earlier call site "
                f"(instr #{seen[1]}) passed {seen[0]}",
            )

    def _check_ret(self, index: int, instr: ir.IRRet) -> None:
        if instr.value is None:
            return
        if instr.is_float != self.func.returns_float:
            self.report(
                index,
                instr,
                f"ret is_float={instr.is_float} disagrees with the function's "
                f"returns_float={self.func.returns_float}",
            )
        if instr.is_float:
            self._check_float_operand(index, instr, instr.value, "return value")
        elif isinstance(instr.value, ir.VReg) and instr.value.is_float:
            self.report(
                index, instr, "float register returned from an integer function"
            )


# ---------------------------------------------------------------------------
# Standalone CLI
# ---------------------------------------------------------------------------


def _verify_program_source(
    source: str,
    opt_levels: Sequence[str],
    label: str,
    name: Optional[str] = None,
    verbose: bool = False,
) -> List[str]:
    """Lower ``source`` at each opt level with verification on; return failures."""
    # Import the canonical error class from the package: when this module
    # runs as ``python -m`` it executes as ``__main__`` and the module-level
    # ``IRVerificationError`` would be a different class object from the one
    # the driver raises.
    from repro.analysis.verifier import IRVerificationError as VerifierError
    from repro.compiler.driver import lower_for_backend
    from repro.lang.parser import parse_program
    from repro.lang.typecheck import TypeChecker

    program = parse_program(source)
    checker = TypeChecker(program)
    checker.check()
    failures: List[str] = []
    names = [f.name for f in program.functions()] if name is None else [name]
    for func_name in names:
        for opt_level in opt_levels:
            try:
                lower_for_backend(
                    program,
                    name=func_name,
                    opt_level=opt_level,
                    checker=checker,
                    verify_ir=True,
                )
            except VerifierError as exc:
                for diagnostic in exc.diagnostics:
                    failures.append(f"{label} [{opt_level}] {diagnostic}")
            else:
                if verbose:
                    print(f"  {label} {func_name} [{opt_level}]: ok")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.verifier",
        description="Verify IR invariants over generated programs or source files. "
        "The IR is ISA-independent (both backends emit from the same "
        "instruction list), so one run covers x86 and arm.",
    )
    parser.add_argument(
        "sources", nargs="*", help="Mini-C source files (default: seeded corpus)"
    )
    parser.add_argument("--seed", type=int, default=0, help="base corpus seed")
    parser.add_argument(
        "--count", type=int, default=500, help="number of generated programs"
    )
    parser.add_argument(
        "--max-stmts", type=int, default=12, help="statement budget per program"
    )
    parser.add_argument(
        "--opt-levels",
        default="O0,O3",
        help="comma-separated opt levels to verify (default O0,O3)",
    )
    parser.add_argument("--verbose", action="store_true", help="print per-case status")
    args = parser.parse_args(argv)

    opt_levels = [
        level.strip() for level in args.opt_levels.split(",") if level.strip()
    ]
    failures: List[str] = []
    checked = 0

    if args.sources:
        from pathlib import Path

        for path in args.sources:
            source = Path(path).read_text()
            failures.extend(
                _verify_program_source(source, opt_levels, path, verbose=args.verbose)
            )
            checked += 1
    else:
        from repro.testing.fuzz import case_seed
        from repro.testing.generator import ProgramGenerator

        for index in range(args.count):
            seed = case_seed(args.seed, index)
            case = ProgramGenerator(seed, max_stmts=args.max_stmts).generate()
            case_failures = _verify_program_source(
                case.source,
                opt_levels,
                f"case {index} (seed {seed})",
                name=case.name,
                verbose=args.verbose,
            )
            if case_failures:
                failures.extend(case_failures)
                print(f"case {index} (seed {seed}) FAILS verification:")
                for line in case_failures:
                    print(f"  {line}")
                print(case.source)
            checked += 1
            if not args.verbose and checked % 100 == 0:
                print(
                    f"  {checked}/"
                    f"{args.count if not args.sources else checked} verified"
                )

    if failures:
        print(
            f"\n{len(failures)} violation(s) across {checked} program(s) "
            f"at {'/'.join(opt_levels)}"
        )
        return 1
    print(
        f"\nall {checked} program(s) verify clean at {'/'.join(opt_levels)} "
        f"({len(opt_levels)} lowering(s) each; IR shared by both backends)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
