"""Mini-C UB/dataflow linter: ``python -m repro.analysis.lint``.

A thin reporting layer over :mod:`repro.analysis.dataflow`: each dataflow
fact that indicates undefined behaviour (in C) or a guaranteed runtime trap
(in the dialect) becomes a :class:`Finding`.

Severities:

* ``error`` — ``div_by_zero``: the divisor interval is exactly ``[0, 0]``;
  under the dialect's semantics the division *will* trap if it executes.
  When the finding is also ``must_execute``, every call traps, which is
  what lets :mod:`repro.eval.score` assign a "trap" verdict without
  compiling or running the candidate.
* ``warning`` — ``possible_div_by_zero`` (a bounded divisor range that
  includes zero), ``shift_width`` (count provably outside ``[0, width)``:
  defined here because the dialect masks counts, undefined in C — exactly
  what the UBSan leg reports), ``uninitialized`` (scalar local read before
  assignment) and ``unreachable``.

CLI::

    python -m repro.analysis.lint file.c [file2.c ...]
    python -m repro.analysis.lint --seed 0 --count 500          # generated corpus
    python -m repro.analysis.lint --seed 0 --count 500 --fail-on warning
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import List, Optional

from repro.lang import ast_nodes as ast
from repro.lang.parser import parse_program
from repro.lang.typecheck import TypeChecker

#: Finding kind -> severity.
SEVERITIES = {
    "div_by_zero": "error",
    "possible_div_by_zero": "warning",
    "shift_width": "warning",
    "uninitialized": "warning",
    "unreachable": "warning",
}


@dataclass(frozen=True)
class Finding:
    """One linter diagnostic.

    ``definite`` marks facts proven under the dialect's semantics (today:
    a divisor interval of exactly ``[0, 0]``); ``must_execute`` marks
    program points that run on every call.  Both together make the finding
    strong enough to predict a runtime trap without executing.
    """

    kind: str
    severity: str
    function: str
    message: str
    definite: bool = False
    must_execute: bool = False

    @property
    def predicts_trap(self) -> bool:
        """Will every call of this function trap at this finding's site?"""
        return self.kind == "div_by_zero" and self.definite and self.must_execute

    def __str__(self) -> str:
        qualifier = " [every call traps]" if self.predicts_trap else ""
        return f"{self.severity}: {self.function}: {self.message}{qualifier}"

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "severity": self.severity,
            "function": self.function,
            "message": self.message,
            "definite": self.definite,
            "must_execute": self.must_execute,
        }


def lint_function(func: ast.FunctionDef) -> List[Finding]:
    """Lint one (already typechecked) function definition."""
    from repro.analysis import dataflow

    findings: List[Finding] = []

    def sink(kind: str, message: str, node, definite: bool, must: bool) -> None:
        findings.append(
            Finding(
                kind,
                SEVERITIES.get(kind, "warning"),
                func.name,
                message,
                definite,
                must,
            )
        )

    dataflow.analyze_function(func, sink)
    return findings


def lint_program(program: ast.Program, name: Optional[str] = None) -> List[Finding]:
    """Lint every function (or just ``name``) of a **typechecked** program.

    The analysis reads the ``ctype`` annotations the type checker leaves on
    expressions; run :class:`~repro.lang.typecheck.TypeChecker` first (or
    use :func:`lint_source`, which does).
    """
    functions = program.functions() if name is None else []
    if name is not None:
        func = program.function(name)
        if func is not None:
            functions = [func]
    findings: List[Finding] = []
    for func in functions:
        findings.extend(lint_function(func))
    return findings


def lint_source(source: str, name: Optional[str] = None) -> List[Finding]:
    """Parse, typecheck and lint Mini-C source text.

    Raises the parser/lexer errors of invalid source; type errors do not
    block linting (the analysis degrades to TOP where annotations are
    missing), mirroring how the scorer lints candidates that passed the
    front-end gate.
    """
    program = parse_program(source)
    checker = TypeChecker(program)
    checker.check()
    return lint_program(program, name=name)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="UB/dataflow linter for Mini-C sources or the generated corpus.",
    )
    parser.add_argument(
        "sources", nargs="*", help="Mini-C source files (default: seeded corpus)"
    )
    parser.add_argument("--seed", type=int, default=0, help="base corpus seed")
    parser.add_argument(
        "--count", type=int, default=100, help="number of generated programs"
    )
    parser.add_argument(
        "--max-stmts", type=int, default=12, help="statement budget per program"
    )
    parser.add_argument(
        "--fail-on",
        choices=("error", "warning", "never"),
        default="error",
        help="exit nonzero when a finding of at least this severity appears "
        "(default error)",
    )
    parser.add_argument("--quiet", action="store_true", help="summary only")
    args = parser.parse_args(argv)

    findings: List[Finding] = []
    checked = 0
    if args.sources:
        from pathlib import Path

        for path in args.sources:
            for finding in lint_source(Path(path).read_text()):
                findings.append(finding)
                if not args.quiet:
                    print(f"{path}: {finding}")
            checked += 1
    else:
        from repro.testing.fuzz import case_seed
        from repro.testing.generator import ProgramGenerator

        for index in range(args.count):
            seed = case_seed(args.seed, index)
            case = ProgramGenerator(seed, max_stmts=args.max_stmts).generate()
            case_findings = lint_source(case.source, name=case.name)
            for finding in case_findings:
                findings.append(finding)
                if not args.quiet:
                    print(f"case {index} (seed {seed}): {finding}")
            checked += 1

    by_kind: dict = {}
    for finding in findings:
        by_kind[finding.kind] = by_kind.get(finding.kind, 0) + 1
    summary = ", ".join(f"{kind}={count}" for kind, count in sorted(by_kind.items()))
    print(
        f"linted {checked} input(s): {len(findings)} finding(s)"
        + (f" ({summary})" if summary else "")
    )
    if args.fail_on == "never":
        return 0
    threshold = ("error",) if args.fail_on == "error" else ("error", "warning")
    return 1 if any(f.severity in threshold for f in findings) else 0


if __name__ == "__main__":
    raise SystemExit(main())
