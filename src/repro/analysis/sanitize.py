"""Sanitizer-instrumented native legs for the differential pipeline.

The verifier and linter prove invariants statically; this module closes the
loop dynamically: every case's **Mini-C source is also valid C**, so it can
be compiled with the host gcc under ``-fsanitize=undefined`` (optionally
``address``) and driven over the same input vectors as the differential
legs.  Any runtime-error report is attributed back to the owning case and
surfaced by the oracle as a first-class observation (category
``"sanitizer"``), distinct from an IO divergence.

The leg is **report-only**: its outputs are never compared against the
interpreter, because gcc compiles the source under C semantics while the
dialect defines several behaviours C leaves undefined.  The sanitizer
flags are trimmed accordingly:

* ``-fwrapv`` / ``-fno-sanitize=signed-integer-overflow`` — the dialect
  wraps two's-complement;
* ``-fno-sanitize=shift-base`` — left-shifting negative values wraps;
* ``-fno-sanitize=float-cast-overflow`` — out-of-range ``f2i`` is defined
  by the IR semantics;
* ``shift-exponent``, ``integer-divide-by-zero`` etc. stay **on**: the
  dialect masks shift counts and traps on division, so a report here marks
  exactly the inputs where C and the dialect part ways — the UB boundary
  the paper's IO-equivalence argument has to respect.

Batching mirrors :class:`repro.testing.native.NativeBatch`: one binary per
batch, ``PAIR n``/``DONE n`` markers to attribute traps, one extra
subprocess per trap/timeout to resume past it.  Unlike the assembly batch,
each case is compiled as its **own translation unit** (``<tag>_caseN.c``)
so typedef names and struct tags cannot collide across cases and sanitizer
reports carry the owning case's file name — that file name *is* the
attribution.  Only external-linkage symbols (defined functions and
non-static globals) need the ``__caseN_`` rename.

Cases whose programs use structs are skipped (``skipped`` records why):
the dialect packs struct layout while gcc pads it, so the packed argument
buffers would be misread under C compilation.
"""

from __future__ import annotations

import re
import subprocess
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.lang import ctypes as ct
from repro.lang.printer import type_to_str
from repro.testing.frontend import CaseContext
from repro.testing.native import (
    _BITS_HELPER,
    BatchExecutionError,
    _encode_argument,
    _prototype,
    _scalar_literal,
)

#: UBSan checks disabled because the dialect defines the behaviour.
UNDEFINED_DISABLED = ("shift-base", "signed-integer-overflow", "float-cast-overflow")


@dataclass(frozen=True)
class SanitizerConfig:
    """Which sanitizers to build the leg with.

    ``kinds`` is any subset of ``("undefined", "address")``.
    """

    kinds: Tuple[str, ...] = ("undefined",)
    run_timeout: float = 10.0

    def cflags(self) -> List[str]:
        flags: List[str] = []
        if "undefined" in self.kinds:
            flags.append("-fsanitize=undefined")
            flags.append("-fno-sanitize=" + ",".join(UNDEFINED_DISABLED))
        if "address" in self.kinds:
            flags.append("-fsanitize=address")
        flags.append("-fwrapv")
        return flags


@dataclass(frozen=True)
class SanitizerReport:
    """One sanitizer finding, attributed to its owning case."""

    case_index: int
    kind: str  # "runtime" (UBSan, non-fatal) | "fatal" (ASan or hard stop)
    location: str  # "fileN.c:LINE:COL" for runtime reports, "" otherwise
    message: str

    def __str__(self) -> str:
        where = f" at {self.location}" if self.location else ""
        return f"case {self.case_index}{where}: {self.message}"


_REPORT_RE = re.compile(r"([^\s:]+\.c):(\d+):(\d+): runtime error: (.+)")


def parse_sanitizer_reports(
    stderr: str, case_for_file: Dict[str, int]
) -> List[SanitizerReport]:
    """Extract UBSan ``runtime error`` lines and map them to case indices.

    ``case_for_file`` maps translation-unit *file names* (no directory) to
    case indices; reports naming unknown files are dropped.  Duplicate
    (case, location, message) triples — the same site firing on several
    inputs — are collapsed to one report.
    """
    reports: List[SanitizerReport] = []
    seen = set()
    for match in _REPORT_RE.finditer(stderr):
        fname = Path(match.group(1)).name
        case_index = case_for_file.get(fname)
        if case_index is None:
            continue
        location = f"{fname}:{match.group(2)}:{match.group(3)}"
        key = (case_index, location, match.group(4).strip())
        if key in seen:
            continue
        seen.add(key)
        reports.append(
            SanitizerReport(case_index, "runtime", location, match.group(4).strip())
        )
    return reports


def sanitizer_supported(context: CaseContext) -> Optional[str]:
    """None when the case can run under the sanitized C leg, else the reason.

    Structs are the one layout the dialect and gcc disagree on (packed vs
    padded), so any program that declares or names one is skipped.
    """
    if context.program.structs():
        return "program declares a struct (packed vs padded layout)"
    if "struct" in context.source:
        return "program references a struct type (packed vs padded layout)"
    return None


def _mangle(index: int, name: str) -> str:
    return f"__case{index}_{name}"


def _rename_c_symbols(text: str, index: int, names: Sequence[str]) -> str:
    """Whole-word rename of one case's external-linkage symbols.

    Same textual contract as the assembly batch rename: generator- and
    corpus-produced identifiers are plain words that never collide with C
    keywords, so ``\\b``-delimited substitution is sound.  No ``.L`` pass —
    C sources have no assembler-local labels.
    """
    for name in names:
        text = re.sub(rf"\b{re.escape(name)}\b", _mangle(index, name), text)
    return text


def _entry_symbol(index: int) -> str:
    return f"__san{index}_entry"


def _make_wrapper(index: int, context: CaseContext) -> str:
    """An adapter with the harness ABI, defined inside the case's own TU.

    The shared harness calls through ``long long``/``double`` prototypes
    (exactly like the assembly legs), but gcc compiles the case with its
    *real* C parameter types — so the adapter, which sees those types in
    scope, narrows each argument with an explicit cast.  It is emitted
    before the symbol rename, so its call to the entry point is renamed
    together with the definition.
    """
    func = context.function()
    params: List[str] = []
    args: List[str] = []
    for j, param in enumerate(func.params):
        decayed = ct.decay(context.resolve(param.type))
        if isinstance(decayed, ct.FloatType):
            params.append(f"double a{j}")
        else:
            params.append(f"long long a{j}")
        args.append(f"({type_to_str(decayed)})a{j}")
    call = f"{func.name}({', '.join(args)})"
    return_type = context.return_type()
    if ct.is_void(return_type):
        ret, body = "void", f"    {call};"
    elif isinstance(return_type, ct.FloatType):
        ret, body = "double", f"    return (double){call};"
    else:
        ret, body = "long long", f"    return (long long){call};"
    signature = f"{ret} {_entry_symbol(index)}({', '.join(params) or 'void'})"
    return f"{signature} {{\n{body}\n}}\n"


@dataclass
class _SanEntry:
    """Per-case build products of a :class:`SanitizerBatch`."""

    index: int  # the caller's case index
    context: CaseContext
    inputs: List[Tuple]
    filename: str
    globals: List[Tuple[str, int]]  # (original name, byte size), non-static


class SanitizerBatch:
    """Many cases, one sanitizer-instrumented binary, one run per batch.

    ``cases`` is a sequence of objects exposing ``source``, ``name`` and
    ``inputs`` (optionally ``context``).  Cases the leg cannot soundly run
    are recorded in ``skipped`` (case index → reason) rather than built;
    cases gcc rejects as C are skipped the same way after one rebuild.
    """

    PER_PAIR_ALLOWANCE = 0.1

    def __init__(
        self,
        cases: Sequence[Any],
        workdir: Path,
        config: Optional[SanitizerConfig] = None,
        tag: str = "san",
    ) -> None:
        self.config = config if config is not None else SanitizerConfig()
        self.workdir = Path(workdir)
        self.tag = tag
        self.skipped: Dict[int, str] = {}
        self.entries: List[_SanEntry] = []
        self._pairs: List[Tuple[int, int]] = []  # flat -> (entry pos, input index)
        self._reports: Optional[List[SanitizerReport]] = None

        for index, case in enumerate(cases):
            context = getattr(case, "context", None)
            if context is None:
                context = CaseContext(case.source, case.name)
            reason = sanitizer_supported(context)
            if reason is not None:
                self.skipped[index] = reason
                continue
            entry = self._write_case_tu(index, context, list(case.inputs))
            self.entries.append(entry)
        self._build()
        for pos, entry in enumerate(self.entries):
            for input_index in range(len(entry.inputs)):
                self._pairs.append((pos, input_index))

    # -- build ---------------------------------------------------------------

    def _write_case_tu(
        self, index: int, context: CaseContext, inputs: List[Tuple]
    ) -> _SanEntry:
        program = context.program
        defined = [f.name for f in program.functions()]
        globals_decls = [g for g in program.globals() if g.storage != "extern"]
        rename = defined + [g.name for g in globals_decls]
        visible = [
            (g.name, context.global_type(g.name).sizeof())
            for g in globals_decls
            if g.storage != "static"
        ]
        text = context.source + "\n" + _make_wrapper(index, context)
        text = _rename_c_symbols(text, index, rename)
        filename = f"{self.tag}_case{index}.c"
        (self.workdir / filename).write_text(text)
        return _SanEntry(index, context, inputs, filename, visible)

    def _build(self) -> None:
        if not self.entries:
            self.binary = None
            return
        harness_path = self.workdir / f"{self.tag}_main.c"
        harness_path.write_text(self._generate_harness())
        self.binary = self.workdir / self.tag
        sources = [harness_path] + [self.workdir / e.filename for e in self.entries]
        command = (
            ["gcc", "-O0", "-w", "-no-pie"]
            + self.config.cflags()
            + ["-o", str(self.binary), *map(str, sources)]
        )
        try:
            subprocess.run(command, check=True, capture_output=True, timeout=300)
        except subprocess.CalledProcessError as exc:
            # A case gcc rejects as C (the dialect is *almost* a subset)
            # becomes a skip, and the batch is rebuilt once without it.
            stderr = (exc.stderr or b"").decode("utf-8", "replace")
            rejected = [e for e in self.entries if e.filename in stderr]
            if not rejected:
                raise BatchExecutionError(
                    f"sanitizer batch build failed: {stderr[-2000:]}"
                ) from exc
            for entry in rejected:
                self.skipped[entry.index] = "gcc rejected the source as C"
                self.entries.remove(entry)
            self._build()

    def _generate_harness(self) -> str:
        lines = [
            "#include <stdio.h>",
            "#include <stdlib.h>",
            "#include <string.h>",
            "",
        ]
        for entry in self.entries:
            context = entry.context
            lines.append(
                _prototype(
                    _entry_symbol(entry.index),
                    context.param_types(),
                    context.return_type(),
                )
            )
            for gname, gsize in entry.globals:
                lines.append(f"extern unsigned char {_mangle(entry.index, gname)}[];")
                lines.append(
                    f"static unsigned char snap{entry.index}_{gname}[{gsize}];"
                )
        lines.append(_BITS_HELPER)
        lines.append("int main(int argc, char **argv) {")
        lines.append("    long start = argc > 1 ? atol(argv[1]) : 0;")
        lines.append("    long pair = -1;")
        for entry in self.entries:
            for gname, gsize in entry.globals:
                lines.append(
                    f"    memcpy(snap{entry.index}_{gname}, "
                    f"{_mangle(entry.index, gname)}, {gsize});"
                )
        for entry in self.entries:
            param_types = entry.context.param_types()
            for input_index, args in enumerate(entry.inputs):
                call_args: List[str] = []
                decls: List[str] = []
                for j, (value, ptype) in enumerate(zip(args, param_types)):
                    buf = _encode_argument(value, ptype, entry.context.resolve)
                    if buf is None:
                        call_args.append(_scalar_literal(value, ptype))
                    else:
                        cname = f"in{entry.index}_{input_index}_{j}"
                        data = ", ".join(str(b) for b in buf.data)
                        decls.append(
                            f"        static unsigned char {cname}[] = {{ {data} }};"
                        )
                        call_args.append(f"(long long){cname}")
                lines.append("    pair++;")
                lines.append("    if (pair >= start) {")
                lines.extend(decls)
                lines.append('        printf("PAIR %ld\\n", pair); fflush(stdout);')
                for gname, gsize in entry.globals:
                    lines.append(
                        f"        memcpy({_mangle(entry.index, gname)}, "
                        f"snap{entry.index}_{gname}, {gsize});"
                    )
                lines.append(
                    f"        {_entry_symbol(entry.index)}({', '.join(call_args)});"
                )
                lines.append('        printf("DONE %ld\\n", pair); fflush(stdout);')
                lines.append("    }")
        lines.append("    return 0;")
        lines.append("}")
        return "\n".join(lines) + "\n"

    # -- execution -----------------------------------------------------------

    def _run_from(self, start: int) -> Tuple[Optional[int], str, Optional[int]]:
        remaining = len(self._pairs) - start
        assert self.binary is not None
        try:
            proc = subprocess.run(
                [str(self.binary), str(start)],
                capture_output=True,
                text=True,
                timeout=self.config.run_timeout + self.PER_PAIR_ALLOWANCE * remaining,
            )
            stdout, stderr, returncode = proc.stdout, proc.stderr, proc.returncode
        except subprocess.TimeoutExpired as exc:
            stdout = exc.stdout or ""
            stderr = exc.stderr or ""
            if isinstance(stdout, bytes):
                stdout = stdout.decode("utf-8", "replace")
            if isinstance(stderr, bytes):
                stderr = stderr.decode("utf-8", "replace")
            returncode = None
        inflight: Optional[int] = None
        for line in stdout.splitlines():
            tag, _, payload = line.partition(" ")
            if tag == "PAIR":
                inflight = int(payload)
            elif tag == "DONE":
                inflight = None
        return inflight, stderr, returncode

    def run(self) -> List[SanitizerReport]:
        """Execute every (case, input) pair; return the attributed reports.

        A pair that traps or times out is resumed past, exactly like the
        assembly batch — an ordinary dialect trap (SIGFPE on division by
        zero) is *not* a sanitizer finding, only ``runtime error`` lines
        and fatal sanitizer aborts are.
        """
        if self._reports is not None:
            return self._reports
        reports: List[SanitizerReport] = []
        if not self.entries:
            self._reports = reports
            return reports
        case_for_file = {entry.filename: entry.index for entry in self.entries}
        stderr_parts: List[str] = []
        start = 0
        total = len(self._pairs)
        while start < total:
            inflight, stderr, returncode = self._run_from(start)
            stderr_parts.append(stderr)
            if returncode == 0 and inflight is None:
                break
            if inflight is None:
                raise BatchExecutionError(
                    f"sanitizer binary failed with status {returncode!r} "
                    f"outside any case (started at pair {start})"
                )
            if "Sanitizer" in stderr and returncode not in (0, None):
                pos = self._pairs[inflight][0]
                first = next(
                    (
                        line.strip()
                        for line in stderr.splitlines()
                        if "Sanitizer" in line
                    ),
                    "fatal sanitizer stop",
                )
                reports.append(
                    SanitizerReport(self.entries[pos].index, "fatal", "", first)
                )
            start = inflight + 1
        reports.extend(parse_sanitizer_reports("\n".join(stderr_parts), case_for_file))
        self._reports = reports
        return reports

    def reports_by_case(self) -> Dict[int, List[SanitizerReport]]:
        out: Dict[int, List[SanitizerReport]] = {}
        for report in self.run():
            out.setdefault(report.case_index, []).append(report)
        return out


__all__ = [
    "SanitizerBatch",
    "SanitizerConfig",
    "SanitizerReport",
    "parse_sanitizer_reports",
    "sanitizer_supported",
]
