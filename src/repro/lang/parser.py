"""Recursive-descent parser for Mini-C.

The parser is deliberately forgiving: decompiler output (both from the
neural model and from the rule-based baselines) is frequently slightly
malformed, and the evaluation pipeline wants to classify those hypotheses as
"does not compile" rather than crash.  All syntactic problems are reported
by raising :class:`ParseError`.

Typedef names are tracked so that ``my_int x;`` parses as a declaration even
when ``my_int`` has no visible definition — this is what feeds the
type-inference engine.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.lang import ast_nodes as ast
from repro.lang import ctypes as ct
from repro.lang.lexer import (
    Token,
    TokenKind,
    parse_float_literal,
    parse_int_literal,
    tokenize,
    unescape_string,
)


class ParseError(Exception):
    """Raised when the token stream is not a valid Mini-C program."""


_TYPE_KEYWORDS = {
    "void",
    "char",
    "short",
    "int",
    "long",
    "float",
    "double",
    "signed",
    "unsigned",
    "struct",
    "union",
    "enum",
    "const",
    "volatile",
    "restrict",
    "__restrict",
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "&=", "|=", "^="}


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast_nodes.Program`."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0
        self.typedef_names: Set[str] = set(ct.BUILTIN_TYPEDEFS)
        self.struct_tags: Set[str] = set()

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _check_punct(self, text: str) -> bool:
        return self._peek().is_punct(text)

    def _check_keyword(self, text: str) -> bool:
        return self._peek().is_keyword(text)

    def _accept_punct(self, text: str) -> bool:
        if self._check_punct(text):
            self._advance()
            return True
        return False

    def _accept_keyword(self, text: str) -> bool:
        if self._check_keyword(text):
            self._advance()
            return True
        return False

    def _expect_punct(self, text: str) -> Token:
        token = self._peek()
        if not token.is_punct(text):
            raise ParseError(
                f"expected {text!r} but found {token.text!r} at line {token.line}"
            )
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise ParseError(
                f"expected identifier but found {token.text!r} at line {token.line}"
            )
        return self._advance()

    # -- type parsing -------------------------------------------------------

    def _at_type_start(self) -> bool:
        token = self._peek()
        if token.kind is TokenKind.KEYWORD and token.text in _TYPE_KEYWORDS:
            return True
        if token.kind is TokenKind.KEYWORD and token.text in (
            "static", "extern", "inline", "typedef"
        ):
            return True
        if token.kind is TokenKind.IDENT and token.text in self.typedef_names:
            return True
        return False

    def _parse_type_specifier(self) -> ct.CType:
        """Parse a type specifier (no declarator part)."""
        # Skip qualifiers.
        while (
            self._peek().text
            in ("const", "volatile", "restrict", "__restrict", "inline")
            and self._peek().kind is TokenKind.KEYWORD
        ):
            self._advance()

        token = self._peek()
        if token.is_keyword("struct") or token.is_keyword("union"):
            self._advance()
            tag_token = self._peek()
            tag = ""
            if tag_token.kind is TokenKind.IDENT:
                tag = self._advance().text
            fields: List[ct.StructField] = []
            complete = False
            if self._check_punct("{"):
                self._advance()
                complete = True
                while not self._check_punct("}"):
                    ftype = self._parse_type_specifier()
                    while True:
                        fname, fulltype = self._parse_declarator(ftype)
                        fields.append(ct.StructField(fname, fulltype))
                        if not self._accept_punct(","):
                            break
                    self._expect_punct(";")
                self._expect_punct("}")
            if tag:
                self.struct_tags.add(tag)
            struct = ct.StructType(
                tag or f"__anon{id(token)}", fields, complete=complete
            )
            result: ct.CType = struct
        elif token.is_keyword("enum"):
            self._advance()
            if self._peek().kind is TokenKind.IDENT:
                self._advance()
            if self._check_punct("{"):
                self._advance()
                while not self._check_punct("}"):
                    self._advance()
                self._expect_punct("}")
            result = ct.INT
        elif token.kind is TokenKind.KEYWORD and token.text in _TYPE_KEYWORDS:
            result = self._parse_basic_type()
        elif token.kind is TokenKind.IDENT and token.text in self.typedef_names:
            self._advance()
            builtin = ct.BUILTIN_TYPEDEFS.get(token.text)
            result = builtin if builtin is not None else ct.NamedType(token.text)
        elif token.kind is TokenKind.IDENT:
            # Unknown identifier in a type position: treat as a named type so
            # that hypothesis code with undeclared typedefs still parses.
            self._advance()
            result = ct.NamedType(token.text)
        else:
            raise ParseError(
                f"expected type but found {token.text!r} at line {token.line}"
            )

        while (
            self._peek().text in ("const", "volatile", "restrict", "__restrict")
            and self._peek().kind is TokenKind.KEYWORD
        ):
            self._advance()
        return result

    def _parse_basic_type(self) -> ct.CType:
        unsigned = False
        signed = False
        parts: List[str] = []
        while True:
            token = self._peek()
            if token.is_keyword("unsigned"):
                unsigned = True
                self._advance()
            elif token.is_keyword("signed"):
                signed = True
                self._advance()
            elif token.kind is TokenKind.KEYWORD and token.text in (
                "void",
                "char",
                "short",
                "int",
                "long",
                "float",
                "double",
            ):
                parts.append(token.text)
                self._advance()
            elif token.kind is TokenKind.KEYWORD and token.text in (
                "const", "volatile", "restrict", "__restrict"
            ):
                self._advance()
            else:
                break
        if not parts:
            if unsigned or signed:
                return ct.IntType("int", unsigned=unsigned)
            raise ParseError(f"malformed type near {self._peek().text!r}")
        if parts == ["void"]:
            return ct.VOID
        if "double" in parts:
            return ct.DOUBLE
        if "float" in parts:
            return ct.FLOAT
        if "char" in parts:
            return ct.IntType("char", unsigned=unsigned)
        if "short" in parts:
            return ct.IntType("short", unsigned=unsigned)
        if parts.count("long") >= 2:
            return ct.IntType("long long", unsigned=unsigned)
        if "long" in parts:
            return ct.IntType("long", unsigned=unsigned)
        return ct.IntType("int", unsigned=unsigned)

    def _parse_declarator(self, base: ct.CType) -> Tuple[str, ct.CType]:
        """Parse ``* name [N]...`` style declarators.  Returns (name, type)."""
        t = base
        while self._accept_punct("*"):
            while (
                self._peek().text in ("const", "volatile", "restrict", "__restrict")
                and self._peek().kind is TokenKind.KEYWORD
            ):
                self._advance()
            t = ct.PointerType(t)
        name = ""
        if self._peek().kind is TokenKind.IDENT:
            name = self._advance().text
        # Array suffixes (innermost last).
        lengths: List[Optional[int]] = []
        while self._accept_punct("["):
            if self._check_punct("]"):
                lengths.append(None)
            else:
                expr = self._parse_expression()
                lengths.append(_const_int(expr))
            self._expect_punct("]")
        for length in reversed(lengths):
            t = ct.ArrayType(t, length)
        return name, t

    # -- top level ----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        decls: List[ast.Node] = []
        while self._peek().kind is not TokenKind.EOF:
            # Tolerate stray semicolons.
            if self._accept_punct(";"):
                continue
            decls.append(self._parse_top_level())
        return ast.Program(decls)

    def _parse_top_level(self) -> ast.Node:
        if self._check_keyword("typedef"):
            return self._parse_typedef()

        storage = None
        while (
            self._peek().text in ("static", "extern", "inline")
            and self._peek().kind is TokenKind.KEYWORD
        ):
            word = self._advance().text
            if word in ("static", "extern"):
                storage = word

        base = self._parse_type_specifier()

        # Bare "struct tag {...};" definition.
        if isinstance(base, ct.StructType) and self._check_punct(";"):
            self._advance()
            return ast.StructDecl(base.tag, [(f.name, f.type) for f in base.fields])

        name, full_type = self._parse_declarator(base)
        if not name:
            raise ParseError(f"expected declarator name near line {self._peek().line}")

        if self._check_punct("("):
            return self._parse_function_rest(name, full_type, storage)

        # Global variable declaration(s).
        return self._parse_global_var(name, full_type, base, storage)

    def _parse_typedef(self) -> ast.TypedefDecl:
        self._advance()  # typedef
        base = self._parse_type_specifier()
        name, full_type = self._parse_declarator(base)
        self._expect_punct(";")
        if not name:
            raise ParseError("typedef without a name")
        self.typedef_names.add(name)
        return ast.TypedefDecl(name, full_type)

    def _parse_function_rest(
        self, name: str, return_type: ct.CType, storage: Optional[str]
    ) -> ast.FunctionDef:
        self._expect_punct("(")
        params: List[ast.Param] = []
        variadic = False
        if not self._check_punct(")"):
            if self._check_keyword("void") and self._peek(1).is_punct(")"):
                self._advance()
            else:
                while True:
                    if self._check_punct("..."):
                        self._advance()
                        variadic = True
                        break
                    ptype_base = self._parse_type_specifier()
                    pname, ptype = self._parse_declarator(ptype_base)
                    params.append(ast.Param(pname, ptype))
                    if not self._accept_punct(","):
                        break
        self._expect_punct(")")
        if self._accept_punct(";"):
            return ast.FunctionDef(name, return_type, params, None, storage, variadic)
        body = self._parse_block()
        return ast.FunctionDef(name, return_type, params, body, storage, variadic)

    def _parse_global_var(
        self,
        first_name: str,
        first_type: ct.CType,
        base: ct.CType,
        storage: Optional[str],
    ) -> ast.Node:
        decls: List[ast.Declaration] = []
        name, full_type = first_name, first_type
        while True:
            init: Optional[ast.Node] = None
            if self._accept_punct("="):
                init = self._parse_initializer()
            decls.append(ast.Declaration(name, full_type, init, storage))
            if not self._accept_punct(","):
                break
            name, full_type = self._parse_declarator(base)
        self._expect_punct(";")
        if len(decls) == 1:
            return decls[0]
        # Represent multi-declarator lines as a block of declarations.
        return ast.Block(list(decls))

    # -- statements ---------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        self._expect_punct("{")
        stmts: List[ast.Stmt] = []
        while not self._check_punct("}"):
            if self._peek().kind is TokenKind.EOF:
                raise ParseError("unterminated block")
            stmts.append(self._parse_statement())
        self._expect_punct("}")
        return ast.Block(stmts)

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.is_punct("{"):
            return self._parse_block()
        if token.is_punct(";"):
            self._advance()
            return ast.EmptyStmt()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("do"):
            return self._parse_do_while()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("return"):
            self._advance()
            value = None
            if not self._check_punct(";"):
                value = self._parse_expression()
            self._expect_punct(";")
            return ast.Return(value)
        if token.is_keyword("break"):
            self._advance()
            self._expect_punct(";")
            return ast.Break()
        if token.is_keyword("continue"):
            self._advance()
            self._expect_punct(";")
            return ast.Continue()
        if self._at_declaration_start():
            return self._parse_local_declaration()
        expr = self._parse_expression()
        self._expect_punct(";")
        return ast.ExprStmt(expr)

    def _at_declaration_start(self) -> bool:
        token = self._peek()
        if token.kind is TokenKind.KEYWORD and token.text in _TYPE_KEYWORDS | {
            "static", "extern"
        }:
            return True
        if token.kind is TokenKind.IDENT and token.text in self.typedef_names:
            # Disambiguate "T x;" (decl) from "T = 3;" / "T(x);" (expr).
            nxt = self._peek(1)
            if nxt.kind is TokenKind.IDENT or nxt.is_punct("*"):
                return True
        return False

    def _parse_local_declaration(self) -> ast.Stmt:
        storage = None
        while (
            self._peek().text in ("static", "extern")
            and self._peek().kind is TokenKind.KEYWORD
        ):
            storage = self._advance().text
        base = self._parse_type_specifier()
        decls: List[ast.Stmt] = []
        while True:
            name, full_type = self._parse_declarator(base)
            if not name:
                raise ParseError(f"expected variable name at line {self._peek().line}")
            init: Optional[ast.Node] = None
            if self._accept_punct("="):
                init = self._parse_initializer()
            decls.append(ast.Declaration(name, full_type, init, storage))
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        if len(decls) == 1:
            return decls[0]
        return ast.Block(decls)

    def _parse_initializer(self) -> ast.Node:
        if self._check_punct("{"):
            self._advance()
            items: List[ast.Node] = []
            while not self._check_punct("}"):
                items.append(self._parse_initializer())
                if not self._accept_punct(","):
                    break
            self._expect_punct("}")
            return ast.InitializerList(items)
        return self._parse_assignment_expr()

    def _parse_if(self) -> ast.If:
        self._advance()
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        then = self._parse_statement()
        otherwise = None
        if self._accept_keyword("else"):
            otherwise = self._parse_statement()
        return ast.If(cond, then, otherwise)

    def _parse_while(self) -> ast.While:
        self._advance()
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.While(cond, body)

    def _parse_do_while(self) -> ast.DoWhile:
        self._advance()
        body = self._parse_statement()
        if not self._accept_keyword("while"):
            raise ParseError("expected 'while' after do-body")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.DoWhile(body, cond)

    def _parse_for(self) -> ast.For:
        self._advance()
        self._expect_punct("(")
        init: Optional[ast.Node] = None
        if not self._check_punct(";"):
            if self._at_declaration_start():
                init = self._parse_local_declaration()
            else:
                expr = self._parse_expression()
                self._expect_punct(";")
                init = ast.ExprStmt(expr)
        else:
            self._advance()
        cond = None
        if not self._check_punct(";"):
            cond = self._parse_expression()
        self._expect_punct(";")
        step = None
        if not self._check_punct(")"):
            step = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.For(init, cond, step, body)

    # -- expressions (precedence climbing) ----------------------------------

    def _parse_expression(self) -> ast.Expr:
        expr = self._parse_assignment_expr()
        while self._accept_punct(","):
            right = self._parse_assignment_expr()
            expr = ast.BinaryOp(",", expr, right)
        return expr

    def _parse_assignment_expr(self) -> ast.Expr:
        left = self._parse_conditional()
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.text in _ASSIGN_OPS:
            op = self._advance().text
            value = self._parse_assignment_expr()
            return ast.Assignment(op, left, value)
        return left

    def _parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._accept_punct("?"):
            then = self._parse_expression()
            self._expect_punct(":")
            otherwise = self._parse_assignment_expr()
            return ast.Conditional(cond, then, otherwise)
        return cond

    _BINARY_LEVELS: List[List[str]] = [
        ["||"],
        ["&&"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", ">", "<=", ">="],
        ["<<", ">>"],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(self._BINARY_LEVELS):
            return self._parse_unary()
        ops = self._BINARY_LEVELS[level]
        left = self._parse_binary(level + 1)
        while True:
            token = self._peek()
            if token.kind is TokenKind.PUNCT and token.text in ops:
                op = self._advance().text
                right = self._parse_binary(level + 1)
                left = ast.BinaryOp(op, left, right)
            else:
                return left

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.text in (
            "-", "+", "!", "~", "*", "&"
        ):
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(token.text, operand)
        if token.is_punct("++") or token.is_punct("--"):
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(token.text, operand)
        if token.is_keyword("sizeof"):
            self._advance()
            if self._check_punct("(") and self._is_type_in_parens():
                self._advance()
                base = self._parse_type_specifier()
                _, full = self._parse_declarator(base)
                self._expect_punct(")")
                return ast.SizeOf(target_type=full)
            operand = self._parse_unary()
            return ast.SizeOf(operand=operand)
        if token.is_punct("(") and self._is_type_in_parens():
            self._advance()
            base = self._parse_type_specifier()
            _, full = self._parse_declarator(base)
            self._expect_punct(")")
            operand = self._parse_unary()
            return ast.Cast(full, operand)
        return self._parse_postfix()

    def _is_type_in_parens(self) -> bool:
        """Heuristically decide if the content after '(' is a type name."""
        token = self._peek(1)
        if token.kind is TokenKind.KEYWORD and token.text in _TYPE_KEYWORDS:
            return True
        if token.kind is TokenKind.IDENT and token.text in self.typedef_names:
            # "(T)" or "(T*)" are casts; "(T + x)" is an expression.
            nxt = self._peek(2)
            return nxt.is_punct(")") or nxt.is_punct("*")
        return False

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.is_punct("("):
                self._advance()
                args: List[ast.Expr] = []
                if not self._check_punct(")"):
                    while True:
                        args.append(self._parse_assignment_expr())
                        if not self._accept_punct(","):
                            break
                self._expect_punct(")")
                expr = ast.Call(expr, args)
            elif token.is_punct("["):
                self._advance()
                index = self._parse_expression()
                self._expect_punct("]")
                expr = ast.Index(expr, index)
            elif token.is_punct("."):
                self._advance()
                name = self._expect_ident().text
                expr = ast.Member(expr, name, arrow=False)
            elif token.is_punct("->"):
                self._advance()
                name = self._expect_ident().text
                expr = ast.Member(expr, name, arrow=True)
            elif token.is_punct("++") or token.is_punct("--"):
                self._advance()
                expr = ast.PostfixOp(token.text, expr)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INT_LIT:
            self._advance()
            return ast.IntLiteral(parse_int_literal(token.text), token.text)
        if token.kind is TokenKind.FLOAT_LIT:
            self._advance()
            return ast.FloatLiteral(parse_float_literal(token.text), token.text)
        if token.kind is TokenKind.CHAR_LIT:
            self._advance()
            text = unescape_string(token.text)
            value = ord(text[0]) if text else 0
            return ast.CharLiteral(value, token.text)
        if token.kind is TokenKind.STRING_LIT:
            self._advance()
            return ast.StringLiteral(unescape_string(token.text), token.text)
        if token.kind is TokenKind.IDENT:
            self._advance()
            return ast.Identifier(token.text)
        if token.is_punct("("):
            self._advance()
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        raise ParseError(f"unexpected token {token.text!r} at line {token.line}")


def _const_int(expr: ast.Expr) -> Optional[int]:
    """Evaluate a constant integer expression used as an array length."""
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.BinaryOp):
        left = _const_int(expr.left)
        right = _const_int(expr.right)
        if left is None or right is None:
            return None
        try:
            return {
                "+": left + right,
                "-": left - right,
                "*": left * right,
                "/": left // right if right else 0,
                "%": left % right if right else 0,
                "<<": left << right,
                ">>": left >> right,
            }.get(expr.op)
        except (ValueError, OverflowError):
            return None
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        inner = _const_int(expr.operand)
        return None if inner is None else -inner
    return None


def parse_program(source: str) -> ast.Program:
    """Parse Mini-C ``source`` into an AST (convenience wrapper)."""
    return Parser(tokenize(source)).parse_program()


def parse_function(source: str) -> ast.FunctionDef:
    """Parse a source snippet expected to contain exactly one function."""
    program = parse_program(source)
    functions = program.functions()
    if not functions:
        raise ParseError("no function definition found")
    return functions[0]
