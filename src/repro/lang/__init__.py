"""Mini-C language substrate.

This package provides the C-language infrastructure every other part of the
reproduction depends on:

* :mod:`repro.lang.lexer` — tokenisation of Mini-C source.
* :mod:`repro.lang.ast_nodes` — the abstract syntax tree.
* :mod:`repro.lang.parser` — a recursive-descent parser.
* :mod:`repro.lang.ctypes` — the C type system used by the checker, the
  compiler and the type-inference engine.
* :mod:`repro.lang.typecheck` — a semantic analyser that annotates the AST.
* :mod:`repro.lang.printer` — a pretty printer (AST → C source).
* :mod:`repro.lang.interpreter` — a behavioural interpreter used for the
  input/output equivalence checks.

The subset of C implemented here ("Mini-C") covers the constructs exercised
by the SLaDe evaluation: integer and floating point scalars, pointers,
arrays, structs, typedefs, global variables, the usual operators, control
flow (``if``/``while``/``for``/``break``/``continue``/``return``) and calls
to other functions including a small builtin libc.
"""

from repro.lang.lexer import Lexer, Token, TokenKind, tokenize
from repro.lang.parser import ParseError, Parser, parse_program
from repro.lang.printer import print_program
from repro.lang.typecheck import TypeChecker, TypeCheckError
from repro.lang.interpreter import Interpreter, RuntimeLimitExceeded, CInterpreterError

__all__ = [
    "Lexer",
    "Token",
    "TokenKind",
    "tokenize",
    "Parser",
    "ParseError",
    "parse_program",
    "print_program",
    "TypeChecker",
    "TypeCheckError",
    "Interpreter",
    "RuntimeLimitExceeded",
    "CInterpreterError",
]
