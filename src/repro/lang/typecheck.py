"""Semantic analysis for Mini-C.

The :class:`TypeChecker` resolves identifiers, assigns a
:class:`repro.lang.ctypes.CType` to every expression node and reports
semantic problems.  Two pieces of information produced here feed the rest of
the system:

* whether a hypothesis program "compiles" (no unresolved names or type
  errors) — the paper's *Compiles* feature, and
* the set of *missing declarations* (unknown typedefs, undeclared globals
  and undeclared functions) — the input to the type-inference engine in
  :mod:`repro.typeinfer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.lang import ast_nodes as ast
from repro.lang import ctypes as ct


class TypeCheckError(Exception):
    """Raised (in strict mode) when a program fails semantic analysis."""


#: Builtin library functions visible to every translation unit.
BUILTIN_FUNCTIONS: Dict[str, ct.FunctionType] = {
    "abs": ct.FunctionType(ct.INT, (ct.INT,)),
    "labs": ct.FunctionType(ct.LONG, (ct.LONG,)),
    "fabs": ct.FunctionType(ct.DOUBLE, (ct.DOUBLE,)),
    "fabsf": ct.FunctionType(ct.FLOAT, (ct.FLOAT,)),
    "sqrt": ct.FunctionType(ct.DOUBLE, (ct.DOUBLE,)),
    "sqrtf": ct.FunctionType(ct.FLOAT, (ct.FLOAT,)),
    "sin": ct.FunctionType(ct.DOUBLE, (ct.DOUBLE,)),
    "cos": ct.FunctionType(ct.DOUBLE, (ct.DOUBLE,)),
    "tan": ct.FunctionType(ct.DOUBLE, (ct.DOUBLE,)),
    "exp": ct.FunctionType(ct.DOUBLE, (ct.DOUBLE,)),
    "log": ct.FunctionType(ct.DOUBLE, (ct.DOUBLE,)),
    "pow": ct.FunctionType(ct.DOUBLE, (ct.DOUBLE, ct.DOUBLE)),
    "floor": ct.FunctionType(ct.DOUBLE, (ct.DOUBLE,)),
    "ceil": ct.FunctionType(ct.DOUBLE, (ct.DOUBLE,)),
    "memcpy": ct.FunctionType(
        ct.PointerType(ct.VOID), (
            ct.PointerType(ct.VOID), ct.PointerType(ct.VOID), ct.ULONG
        )
    ),
    "memset": ct.FunctionType(
        ct.PointerType(ct.VOID), (ct.PointerType(ct.VOID), ct.INT, ct.ULONG)
    ),
    "memmove": ct.FunctionType(
        ct.PointerType(ct.VOID), (
            ct.PointerType(ct.VOID), ct.PointerType(ct.VOID), ct.ULONG
        )
    ),
    "strlen": ct.FunctionType(ct.ULONG, (ct.PointerType(ct.CHAR),)),
    "strcpy": ct.FunctionType(
        ct.PointerType(ct.CHAR), (ct.PointerType(ct.CHAR), ct.PointerType(ct.CHAR))
    ),
    "strncpy": ct.FunctionType(
        ct.PointerType(ct.CHAR), (
            ct.PointerType(ct.CHAR), ct.PointerType(ct.CHAR), ct.ULONG
        )
    ),
    "strcmp": ct.FunctionType(
        ct.INT, (ct.PointerType(ct.CHAR), ct.PointerType(ct.CHAR))
    ),
    "strchr": ct.FunctionType(
        ct.PointerType(ct.CHAR), (ct.PointerType(ct.CHAR), ct.INT)
    ),
    "strcat": ct.FunctionType(
        ct.PointerType(ct.CHAR), (ct.PointerType(ct.CHAR), ct.PointerType(ct.CHAR))
    ),
    "malloc": ct.FunctionType(ct.PointerType(ct.VOID), (ct.ULONG,)),
    "calloc": ct.FunctionType(ct.PointerType(ct.VOID), (ct.ULONG, ct.ULONG)),
    "free": ct.FunctionType(ct.VOID, (ct.PointerType(ct.VOID),)),
    "printf": ct.FunctionType(ct.INT, (ct.PointerType(ct.CHAR),), variadic=True),
    "putchar": ct.FunctionType(ct.INT, (ct.INT,)),
    "isdigit": ct.FunctionType(ct.INT, (ct.INT,)),
    "isalpha": ct.FunctionType(ct.INT, (ct.INT,)),
    "isspace": ct.FunctionType(ct.INT, (ct.INT,)),
    "toupper": ct.FunctionType(ct.INT, (ct.INT,)),
    "tolower": ct.FunctionType(ct.INT, (ct.INT,)),
    "rand": ct.FunctionType(ct.INT, ()),
}


@dataclass
class MissingDeclarations:
    """The declarations a partial program refers to but does not define."""

    typedefs: Set[str] = field(default_factory=set)
    variables: Dict[str, ct.CType] = field(default_factory=dict)
    functions: Dict[str, ct.FunctionType] = field(default_factory=dict)
    struct_tags: Set[str] = field(default_factory=set)

    def is_empty(self) -> bool:
        return not (
            self.typedefs or self.variables or self.functions or self.struct_tags
        )


@dataclass
class CheckResult:
    """Outcome of semantic analysis."""

    errors: List[str] = field(default_factory=list)
    missing: MissingDeclarations = field(default_factory=MissingDeclarations)

    @property
    def ok(self) -> bool:
        return not self.errors and self.missing.is_empty()


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.vars: Dict[str, ct.CType] = {}

    def lookup(self, name: str) -> Optional[ct.CType]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None

    def define(self, name: str, t: ct.CType) -> None:
        self.vars[name] = t


class TypeChecker:
    """Resolve names and types over a :class:`repro.lang.ast_nodes.Program`."""

    def __init__(self, program: ast.Program, strict: bool = False) -> None:
        self.program = program
        self.strict = strict
        self.result = CheckResult()
        self.typedefs: Dict[str, ct.CType] = dict(ct.BUILTIN_TYPEDEFS)
        self.structs: Dict[str, ct.StructType] = {}
        self.functions: Dict[str, ct.FunctionType] = dict(BUILTIN_FUNCTIONS)
        self.global_scope = _Scope()
        self.current_return: ct.CType = ct.VOID

    # -- public API ---------------------------------------------------------

    def check(self) -> CheckResult:
        """Run semantic analysis and return the result.

        The result is also remembered as ``self.last_result`` so consumers
        sharing one checker across pipeline stages (interpreter, lowering,
        the differential oracle) can re-read it without re-running the pass.
        """
        self._collect_top_level()
        for decl in self.program.decls:
            if isinstance(decl, ast.FunctionDef) and decl.body is not None:
                self._check_function(decl)
        self.last_result = self.result
        if self.strict and not self.result.ok:
            summary = "; ".join(self.result.errors[:5]) or "missing declarations"
            raise TypeCheckError(summary)
        return self.result

    # -- pass 1: top level --------------------------------------------------

    def _collect_top_level(self) -> None:
        for decl in self.program.decls:
            if isinstance(decl, ast.TypedefDecl):
                self.typedefs[decl.name] = self._resolve(decl.type)
            elif isinstance(decl, ast.StructDecl):
                struct = ct.StructType(
                    decl.tag,
                    [ct.StructField(n, self._resolve(t)) for n, t in decl.fields],
                )
                self.structs[decl.tag] = struct
            elif isinstance(decl, ast.Declaration):
                self.global_scope.define(decl.name, self._resolve(decl.type))
                if decl.init is not None:
                    # Annotate initialiser expressions: the interpreter's
                    # static typing (and constant wrapping) relies on ctype.
                    self._check_initializer(
                        decl.init, self._resolve(decl.type), self.global_scope
                    )
            elif isinstance(decl, ast.Block):
                for inner in decl.stmts:
                    if isinstance(inner, ast.Declaration):
                        self.global_scope.define(inner.name, self._resolve(inner.type))
                        if inner.init is not None:
                            self._check_initializer(
                                inner.init, self._resolve(inner.type), self.global_scope
                            )
            elif isinstance(decl, ast.FunctionDef):
                params = tuple(self._resolve(p.type) for p in decl.params)
                self.functions[decl.name] = ct.FunctionType(
                    self._resolve(decl.return_type), params, decl.variadic
                )

    # -- type resolution ----------------------------------------------------

    def _resolve(self, t: ct.CType) -> ct.CType:
        """Resolve typedef names and struct tags inside a type."""
        if isinstance(t, ct.NamedType):
            if t.name in self.typedefs:
                return self._resolve(self.typedefs[t.name])
            self.result.missing.typedefs.add(t.name)
            return t
        if isinstance(t, ct.PointerType):
            return ct.PointerType(self._resolve(t.pointee))
        if isinstance(t, ct.ArrayType):
            return ct.ArrayType(self._resolve(t.element), t.length)
        if isinstance(t, ct.StructType):
            if t.fields:
                resolved = ct.StructType(
                    t.tag,
                    [ct.StructField(f.name, self._resolve(f.type)) for f in t.fields],
                    complete=True,
                )
                self.structs.setdefault(t.tag, resolved)
                return resolved
            if t.tag in self.structs:
                return self.structs[t.tag]
            self.result.missing.struct_tags.add(t.tag)
            return t
        if isinstance(t, ct.FunctionType):
            return ct.FunctionType(
                self._resolve(t.return_type),
                tuple(self._resolve(p) for p in t.param_types),
                t.variadic,
            )
        return t

    # -- pass 2: function bodies --------------------------------------------

    def _check_function(self, func: ast.FunctionDef) -> None:
        self.current_return = self._resolve(func.return_type)
        scope = _Scope(self.global_scope)
        for param in func.params:
            scope.define(param.name, ct.decay(self._resolve(param.type)))
        self._check_stmt(func.body, scope)

    def _check_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.Block):
            inner = _Scope(scope)
            for s in stmt.stmts:
                self._check_stmt(s, inner)
        elif isinstance(stmt, ast.Declaration):
            t = self._resolve(stmt.type)
            scope.define(stmt.name, t)
            if stmt.init is not None:
                self._check_initializer(stmt.init, t, scope)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            self._check_expr(stmt.cond, scope)
            self._check_stmt(stmt.then, scope)
            if stmt.otherwise is not None:
                self._check_stmt(stmt.otherwise, scope)
        elif isinstance(stmt, ast.While):
            self._check_expr(stmt.cond, scope)
            self._check_stmt(stmt.body, scope)
        elif isinstance(stmt, ast.DoWhile):
            self._check_stmt(stmt.body, scope)
            self._check_expr(stmt.cond, scope)
        elif isinstance(stmt, ast.For):
            inner = _Scope(scope)
            if isinstance(stmt.init, ast.Stmt):
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._check_expr(stmt.cond, inner)
            if stmt.step is not None:
                self._check_expr(stmt.step, inner)
            self._check_stmt(stmt.body, inner)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value_type = self._check_expr(stmt.value, scope)
                if ct.is_void(self.current_return) and value_type is not None:
                    self._error("returning a value from a void function")
            elif not ct.is_void(self.current_return):
                # "return;" in a non-void function is tolerated (common in
                # real-world code and in decompiler output).
                pass
        elif isinstance(stmt, (ast.Break, ast.Continue, ast.EmptyStmt)):
            pass
        else:
            self._error(f"unsupported statement {type(stmt).__name__}")

    def _check_initializer(
        self, node: ast.Node, target: ct.CType, scope: _Scope
    ) -> None:
        if isinstance(node, ast.InitializerList):
            element = target.element if isinstance(target, ct.ArrayType) else target
            for item in node.items:
                self._check_initializer(item, element, scope)
        else:
            value_type = self._check_expr(node, scope)  # type: ignore[arg-type]
            if value_type is not None and not ct.types_compatible(target, value_type):
                self._error(f"initialising {target} from incompatible {value_type}")

    # -- expressions --------------------------------------------------------

    def _check_expr(self, expr: ast.Expr, scope: _Scope) -> Optional[ct.CType]:
        t = self._expr_type(expr, scope)
        expr.ctype = t
        return t

    def _expr_type(self, expr: ast.Expr, scope: _Scope) -> Optional[ct.CType]:
        if isinstance(expr, ast.IntLiteral):
            return ct.literal_int_type(expr.value)
        if isinstance(expr, ast.FloatLiteral):
            return ct.DOUBLE
        if isinstance(expr, ast.CharLiteral):
            return ct.CHAR
        if isinstance(expr, ast.StringLiteral):
            return ct.PointerType(ct.CHAR)
        if isinstance(expr, ast.Identifier):
            found = scope.lookup(expr.name)
            if found is not None:
                return found
            if expr.name in self.functions:
                return self.functions[expr.name]
            if expr.name in ("NULL", "true", "false"):
                return ct.INT
            self.result.missing.variables.setdefault(expr.name, ct.INT)
            return ct.INT
        if isinstance(expr, ast.BinaryOp):
            return self._binary_type(expr, scope)
        if isinstance(expr, ast.UnaryOp):
            return self._unary_type(expr, scope)
        if isinstance(expr, ast.PostfixOp):
            operand = self._check_expr(expr.operand, scope)
            return operand
        if isinstance(expr, ast.Assignment):
            target = self._check_expr(expr.target, scope)
            value = self._check_expr(expr.value, scope)
            if target is not None and value is not None and not ct.types_compatible(
                target, value
            ):
                self._error(f"assigning {value} to {target}")
            return target
        if isinstance(expr, ast.Conditional):
            self._check_expr(expr.cond, scope)
            then = self._check_expr(expr.then, scope)
            otherwise = self._check_expr(expr.otherwise, scope)
            if then is None:
                return otherwise
            if otherwise is None:
                return then
            if then.is_arithmetic() and otherwise.is_arithmetic():
                return ct.usual_arithmetic_conversion(then, otherwise)
            return then
        if isinstance(expr, ast.Call):
            return self._call_type(expr, scope)
        if isinstance(expr, ast.Index):
            base = self._check_expr(expr.base, scope)
            self._check_expr(expr.index, scope)
            base = ct.decay(base) if base is not None else None
            if isinstance(base, ct.PointerType):
                return base.pointee
            if base is not None and not isinstance(base, ct.NamedType):
                self._error(f"indexing non-pointer type {base}")
            return ct.INT
        if isinstance(expr, ast.Member):
            return self._member_type(expr, scope)
        if isinstance(expr, ast.Cast):
            self._check_expr(expr.operand, scope)
            return self._resolve(expr.target_type)
        if isinstance(expr, ast.SizeOf):
            if expr.operand is not None:
                self._check_expr(expr.operand, scope)
            return ct.ULONG
        self._error(f"unsupported expression {type(expr).__name__}")
        return None

    def _binary_type(self, expr: ast.BinaryOp, scope: _Scope) -> Optional[ct.CType]:
        left = self._check_expr(expr.left, scope)
        right = self._check_expr(expr.right, scope)
        if expr.op == ",":
            return right
        if left is None or right is None:
            return left or right
        left = ct.decay(left)
        right = ct.decay(right)
        if expr.op in ("&&", "||", "==", "!=", "<", ">", "<=", ">="):
            return ct.INT
        if expr.op in ("+", "-"):
            if isinstance(left, ct.PointerType) and right.is_integer():
                return left
            if (
                isinstance(right, ct.PointerType)
                and left.is_integer()
                and expr.op == "+"
            ):
                return right
            if isinstance(left, ct.PointerType) and isinstance(right, ct.PointerType):
                return ct.LONG
        if expr.op in ("%", "<<", ">>", "&", "|", "^"):
            if left.is_float() or right.is_float():
                self._error(f"operator {expr.op!r} applied to floating point operand")
                return ct.INT
        if expr.op in ("<<", ">>") and left.is_integer():
            # Shifts take the promoted LEFT operand's type — the count does
            # not participate in the usual arithmetic conversions.  This is
            # the same rule lowering and the constant folder apply.
            return ct.integer_promote(left)
        if left.is_arithmetic() and right.is_arithmetic():
            return ct.usual_arithmetic_conversion(
                ct.integer_promote(left), ct.integer_promote(right)
            )
        if isinstance(left, ct.NamedType) or isinstance(right, ct.NamedType):
            return ct.INT
        if isinstance(left, ct.StructType) or isinstance(right, ct.StructType):
            self._error(f"operator {expr.op!r} applied to struct operand")
        return left

    def _unary_type(self, expr: ast.UnaryOp, scope: _Scope) -> Optional[ct.CType]:
        operand = self._check_expr(expr.operand, scope)
        if operand is None:
            return None
        if expr.op == "&":
            return ct.PointerType(operand)
        if expr.op == "*":
            operand = ct.decay(operand)
            if isinstance(operand, ct.PointerType):
                return operand.pointee
            if not isinstance(operand, ct.NamedType):
                self._error(f"dereferencing non-pointer type {operand}")
            return ct.INT
        if expr.op == "!":
            return ct.INT
        if expr.op == "~":
            if operand.is_float():
                self._error("operator '~' applied to floating point operand")
            return ct.integer_promote(operand)
        if expr.op in ("-", "+") and operand.is_integer():
            # Unary +/- apply the integer promotions: -c on a char is an int.
            return ct.integer_promote(operand)
        return operand

    def _call_type(self, expr: ast.Call, scope: _Scope) -> Optional[ct.CType]:
        for arg in expr.args:
            self._check_expr(arg, scope)
        if isinstance(expr.func, ast.Identifier):
            name = expr.func.name
            local = scope.lookup(name)
            if isinstance(local, ct.FunctionType):
                ftype: Optional[ct.FunctionType] = local
            elif isinstance(local, ct.PointerType) and isinstance(
                local.pointee, ct.FunctionType
            ):
                ftype = local.pointee
            else:
                ftype = self.functions.get(name)
            if ftype is None:
                arg_types = tuple(
                    ct.decay(a.ctype) if a.ctype else ct.INT for a in expr.args
                )
                ftype = ct.FunctionType(ct.INT, arg_types)
                self.result.missing.functions.setdefault(name, ftype)
            expr.func.ctype = ftype
            if (
                not ftype.variadic
                and ftype.param_types
                and len(expr.args) != len(ftype.param_types)
                and name not in self.result.missing.functions
            ):
                self._error(
                    f"call to {name} with {len(expr.args)} args, expected {len(ftype.param_types)}"
                )
            return ftype.return_type
        func_type = self._check_expr(expr.func, scope)
        if isinstance(func_type, ct.FunctionType):
            return func_type.return_type
        if isinstance(func_type, ct.PointerType) and isinstance(
            func_type.pointee, ct.FunctionType
        ):
            return func_type.pointee.return_type
        return ct.INT

    def _member_type(self, expr: ast.Member, scope: _Scope) -> Optional[ct.CType]:
        base = self._check_expr(expr.base, scope)
        if base is None:
            return None
        if expr.arrow:
            base = ct.decay(base)
            if isinstance(base, ct.PointerType):
                base = base.pointee
            elif isinstance(base, ct.NamedType):
                return ct.INT
            else:
                self._error(f"'->' applied to non-pointer type {base}")
                return ct.INT
        if isinstance(base, ct.StructType):
            struct = self.structs.get(base.tag, base)
            if struct.has_field(expr.field_name):
                return struct.field_type(expr.field_name)
            self._error(f"struct {struct.tag} has no member {expr.field_name!r}")
            return ct.INT
        if isinstance(base, ct.NamedType):
            # Member access through an opaque typedef: type inference will
            # synthesise the struct; assume int for now.
            return ct.INT
        self._error(f"member access on non-struct type {base}")
        return ct.INT

    def _error(self, message: str) -> None:
        self.result.errors.append(message)


def check_program(program: ast.Program, strict: bool = False) -> CheckResult:
    """Convenience wrapper: run the type checker over ``program``."""
    return TypeChecker(program, strict=strict).check()


def compiles(source: str) -> bool:
    """Return True if ``source`` parses and type-checks with no missing names.

    This is the *Compiles* predicate used by the evaluation harness
    (Table I of the paper).
    """
    from repro.lang.parser import ParseError, parse_program
    from repro.lang.lexer import LexError

    try:
        program = parse_program(source)
    except (ParseError, LexError, RecursionError):
        return False
    try:
        result = check_program(program)
    except (TypeCheckError, RecursionError):
        return False
    return result.ok
