"""Pretty printer: Mini-C AST → C source text.

The printer produces conventional, human-readable C formatting (4-space
indentation, one statement per line).  It is used to render ground-truth
functions for the dataset, decompiler hypotheses, and synthesised
declarations from the type-inference engine.
"""

from __future__ import annotations

from typing import List

from repro.lang import ast_nodes as ast
from repro.lang import ctypes as ct

_INDENT = "    "


def type_to_str(t: ct.CType, name: str = "") -> str:
    """Render a type with an optional declarator name, C-style.

    Handles the inside-out declarator syntax for pointers and arrays, e.g.
    ``int *x[4]`` and ``char buf[16]``.
    """
    suffix = ""
    prefix_name = name
    # Peel arrays (outermost first in declaration syntax).
    while isinstance(t, ct.ArrayType):
        length = "" if t.length is None else str(t.length)
        suffix += f"[{length}]"
        t = t.element
    stars = ""
    while isinstance(t, ct.PointerType):
        stars += "*"
        t = t.pointee
    base = str(t)
    decl = f"{stars}{prefix_name}{suffix}" if (prefix_name or stars or suffix) else ""
    if decl:
        return f"{base} {decl}".rstrip()
    return base


def print_expr(expr: ast.Expr) -> str:
    """Render an expression."""
    return _ExprPrinter().visit(expr)


class _ExprPrinter:
    def visit(self, expr: ast.Expr, parent_prec: int = 0) -> str:
        method = getattr(self, f"_visit_{type(expr).__name__}", None)
        if method is None:
            raise NotImplementedError(f"cannot print {type(expr).__name__}")
        return method(expr)

    def _visit_IntLiteral(self, e: ast.IntLiteral) -> str:
        return e.text if e.text is not None else str(e.value)

    def _visit_FloatLiteral(self, e: ast.FloatLiteral) -> str:
        if e.text is not None:
            return e.text
        text = repr(float(e.value))
        return text

    def _visit_CharLiteral(self, e: ast.CharLiteral) -> str:
        return e.text if e.text is not None else f"'{chr(e.value)}'"

    def _visit_StringLiteral(self, e: ast.StringLiteral) -> str:
        if e.text is not None:
            return e.text
        escaped = e.value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        return f'"{escaped}"'

    def _visit_Identifier(self, e: ast.Identifier) -> str:
        return e.name

    def _visit_BinaryOp(self, e: ast.BinaryOp) -> str:
        left = self._paren_if_needed(e.left)
        right = self._paren_if_needed(e.right)
        if e.op == ",":
            return f"{left}, {right}"
        return f"{left} {e.op} {right}"

    def _visit_UnaryOp(self, e: ast.UnaryOp) -> str:
        operand = self._paren_if_needed(e.operand)
        # "-" followed by "-28" must not fuse into the predecrement "--28";
        # parenthesise whenever operand text starts with the operator's char.
        if operand.startswith(e.op[0]):
            operand = f"({operand})"
        return f"{e.op}{operand}"

    def _visit_PostfixOp(self, e: ast.PostfixOp) -> str:
        operand = self._paren_if_needed(e.operand)
        return f"{operand}{e.op}"

    def _visit_Assignment(self, e: ast.Assignment) -> str:
        return f"{self.visit(e.target)} {e.op} {self.visit(e.value)}"

    def _visit_Conditional(self, e: ast.Conditional) -> str:
        return (
            f"{self._paren_if_needed(e.cond)} ? {self.visit(e.then)}"
            f" : {self.visit(e.otherwise)}"
        )

    def _visit_Call(self, e: ast.Call) -> str:
        args = ", ".join(self.visit(a) for a in e.args)
        return f"{self.visit(e.func)}({args})"

    def _visit_Index(self, e: ast.Index) -> str:
        return f"{self._paren_if_needed(e.base)}[{self.visit(e.index)}]"

    def _visit_Member(self, e: ast.Member) -> str:
        op = "->" if e.arrow else "."
        return f"{self._paren_if_needed(e.base)}{op}{e.field_name}"

    def _visit_Cast(self, e: ast.Cast) -> str:
        return f"({type_to_str(e.target_type)}){self._paren_if_needed(e.operand)}"

    def _visit_SizeOf(self, e: ast.SizeOf) -> str:
        if e.target_type is not None:
            return f"sizeof({type_to_str(e.target_type)})"
        return f"sizeof({self.visit(e.operand)})"

    def _paren_if_needed(self, expr: ast.Expr) -> str:
        text = self.visit(expr)
        if isinstance(
            expr,
            (
                ast.BinaryOp,
                ast.Assignment,
                ast.Conditional,
                ast.Cast,
            ),
        ):
            return f"({text})"
        return text


def print_stmt(stmt: ast.Stmt, indent: int = 0) -> List[str]:
    """Render a statement as a list of source lines."""
    pad = _INDENT * indent
    printer = _ExprPrinter()

    if isinstance(stmt, ast.Block):
        lines = [pad + "{"]
        for inner in stmt.stmts:
            lines.extend(print_stmt(inner, indent + 1))
        lines.append(pad + "}")
        return lines
    if isinstance(stmt, ast.ExprStmt):
        return [pad + printer.visit(stmt.expr) + ";"]
    if isinstance(stmt, ast.Declaration):
        text = type_to_str(stmt.type, stmt.name)
        if stmt.storage:
            text = f"{stmt.storage} {text}"
        if stmt.init is not None:
            text += " = " + _print_initializer(stmt.init)
        return [pad + text + ";"]
    if isinstance(stmt, ast.If):
        lines = [pad + f"if ({printer.visit(stmt.cond)})"]
        lines.extend(_print_body(stmt.then, indent))
        if stmt.otherwise is not None:
            lines.append(pad + "else")
            lines.extend(_print_body(stmt.otherwise, indent))
        return lines
    if isinstance(stmt, ast.While):
        lines = [pad + f"while ({printer.visit(stmt.cond)})"]
        lines.extend(_print_body(stmt.body, indent))
        return lines
    if isinstance(stmt, ast.DoWhile):
        lines = [pad + "do"]
        lines.extend(_print_body(stmt.body, indent))
        lines.append(pad + f"while ({printer.visit(stmt.cond)});")
        return lines
    if isinstance(stmt, ast.For):
        init = ""
        if isinstance(stmt.init, ast.Declaration):
            init = print_stmt(stmt.init)[0].rstrip(";")
        elif isinstance(stmt.init, ast.ExprStmt):
            init = printer.visit(stmt.init.expr)
        cond = printer.visit(stmt.cond) if stmt.cond is not None else ""
        step = printer.visit(stmt.step) if stmt.step is not None else ""
        lines = [pad + f"for ({init}; {cond}; {step})"]
        lines.extend(_print_body(stmt.body, indent))
        return lines
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return [pad + "return;"]
        return [pad + f"return {printer.visit(stmt.value)};"]
    if isinstance(stmt, ast.Break):
        return [pad + "break;"]
    if isinstance(stmt, ast.Continue):
        return [pad + "continue;"]
    if isinstance(stmt, ast.EmptyStmt):
        return [pad + ";"]
    raise NotImplementedError(f"cannot print statement {type(stmt).__name__}")


def _print_body(stmt: ast.Stmt, indent: int) -> List[str]:
    if isinstance(stmt, ast.Block):
        return print_stmt(stmt, indent)
    return print_stmt(stmt, indent + 1)


def _print_initializer(node: ast.Node) -> str:
    if isinstance(node, ast.InitializerList):
        inner = ", ".join(_print_initializer(item) for item in node.items)
        return "{" + inner + "}"
    return _ExprPrinter().visit(node)  # type: ignore[arg-type]


def print_typedef(decl: ast.TypedefDecl) -> str:
    """Render a typedef, expanding struct bodies so the definition survives."""
    t = decl.type
    if isinstance(t, ct.StructType) and t.fields:
        lines = [f"typedef struct {t.tag} {{"]
        for f in t.fields:
            lines.append(_INDENT + type_to_str(f.type, f.name) + ";")
        lines.append(f"}} {decl.name};")
        return "\n".join(lines)
    return f"typedef {type_to_str(decl.type, decl.name)};"


def print_function(func: ast.FunctionDef) -> str:
    """Render a full function definition (or prototype)."""
    params = ", ".join(type_to_str(p.type, p.name) for p in func.params)
    if not params:
        params = "void"
    if func.variadic:
        params += ", ..."
    header = f"{type_to_str(func.return_type, func.name)}({params})"
    if func.storage:
        header = f"{func.storage} {header}"
    if func.body is None:
        return header + ";"
    lines = [header] + print_stmt(func.body, 0)
    return "\n".join(lines)


def print_program(program: ast.Program) -> str:
    """Render a whole translation unit."""
    chunks: List[str] = []
    for decl in program.decls:
        if isinstance(decl, ast.FunctionDef):
            chunks.append(print_function(decl))
        elif isinstance(decl, ast.Declaration):
            chunks.append("\n".join(print_stmt(decl, 0)))
        elif isinstance(decl, ast.TypedefDecl):
            chunks.append(print_typedef(decl))
        elif isinstance(decl, ast.StructDecl):
            lines = [f"struct {decl.tag} {{"]
            for fname, ftype in decl.fields:
                lines.append(_INDENT + type_to_str(ftype, fname) + ";")
            lines.append("};")
            chunks.append("\n".join(lines))
        elif isinstance(decl, ast.Block):
            chunks.append("\n".join(print_stmt(decl, 0)))
        else:
            raise NotImplementedError(f"cannot print top-level {type(decl).__name__}")
    return "\n\n".join(chunks) + "\n"
