"""Abstract syntax tree node definitions for Mini-C.

Every node is a plain dataclass.  Expressions carry an optional ``ctype``
attribute filled in by the type checker.  Node classes are intentionally
small and data-only; behaviour lives in the visitors (type checker, printer,
interpreter, compiler lowering).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.lang.ctypes import CType


class Node:
    """Base class of all AST nodes."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class of all expressions.  ``ctype`` is set by the type checker."""

    ctype: Optional[CType] = field(default=None, init=False, repr=False, compare=False)


@dataclass
class IntLiteral(Expr):
    value: int
    text: Optional[str] = None


@dataclass
class FloatLiteral(Expr):
    value: float
    text: Optional[str] = None


@dataclass
class CharLiteral(Expr):
    value: int
    text: Optional[str] = None


@dataclass
class StringLiteral(Expr):
    value: str
    text: Optional[str] = None


@dataclass
class Identifier(Expr):
    name: str


@dataclass
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class UnaryOp(Expr):
    """A prefix unary operator: ``-`` ``+`` ``!`` ``~`` ``*`` ``&`` ``++`` ``--``."""

    op: str
    operand: Expr


@dataclass
class PostfixOp(Expr):
    """A postfix ``++`` or ``--``."""

    op: str
    operand: Expr


@dataclass
class Assignment(Expr):
    """``target op value`` where op is ``=`` or a compound assignment."""

    op: str
    target: Expr
    value: Expr


@dataclass
class Conditional(Expr):
    """The ternary ``cond ? then : otherwise`` operator."""

    cond: Expr
    then: Expr
    otherwise: Expr


@dataclass
class Call(Expr):
    func: Expr
    args: List[Expr]


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class Member(Expr):
    """``base.field`` (arrow=False) or ``base->field`` (arrow=True)."""

    base: Expr
    field_name: str
    arrow: bool


@dataclass
class Cast(Expr):
    target_type: CType
    operand: Expr


@dataclass
class SizeOf(Expr):
    """``sizeof(type)`` or ``sizeof expr``."""

    target_type: Optional[CType] = None
    operand: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    """Base class of all statements."""


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class Declaration(Stmt):
    """A local or global variable declaration.

    ``init`` may be an expression or, for arrays/structs, an
    :class:`InitializerList`.
    """

    name: str
    type: CType
    init: Optional[Node] = None
    storage: Optional[str] = None  # "static", "extern" or None


@dataclass
class InitializerList(Node):
    items: List[Node] = field(default_factory=list)


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class DoWhile(Stmt):
    body: Stmt
    cond: Expr


@dataclass
class For(Stmt):
    init: Optional[Node]  # Declaration, ExprStmt or None
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Stmt


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class EmptyStmt(Stmt):
    pass


# ---------------------------------------------------------------------------
# Top-level declarations
# ---------------------------------------------------------------------------


@dataclass
class Param(Node):
    name: str
    type: CType


@dataclass
class FunctionDef(Node):
    name: str
    return_type: CType
    params: List[Param]
    body: Optional[Block]  # None for prototypes
    storage: Optional[str] = None
    variadic: bool = False


@dataclass
class TypedefDecl(Node):
    name: str
    type: CType


@dataclass
class StructDecl(Node):
    """A top-level ``struct tag { ... };`` definition."""

    tag: str
    fields: List[Tuple[str, CType]] = field(default_factory=list)


@dataclass
class Program(Node):
    """A whole translation unit."""

    decls: List[Node] = field(default_factory=list)

    def functions(self) -> List[FunctionDef]:
        return [
            d for d in self.decls if isinstance(d, FunctionDef) and d.body is not None
        ]

    def function(self, name: str) -> Optional[FunctionDef]:
        for d in self.decls:
            if isinstance(d, FunctionDef) and d.name == name and d.body is not None:
                return d
        return None

    def globals(self) -> List[Declaration]:
        return [d for d in self.decls if isinstance(d, Declaration)]

    def typedefs(self) -> List[TypedefDecl]:
        return [d for d in self.decls if isinstance(d, TypedefDecl)]

    def structs(self) -> List[StructDecl]:
        return [d for d in self.decls if isinstance(d, StructDecl)]


def clone(node):
    """Fast structural deep copy of an AST subtree.

    :class:`Node` instances and the lists that hold them are copied; leaf
    values — ints, strings, :class:`~repro.lang.ctypes.CType` instances,
    ``(name, type)`` tuples — are shared, which is safe because no pass
    mutates them in place.  This is what the -O3 AST passes use instead of
    :func:`copy.deepcopy`; on the fuzz corpus it is ~8x faster, and the
    emitted assembly is byte-identical by construction.
    """
    if isinstance(node, Node):
        dup = object.__new__(type(node))
        items = dup.__dict__
        for key, value in node.__dict__.items():
            if isinstance(value, (Node, list)):
                items[key] = clone(value)
            else:
                items[key] = value
        return dup
    if isinstance(node, list):
        return [clone(v) if isinstance(v, (Node, list)) else v for v in node]
    return node
