"""A behavioural interpreter for Mini-C.

The interpreter executes a type-checked program on concrete argument values
and reports the return value together with the final contents of every
pointer/array argument and every global variable.  This is the machinery
behind the paper's input/output (IO) equivalence check: the ground-truth
assembly is executed in :mod:`repro.vm` while the decompiled hypothesis is
executed here, and the two observable states are compared.

Memory is a flat byte-addressable array with bump allocation; structs are
packed with no padding.  Both the interpreter and the assembly VMs use the
same layout so pointer-heavy programs behave identically in both worlds.
"""

from __future__ import annotations

import struct as _struct
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.lang import ast_nodes as ast
from repro.lang import ctypes as ct
from repro.lang.typecheck import BUILTIN_FUNCTIONS, TypeChecker


class CInterpreterError(Exception):
    """Raised when execution hits an unrecoverable runtime error."""


class RuntimeLimitExceeded(CInterpreterError):
    """Raised when the configured step budget is exhausted."""


# ---------------------------------------------------------------------------
# Memory
# ---------------------------------------------------------------------------


class Memory:
    """Flat byte-addressable memory with bump allocation.

    Address 0 is reserved as the NULL pointer and never allocated.
    """

    def __init__(self, size: int = 1 << 20) -> None:
        self.data = bytearray(size)
        self.brk = 16  # leave low addresses unused so NULL derefs fault

    def allocate(self, size: int, align: int = 8) -> int:
        size = max(1, size)
        self.brk = (self.brk + align - 1) & ~(align - 1)
        addr = self.brk
        self.brk += size
        if self.brk > len(self.data):
            self.data.extend(bytearray(self.brk - len(self.data) + 4096))
        return addr

    def _check(self, addr: int, size: int) -> None:
        if addr <= 0 or addr + size > len(self.data):
            raise CInterpreterError(f"invalid memory access at address {addr}")

    def read_int(self, addr: int, size: int, signed: bool) -> int:
        self._check(addr, size)
        return int.from_bytes(self.data[addr : addr + size], "little", signed=signed)

    def write_int(self, addr: int, value: int, size: int) -> None:
        self._check(addr, size)
        mask = (1 << (8 * size)) - 1
        self.data[addr : addr + size] = int(value & mask).to_bytes(size, "little")

    def read_float(self, addr: int, size: int) -> float:
        self._check(addr, size)
        fmt = "<f" if size == 4 else "<d"
        return _struct.unpack(fmt, self.data[addr : addr + size])[0]

    def write_float(self, addr: int, value: float, size: int) -> None:
        self._check(addr, size)
        fmt = "<f" if size == 4 else "<d"
        self.data[addr : addr + size] = _struct.pack(fmt, float(value))

    def read_bytes(self, addr: int, size: int) -> bytes:
        self._check(addr, size)
        return bytes(self.data[addr : addr + size])

    def write_bytes(self, addr: int, data: bytes) -> None:
        self._check(addr, max(1, len(data)))
        self.data[addr : addr + len(data)] = data

    def read_cstring(self, addr: int, limit: int = 1 << 16) -> str:
        out = []
        for offset in range(limit):
            byte = self.read_int(addr + offset, 1, signed=False)
            if byte == 0:
                break
            out.append(chr(byte))
        return "".join(out)

    def write_cstring(self, addr: int, text: str) -> None:
        self.write_bytes(addr, text.encode("latin-1", errors="replace") + b"\0")


def read_typed(memory: Memory, addr: int, t: ct.CType) -> Union[int, float]:
    """Read a scalar of type ``t`` from memory."""
    if isinstance(t, ct.FloatType):
        return memory.read_float(addr, t.sizeof())
    if isinstance(t, (ct.PointerType, ct.ArrayType, ct.FunctionType)):
        return memory.read_int(addr, 8, signed=False)
    if isinstance(t, ct.IntType):
        return memory.read_int(addr, t.sizeof(), signed=not t.unsigned)
    if isinstance(t, ct.NamedType):
        return memory.read_int(addr, 8, signed=True)
    raise CInterpreterError(f"cannot read value of type {t}")


def write_typed(
    memory: Memory, addr: int, value: Union[int, float], t: ct.CType
) -> None:
    """Write a scalar of type ``t`` to memory."""
    if isinstance(t, ct.FloatType):
        memory.write_float(addr, float(value), t.sizeof())
    elif isinstance(t, (ct.PointerType, ct.ArrayType, ct.FunctionType)):
        memory.write_int(addr, int(value), 8)
    elif isinstance(t, ct.IntType):
        memory.write_int(addr, int(value), t.sizeof())
    elif isinstance(t, ct.NamedType):
        memory.write_int(addr, int(value), 8)
    else:
        raise CInterpreterError(f"cannot write value of type {t}")


# ---------------------------------------------------------------------------
# Values and control flow signals
# ---------------------------------------------------------------------------


@dataclass
class LValue:
    """An addressable location with a type."""

    addr: int
    type: ct.CType


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: Union[int, float, None]) -> None:
        self.value = value


@dataclass
class ExecutionResult:
    """Observable state after running a function on one input."""

    return_value: Union[int, float, None]
    arg_values: List[Any] = field(default_factory=list)
    globals: Dict[str, Any] = field(default_factory=dict)
    steps: int = 0


# ---------------------------------------------------------------------------
# Interpreter
# ---------------------------------------------------------------------------


class Interpreter:
    """Executes functions from a Mini-C program."""

    def __init__(
        self,
        program: ast.Program,
        max_steps: int = 200_000,
        memory_size: int = 1 << 20,
        checker: Optional[TypeChecker] = None,
    ) -> None:
        self.program = program
        self.max_steps = max_steps
        self.memory = Memory(memory_size)
        self.steps = 0
        if checker is None:
            # ``checker`` lets callers that evaluate the same program on many
            # inputs (the differential oracle) type-check once and share the
            # result; a shared checker must already have had check() run.
            checker = TypeChecker(program)
            checker.check()
        self.checker = checker
        self.typedefs = checker.typedefs
        self.structs = checker.structs
        # Resolution results are immutable, so the memo can live on the
        # checker and be shared by every interpreter built from it.
        cache = getattr(checker, "resolve_cache", None)
        if cache is None:
            cache = {}
            checker.resolve_cache = cache  # type: ignore[attr-defined]
        self._resolve_cache: Dict[ct.CType, ct.CType] = cache
        self.functions: Dict[str, ast.FunctionDef] = {
            f.name: f for f in program.functions()
        }
        self.global_addrs: Dict[str, LValue] = {}
        self._string_cache: Dict[str, int] = {}
        self._alloc_globals()

    # -- setup --------------------------------------------------------------

    def _resolve_type(self, t: ct.CType) -> ct.CType:
        try:
            cached = self._resolve_cache.get(t)
        except TypeError:  # StructType is unhashable
            return self._resolve_type_uncached(t)
        if cached is None:
            cached = self._resolve_type_uncached(t)
            self._resolve_cache[t] = cached
        return cached

    def _resolve_type_uncached(self, t: ct.CType) -> ct.CType:
        if isinstance(t, ct.NamedType) and t.name in self.typedefs:
            return self._resolve_type(self.typedefs[t.name])
        if isinstance(t, ct.StructType) and not t.fields and t.tag in self.structs:
            return self.structs[t.tag]
        if isinstance(t, ct.PointerType):
            return ct.PointerType(self._resolve_type(t.pointee))
        if isinstance(t, ct.ArrayType):
            return ct.ArrayType(self._resolve_type(t.element), t.length)
        return t

    def _alloc_globals(self) -> None:
        decls: List[ast.Declaration] = []
        for decl in self.program.decls:
            if isinstance(decl, ast.Declaration):
                decls.append(decl)
            elif isinstance(decl, ast.Block):
                decls.extend(d for d in decl.stmts if isinstance(d, ast.Declaration))
        for decl in decls:
            t = self._resolve_type(decl.type)
            addr = self.memory.allocate(max(t.sizeof(), 1))
            lvalue = LValue(addr, t)
            self.global_addrs[decl.name] = lvalue
            if decl.init is not None:
                self._store_initializer(lvalue, decl.init, {})

    # -- public API ---------------------------------------------------------

    def set_global(self, name: str, value: Any) -> None:
        """Set a global variable to a Python value before execution."""
        if name not in self.global_addrs:
            raise CInterpreterError(f"no global named {name!r}")
        lvalue = self.global_addrs[name]
        self._store_python_value(lvalue, value)

    def get_global(self, name: str) -> Any:
        """Read the current Python value of a global variable."""
        if name not in self.global_addrs:
            raise CInterpreterError(f"no global named {name!r}")
        lvalue = self.global_addrs[name]
        return self._load_python_value(lvalue)

    def run_function(
        self,
        name: str,
        args: Sequence[Any],
        globals_init: Optional[Dict[str, Any]] = None,
    ) -> ExecutionResult:
        """Run function ``name`` on ``args`` and return the observable state.

        Array / string arguments are marshalled into memory and their final
        contents are reported back in ``arg_values`` so that out-parameters
        participate in the equivalence check.
        """
        if name not in self.functions:
            raise CInterpreterError(f"no function named {name!r}")
        func = self.functions[name]
        if globals_init:
            for gname, gvalue in globals_init.items():
                if gname in self.global_addrs:
                    self.set_global(gname, gvalue)

        arg_cells: List[Tuple[Any, Optional[LValue], Optional[int]]] = []
        call_values: List[Union[int, float]] = []
        for param, value in zip(func.params, list(args) + [0] * len(func.params)):
            ptype = ct.decay(self._resolve_type(param.type))
            marshalled, backing, length = self._marshal_argument(value, ptype)
            call_values.append(marshalled)
            arg_cells.append((value, backing, length))

        self.steps = 0
        ret = self._call_user_function(func, call_values)

        final_args: List[Any] = []
        for (original, backing, length) in arg_cells:
            if backing is None:
                final_args.append(original)
            else:
                final_args.append(self._read_back_argument(backing, length, original))
        final_globals = {gname: self.get_global(gname) for gname in self.global_addrs}
        return ExecutionResult(ret, final_args, final_globals, self.steps)

    # -- argument marshalling -------------------------------------------------

    def _marshal_argument(
        self, value: Any, ptype: ct.CType
    ) -> Tuple[Union[int, float], Optional[LValue], Optional[int]]:
        """Convert a Python argument into a call value.

        Returns (scalar value to pass, backing lvalue for read-back, length).
        """
        if isinstance(value, str) and isinstance(ptype, ct.PointerType):
            addr = self.memory.allocate(len(value) + 16)
            self.memory.write_cstring(addr, value)
            elem = self._resolve_type(ptype.pointee)
            return (
                addr,
                LValue(addr, ct.ArrayType(elem, len(value) + 1)),
                len(value) + 1,
            )
        if isinstance(value, (list, tuple)) and isinstance(ptype, ct.PointerType):
            elem = self._resolve_type(ptype.pointee)
            if isinstance(elem, ct.VoidType):
                elem = ct.CHAR
            size = max(1, len(value)) * elem.sizeof()
            addr = self.memory.allocate(size + 16)
            for index, item in enumerate(value):
                write_typed(self.memory, addr + index * elem.sizeof(), item, elem)
            return addr, LValue(addr, ct.ArrayType(elem, len(value))), len(value)
        if isinstance(value, dict) and isinstance(ptype, ct.PointerType):
            struct_type = self._resolve_type(ptype.pointee)
            addr = self.memory.allocate(max(struct_type.sizeof(), 8) + 8)
            lvalue = LValue(addr, struct_type)
            self._store_python_value(lvalue, value)
            return addr, lvalue, None
        if isinstance(ptype, ct.FloatType):
            return float(value), None, None
        if isinstance(ptype, ct.IntType):
            return ptype.wrap(int(value)), None, None
        return int(value) if not isinstance(value, float) else value, None, None

    def _read_back_argument(
        self, backing: LValue, length: Optional[int], original: Any
    ) -> Any:
        if isinstance(backing.type, ct.ArrayType):
            elem = backing.type.element
            count = length if length is not None else (backing.type.length or 0)
            values = [
                read_typed(self.memory, backing.addr + i * elem.sizeof(), elem)
                for i in range(count)
            ]
            if isinstance(original, str):
                chars = []
                for v in values:
                    if v == 0:
                        break
                    chars.append(chr(int(v) & 0xFF))
                return "".join(chars)
            return values
        return self._load_python_value(backing)

    def _store_python_value(self, lvalue: LValue, value: Any) -> None:
        t = self._resolve_type(lvalue.type)
        if isinstance(t, ct.ArrayType) and isinstance(value, (list, tuple)):
            elem = t.element
            for index, item in enumerate(value):
                self._store_python_value(
                    LValue(lvalue.addr + index * elem.sizeof(), elem), item
                )
        elif isinstance(t, ct.ArrayType) and isinstance(value, str):
            self.memory.write_cstring(lvalue.addr, value)
        elif isinstance(t, ct.StructType) and isinstance(value, dict):
            for fname, fvalue in value.items():
                if t.has_field(fname):
                    ftype = self._resolve_type(t.field_type(fname))
                    self._store_python_value(
                        LValue(lvalue.addr + t.field_offset(fname), ftype), fvalue
                    )
        elif isinstance(value, (list, tuple)) and isinstance(t, ct.PointerType):
            elem = self._resolve_type(t.pointee)
            addr = self.memory.allocate(max(1, len(value)) * elem.sizeof() + 8)
            for index, item in enumerate(value):
                write_typed(self.memory, addr + index * elem.sizeof(), item, elem)
            write_typed(self.memory, lvalue.addr, addr, t)
        elif isinstance(value, str) and isinstance(t, ct.PointerType):
            addr = self.memory.allocate(len(value) + 8)
            self.memory.write_cstring(addr, value)
            write_typed(self.memory, lvalue.addr, addr, t)
        else:
            write_typed(self.memory, lvalue.addr, value, t)

    def _load_python_value(self, lvalue: LValue) -> Any:
        t = self._resolve_type(lvalue.type)
        if isinstance(t, ct.ArrayType):
            elem = t.element
            count = t.length or 0
            return [
                read_typed(self.memory, lvalue.addr + i * elem.sizeof(), elem)
                for i in range(count)
            ]
        if isinstance(t, ct.StructType):
            return {
                f.name: self._load_python_value(
                    LValue(
                        lvalue.addr + t.field_offset(f.name), self._resolve_type(f.type)
                    )
                )
                for f in t.fields
            }
        return read_typed(self.memory, lvalue.addr, t)

    # -- function invocation --------------------------------------------------

    def _call_user_function(
        self, func: ast.FunctionDef, args: Sequence[Union[int, float]]
    ) -> Union[int, float, None]:
        scope: Dict[str, LValue] = {}
        for param, value in zip(func.params, args):
            ptype = ct.decay(self._resolve_type(param.type))
            addr = self.memory.allocate(max(ptype.sizeof(), 8))
            write_typed(self.memory, addr, value, ptype)
            scope[param.name] = LValue(addr, ptype)
        try:
            self._exec_stmt(func.body, scope)
        except _ReturnSignal as signal:
            return self._coerce_return(signal.value, func.return_type)
        return None if ct.is_void(self._resolve_type(func.return_type)) else 0

    def _coerce_return(
        self, value: Union[int, float, None], return_type: ct.CType
    ) -> Union[int, float, None]:
        t = self._resolve_type(return_type)
        if value is None:
            return None if ct.is_void(t) else 0
        if isinstance(t, ct.FloatType):
            return float(value)
        if isinstance(t, ct.IntType):
            return t.wrap(int(value))
        if ct.is_void(t):
            return None
        return value

    # -- statements ------------------------------------------------------------

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise RuntimeLimitExceeded(f"exceeded {self.max_steps} execution steps")

    def _exec_stmt(self, stmt: ast.Stmt, scope: Dict[str, LValue]) -> None:
        self._tick()
        # Statement dispatch is a type-keyed table (built after the class
        # body) instead of an isinstance chain: one dict lookup per step.
        handler = _STMT_DISPATCH.get(stmt.__class__)
        if handler is None:
            raise CInterpreterError(f"cannot execute statement {type(stmt).__name__}")
        handler(self, stmt, scope)

    def _exec_block(self, stmt: ast.Block, scope: Dict[str, LValue]) -> None:
        inner = dict(scope)
        for s in stmt.stmts:
            self._exec_stmt(s, inner)
        # Propagate new bindings of pre-existing names back (block scoping
        # is approximated; good enough for the generated corpus).
        for name in scope:
            if name in inner:
                scope[name] = inner[name]

    def _exec_declaration(
        self, stmt: ast.Declaration, scope: Dict[str, LValue]
    ) -> None:
        t = self._resolve_type(stmt.type)
        addr = self.memory.allocate(max(t.sizeof(), 8))
        lvalue = LValue(addr, t)
        scope[stmt.name] = lvalue
        if stmt.init is not None:
            self._store_initializer(lvalue, stmt.init, scope)

    def _exec_expr_stmt(self, stmt: ast.ExprStmt, scope: Dict[str, LValue]) -> None:
        self._eval(stmt.expr, scope)

    def _exec_if(self, stmt: ast.If, scope: Dict[str, LValue]) -> None:
        if self._truthy(self._eval(stmt.cond, scope)):
            self._exec_stmt(stmt.then, scope)
        elif stmt.otherwise is not None:
            self._exec_stmt(stmt.otherwise, scope)

    def _exec_while(self, stmt: ast.While, scope: Dict[str, LValue]) -> None:
        while self._truthy(self._eval(stmt.cond, scope)):
            self._tick()
            try:
                self._exec_stmt(stmt.body, scope)
            except _BreakSignal:
                break
            except _ContinueSignal:
                continue

    def _exec_do_while(self, stmt: ast.DoWhile, scope: Dict[str, LValue]) -> None:
        while True:
            self._tick()
            try:
                self._exec_stmt(stmt.body, scope)
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            if not self._truthy(self._eval(stmt.cond, scope)):
                break

    def _exec_for(self, stmt: ast.For, scope: Dict[str, LValue]) -> None:
        inner = dict(scope)
        if isinstance(stmt.init, ast.Stmt):
            self._exec_stmt(stmt.init, inner)
        while stmt.cond is None or self._truthy(self._eval(stmt.cond, inner)):
            self._tick()
            try:
                self._exec_stmt(stmt.body, inner)
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            if stmt.step is not None:
                self._eval(stmt.step, inner)
        for name in scope:
            if name in inner:
                scope[name] = inner[name]

    def _exec_return(self, stmt: ast.Return, scope: Dict[str, LValue]) -> None:
        value = self._eval(stmt.value, scope) if stmt.value is not None else None
        raise _ReturnSignal(value)

    def _exec_break(self, stmt: ast.Break, scope: Dict[str, LValue]) -> None:
        raise _BreakSignal()

    def _exec_continue(self, stmt: ast.Continue, scope: Dict[str, LValue]) -> None:
        raise _ContinueSignal()

    def _exec_empty(self, stmt: ast.EmptyStmt, scope: Dict[str, LValue]) -> None:
        pass

    def _store_initializer(
        self, lvalue: LValue, init: ast.Node, scope: Dict[str, LValue]
    ) -> None:
        t = self._resolve_type(lvalue.type)
        if isinstance(init, ast.InitializerList):
            if isinstance(t, ct.ArrayType):
                elem = t.element
                for index, item in enumerate(init.items):
                    self._store_initializer(
                        LValue(lvalue.addr + index * elem.sizeof(), elem), item, scope
                    )
            elif isinstance(t, ct.StructType):
                for f, item in zip(t.fields, init.items):
                    self._store_initializer(
                        LValue(
                            lvalue.addr + t.field_offset(f.name),
                            self._resolve_type(f.type),
                        ),
                        item,
                        scope,
                    )
            else:
                if init.items:
                    self._store_initializer(lvalue, init.items[0], scope)
        else:
            value = self._eval(init, scope)  # type: ignore[arg-type]
            if isinstance(t, ct.ArrayType) and isinstance(init, ast.StringLiteral):
                self.memory.write_cstring(lvalue.addr, init.value)
            else:
                write_typed(self.memory, lvalue.addr, value, t)

    # -- expressions ------------------------------------------------------------

    def _truthy(self, value: Union[int, float, None]) -> bool:
        if value is None:
            return False
        return value != 0

    def _eval(self, expr: ast.Expr, scope: Dict[str, LValue]) -> Union[int, float]:
        self._tick()
        # Expression dispatch mirrors _exec_stmt: one type-keyed lookup per
        # node instead of walking an isinstance chain.
        handler = _EVAL_DISPATCH.get(expr.__class__)
        if handler is None:
            raise CInterpreterError(f"cannot evaluate {type(expr).__name__}")
        return handler(self, expr, scope)

    def _eval_literal(self, expr, scope: Dict[str, LValue]) -> Union[int, float]:
        return expr.value

    def _eval_string(self, expr: ast.StringLiteral, scope: Dict[str, LValue]) -> int:
        return self._intern_string(expr.value)

    def _eval_identifier(self, expr: ast.Identifier, scope: Dict[str, LValue]) -> Union[
        int, float
    ]:
        lvalue = self._lookup(expr.name, scope)
        if lvalue is None:
            if expr.name in ("NULL", "false"):
                return 0
            if expr.name == "true":
                return 1
            if expr.name in self.functions or expr.name in BUILTIN_FUNCTIONS:
                return 0
            raise CInterpreterError(f"use of undeclared identifier {expr.name!r}")
        t = self._resolve_type(lvalue.type)
        if isinstance(t, ct.ArrayType):
            return lvalue.addr
        return read_typed(self.memory, lvalue.addr, t)

    def _eval_postfix(self, expr: ast.PostfixOp, scope: Dict[str, LValue]) -> Union[
        int, float
    ]:
        lvalue = self._eval_lvalue(expr.operand, scope)
        t = self._resolve_type(lvalue.type)
        old = read_typed(self.memory, lvalue.addr, t)
        delta = self._pointer_step(t)
        new = old + delta if expr.op == "++" else old - delta
        write_typed(self.memory, lvalue.addr, new, t)
        return old

    def _eval_conditional(
        self, expr: ast.Conditional, scope: Dict[str, LValue]
    ) -> Union[int, float]:
        if self._truthy(self._eval(expr.cond, scope)):
            value = self._eval(expr.then, scope)
        else:
            value = self._eval(expr.otherwise, scope)
        # C converts both branches to the conditional's common type
        # (the ctype the checker computed); (c ? -1 : 1u) really is
        # 4294967295, and an int branch of a double ternary is a double.
        result_type = (
            self._resolve_type(expr.ctype) if expr.ctype is not None else None
        )
        if isinstance(result_type, ct.IntType) and not isinstance(value, float):
            return result_type.wrap(int(value))
        if isinstance(result_type, ct.FloatType):
            return float(value)
        return value

    def _eval_index_or_member(self, expr, scope: Dict[str, LValue]) -> Union[
        int, float
    ]:
        lvalue = self._eval_lvalue(expr, scope)
        t = self._resolve_type(lvalue.type)
        if isinstance(t, ct.ArrayType):
            return lvalue.addr
        return read_typed(self.memory, lvalue.addr, t)

    def _eval_cast(self, expr: ast.Cast, scope: Dict[str, LValue]) -> Union[int, float]:
        value = self._eval(expr.operand, scope)
        return self._cast_value(value, self._resolve_type(expr.target_type))

    def _eval_sizeof(self, expr: ast.SizeOf, scope: Dict[str, LValue]) -> int:
        if expr.target_type is not None:
            return self._resolve_type(expr.target_type).sizeof()
        t = (
            expr.operand.ctype
            if expr.operand is not None and expr.operand.ctype
            else ct.INT
        )
        return self._resolve_type(t).sizeof()

    def _lookup(self, name: str, scope: Dict[str, LValue]) -> Optional[LValue]:
        if name in scope:
            return scope[name]
        return self.global_addrs.get(name)

    def _intern_string(self, text: str) -> int:
        if text not in self._string_cache:
            addr = self.memory.allocate(len(text) + 8)
            self.memory.write_cstring(addr, text)
            self._string_cache[text] = addr
        return self._string_cache[text]

    def _cast_value(self, value: Union[int, float], target: ct.CType) -> Union[
        int, float
    ]:
        if isinstance(target, ct.FloatType):
            return float(value)
        if isinstance(target, ct.IntType):
            return target.wrap(int(value))
        if isinstance(target, (ct.PointerType, ct.ArrayType)):
            return int(value)
        return value

    def _pointer_step(self, t: ct.CType) -> int:
        if isinstance(t, ct.PointerType):
            pointee = self._resolve_type(t.pointee)
            return max(1, pointee.sizeof())
        return 1

    def _expr_static_type(self, expr: ast.Expr, scope: Dict[str, LValue]) -> ct.CType:
        """Best-effort static type for an expression during evaluation."""
        if expr.ctype is not None:
            return self._resolve_type(expr.ctype)
        if isinstance(expr, ast.Identifier):
            lvalue = self._lookup(expr.name, scope)
            if lvalue is not None:
                return self._resolve_type(lvalue.type)
        if isinstance(expr, ast.Cast):
            return self._resolve_type(expr.target_type)
        if isinstance(expr, ast.UnaryOp) and expr.op == "&":
            return ct.PointerType(self._expr_static_type(expr.operand, scope))
        if isinstance(expr, ast.IntLiteral):
            return ct.literal_int_type(expr.value)
        if isinstance(expr, ast.CharLiteral):
            return ct.INT
        if isinstance(expr, ast.FloatLiteral):
            return ct.DOUBLE
        return ct.INT

    def _eval_binary(self, expr: ast.BinaryOp, scope: Dict[str, LValue]) -> Union[
        int, float
    ]:
        op = expr.op
        if op == "&&":
            if not self._truthy(self._eval(expr.left, scope)):
                return 0
            return 1 if self._truthy(self._eval(expr.right, scope)) else 0
        if op == "||":
            if self._truthy(self._eval(expr.left, scope)):
                return 1
            return 1 if self._truthy(self._eval(expr.right, scope)) else 0
        if op == ",":
            self._eval(expr.left, scope)
            return self._eval(expr.right, scope)

        left = self._eval(expr.left, scope)
        right = self._eval(expr.right, scope)

        # The operator's conversion plan depends only on the operands'
        # static types, so it is computed once and cached on the node.  The
        # cache is only safe when the checker annotated both operands (the
        # scope-based fallback of _expr_static_type can, in principle, see
        # different bindings on different evaluations).
        plan = expr.__dict__.get("_interp_plan")
        if plan is None:
            left_type = ct.decay(self._expr_static_type(expr.left, scope))
            right_type = ct.decay(self._expr_static_type(expr.right, scope))
            plan = binary_op_plan(op, left_type, right_type)
            if expr.left.ctype is not None and expr.right.ctype is not None:
                expr._interp_plan = plan
        return plan(left, right)

    def _eval_unary(self, expr: ast.UnaryOp, scope: Dict[str, LValue]) -> Union[
        int, float
    ]:
        if expr.op == "&":
            return self._eval_lvalue(expr.operand, scope).addr
        if expr.op == "*":
            addr = self._eval(expr.operand, scope)
            pointee = self._deref_type(expr.operand, scope)
            if isinstance(pointee, ct.ArrayType):
                return int(addr)
            return read_typed(self.memory, int(addr), pointee)
        if expr.op in ("++", "--"):
            lvalue = self._eval_lvalue(expr.operand, scope)
            t = self._resolve_type(lvalue.type)
            old = read_typed(self.memory, lvalue.addr, t)
            delta = self._pointer_step(t)
            new = old + delta if expr.op == "++" else old - delta
            write_typed(self.memory, lvalue.addr, new, t)
            # The value of ++x is the value stored back into x, i.e. wrapped
            # to x's type (++c on char 127 is -128, not 128).
            if isinstance(t, ct.IntType):
                return t.wrap(int(new))
            return new
        value = self._eval(expr.operand, scope)
        if expr.op == "!":
            return 0 if self._truthy(value) else 1
        if expr.op == "+":
            return value
        if expr.op in ("-", "~"):
            if expr.op == "-" and isinstance(value, float):
                return -value
            result = -int(value) if expr.op == "-" else ~int(value)
            # C evaluates unary - and ~ in the promoted operand type; wrap
            # there so -(unsigned int)1 is 4294967295, exactly as the
            # compiled code computes it.  The promoted wrap is static per
            # node, so cache it (False means "no wrapping applies").
            wrap = expr.__dict__.get("_interp_wrap")
            if wrap is None:
                wrap = False
                operand_type = ct.decay(self._expr_static_type(expr.operand, scope))
                if isinstance(operand_type, ct.IntType):
                    promoted = ct.integer_promote(operand_type)
                    if isinstance(promoted, ct.IntType):
                        wrap = promoted.wrap
                if expr.operand.ctype is None:
                    return wrap(result) if wrap else result
                expr._interp_wrap = wrap
            return wrap(result) if wrap else result
        raise CInterpreterError(f"unsupported unary operator {expr.op!r}")

    def _deref_type(self, pointer_expr: ast.Expr, scope: Dict[str, LValue]) -> ct.CType:
        t = ct.decay(self._expr_static_type(pointer_expr, scope))
        if isinstance(t, ct.PointerType):
            return self._resolve_type(t.pointee)
        return ct.INT

    def _eval_assignment(self, expr: ast.Assignment, scope: Dict[str, LValue]) -> Union[
        int, float
    ]:
        lvalue = self._eval_lvalue(expr.target, scope)
        t = self._resolve_type(lvalue.type)
        value = self._eval(expr.value, scope)
        if expr.op != "=":
            op = expr.op[:-1]
            current = read_typed(self.memory, lvalue.addr, t)
            if isinstance(t, ct.PointerType) and op in ("+", "-"):
                step = self._pointer_step(t)
                value = current + value * step if op == "+" else current - value * step
            else:
                # The compound operator's plan is static per node (the
                # target's type and the RHS's annotated type don't change
                # between evaluations); cache it like _eval_binary does.
                plan = expr.__dict__.get("_interp_plan")
                if plan is None:
                    right_type = ct.decay(self._expr_static_type(expr.value, scope))
                    plan = binary_op_plan(op, t, right_type)
                    if expr.value.ctype is not None:
                        expr._interp_plan = plan
                value = plan(current, value)
        if isinstance(t, ct.IntType):
            value = t.wrap(int(value))
        elif isinstance(t, ct.FloatType):
            value = float(value)
        write_typed(self.memory, lvalue.addr, value, t)
        return value

    def _eval_lvalue(self, expr: ast.Expr, scope: Dict[str, LValue]) -> LValue:
        if isinstance(expr, ast.Identifier):
            lvalue = self._lookup(expr.name, scope)
            if lvalue is None:
                raise CInterpreterError(f"use of undeclared identifier {expr.name!r}")
            return lvalue
        if isinstance(expr, ast.UnaryOp) and expr.op == "*":
            addr = self._eval(expr.operand, scope)
            return LValue(int(addr), self._deref_type(expr.operand, scope))
        if isinstance(expr, ast.Index):
            base_type = ct.decay(self._expr_static_type(expr.base, scope))
            base = self._eval(expr.base, scope)
            index = self._eval(expr.index, scope)
            if isinstance(base_type, ct.PointerType):
                elem = self._resolve_type(base_type.pointee)
            else:
                elem = ct.INT
            return LValue(int(base) + int(index) * max(1, elem.sizeof()), elem)
        if isinstance(expr, ast.Member):
            if expr.arrow:
                base_addr = int(self._eval(expr.base, scope))
                base_type = ct.decay(self._expr_static_type(expr.base, scope))
                struct_type = (
                    self._resolve_type(base_type.pointee)
                    if isinstance(base_type, ct.PointerType)
                    else ct.INT
                )
            else:
                base_lvalue = self._eval_lvalue(expr.base, scope)
                base_addr = base_lvalue.addr
                struct_type = self._resolve_type(base_lvalue.type)
            if not isinstance(struct_type, ct.StructType):
                raise CInterpreterError(
                    f"member access {expr.field_name!r} on non-struct value"
                )
            struct_type = self.structs.get(struct_type.tag, struct_type)
            if not struct_type.has_field(expr.field_name):
                raise CInterpreterError(
                    f"struct {struct_type.tag} has no member {expr.field_name!r}"
                )
            return LValue(
                base_addr + struct_type.field_offset(expr.field_name),
                self._resolve_type(struct_type.field_type(expr.field_name)),
            )
        if isinstance(expr, ast.Cast):
            return self._eval_lvalue(expr.operand, scope)
        raise CInterpreterError(f"expression {type(expr).__name__} is not an lvalue")

    # -- calls -----------------------------------------------------------------

    def _eval_call(self, expr: ast.Call, scope: Dict[str, LValue]) -> Union[int, float]:
        if not isinstance(expr.func, ast.Identifier):
            raise CInterpreterError("indirect calls are not supported")
        name = expr.func.name
        args = [self._eval(arg, scope) for arg in expr.args]
        if name in self.functions:
            if self.steps > self.max_steps:
                raise RuntimeLimitExceeded(f"exceeded {self.max_steps} execution steps")
            result = self._call_user_function(self.functions[name], args)
            return 0 if result is None else result
        return self._call_builtin(name, args, expr, scope)

    def _call_builtin(
        self,
        name: str,
        args: List[Union[int, float]],
        expr: ast.Call,
        scope: Dict[str, LValue],
    ) -> Union[int, float]:
        import math

        memory = self.memory
        if name == "abs":
            return abs(int(args[0]))
        if name == "labs":
            return abs(int(args[0]))
        if name in ("fabs", "fabsf"):
            return abs(float(args[0]))
        if name in ("sqrt", "sqrtf"):
            return math.sqrt(max(0.0, float(args[0])))
        if name == "sin":
            return math.sin(float(args[0]))
        if name == "cos":
            return math.cos(float(args[0]))
        if name == "tan":
            return math.tan(float(args[0]))
        if name == "exp":
            return math.exp(min(700.0, float(args[0])))
        if name == "log":
            return math.log(float(args[0])) if float(args[0]) > 0 else 0.0
        if name == "pow":
            try:
                return float(args[0]) ** float(args[1])
            except (OverflowError, ZeroDivisionError):
                return 0.0
        if name == "floor":
            return float(math.floor(float(args[0])))
        if name == "ceil":
            return float(math.ceil(float(args[0])))
        if name == "memcpy" or name == "memmove":
            dest, src, count = int(args[0]), int(args[1]), int(args[2])
            data = memory.read_bytes(src, count) if count > 0 else b""
            if count > 0:
                memory.write_bytes(dest, data)
            return dest
        if name == "memset":
            dest, value, count = int(args[0]), int(args[1]), int(args[2])
            if count > 0:
                memory.write_bytes(dest, bytes([value & 0xFF]) * count)
            return dest
        if name == "strlen":
            return len(memory.read_cstring(int(args[0])))
        if name == "strcpy":
            text = memory.read_cstring(int(args[1]))
            memory.write_cstring(int(args[0]), text)
            return int(args[0])
        if name == "strncpy":
            text = memory.read_cstring(int(args[1]))[: int(args[2])]
            memory.write_cstring(int(args[0]), text)
            return int(args[0])
        if name == "strcat":
            base = memory.read_cstring(int(args[0]))
            extra = memory.read_cstring(int(args[1]))
            memory.write_cstring(int(args[0]), base + extra)
            return int(args[0])
        if name == "strcmp":
            a = memory.read_cstring(int(args[0]))
            b = memory.read_cstring(int(args[1]))
            return (a > b) - (a < b)
        if name == "strchr":
            text = memory.read_cstring(int(args[0]))
            ch = chr(int(args[1]) & 0xFF)
            index = text.find(ch)
            return 0 if index < 0 else int(args[0]) + index
        if name == "malloc" or name == "calloc":
            size = int(args[0]) * (
                int(args[1]) if name == "calloc" and len(args) > 1 else 1
            )
            return memory.allocate(max(1, size))
        if name == "free":
            return 0
        if name in ("printf", "putchar", "puts"):
            return 0
        if name == "isdigit":
            return 1 if chr(int(args[0]) & 0xFF).isdigit() else 0
        if name == "isalpha":
            return 1 if chr(int(args[0]) & 0xFF).isalpha() else 0
        if name == "isspace":
            return 1 if chr(int(args[0]) & 0xFF).isspace() else 0
        if name == "toupper":
            return ord(chr(int(args[0]) & 0xFF).upper())
        if name == "tolower":
            return ord(chr(int(args[0]) & 0xFF).lower())
        if name == "rand":
            return 42
        raise CInterpreterError(f"call to unknown function {name!r}")


# ---------------------------------------------------------------------------
# Shared arithmetic semantics
# ---------------------------------------------------------------------------


_CMP_FUNCS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _raw_int_binop(op: str, li: int, ri: int) -> int:
    """The historical unwrapped 64-bit-ish fallback for pointers and unknown
    types (addresses are plain Python ints that must not be wrapped)."""
    if op == "+":
        return li + ri
    if op == "-":
        return li - ri
    if op == "*":
        return li * ri
    if op == "/":
        if ri == 0:
            raise CInterpreterError("integer division by zero")
        quotient = abs(li) // abs(ri)
        return quotient if (li >= 0) == (ri >= 0) else -quotient
    if op == "%":
        if ri == 0:
            raise CInterpreterError("integer modulo by zero")
        quotient = abs(li) // abs(ri)
        signed_quotient = quotient if (li >= 0) == (ri >= 0) else -quotient
        return li - signed_quotient * ri
    if op == "<<":
        return li << (ri & 63)
    if op == ">>":
        return li >> (ri & 63)
    if op == "&":
        return li & ri
    if op == "|":
        return li | ri
    if op == "^":
        return li ^ ri
    raise CInterpreterError(f"unsupported binary operator {op!r}")


def binary_op_plan(
    op: str, left_type: ct.CType, right_type: ct.CType
) -> "Callable[[Union[int, float], Union[int, float]], Union[int, float]]":
    """Compile one C binary operator at fixed operand types into a closure.

    All the type-driven decisions (pointer scaling, usual arithmetic
    conversions, the width the operation wraps at) depend only on the
    operands' *static* types, so the interpreter computes this plan once
    per AST node and replays the closure on every evaluation.  The closures
    reproduce :func:`apply_binary`'s semantics exactly — float contagion is
    still checked against the runtime values, because an unannotated tree
    can hand a float to an operator whose static types look integral.
    """
    static_float = isinstance(left_type, ct.FloatType) or isinstance(
        right_type, ct.FloatType
    )

    # Pointer arithmetic scaling.
    if op in ("+", "-"):
        left_ptr = isinstance(left_type, ct.PointerType)
        right_ptr = isinstance(right_type, ct.PointerType)
        if left_ptr and not right_ptr:
            step = max(1, left_type.pointee.sizeof())
            if op == "+":
                return lambda left, right: int(left) + int(right) * step
            return lambda left, right: int(left) - int(right) * step
        if right_ptr and not left_ptr and op == "+":
            step = max(1, right_type.pointee.sizeof())
            return lambda left, right: int(right) + int(left) * step
        if left_ptr and right_ptr:
            step = max(1, left_type.pointee.sizeof())
            return lambda left, right: (int(left) - int(right)) // step

    if op in ("==", "!=", "<", ">", "<=", ">="):
        compare = _CMP_FUNCS[op]
        wrap = None
        if (
            not static_float
            and isinstance(left_type, ct.IntType)
            and isinstance(right_type, ct.IntType)
        ):
            # C compares in the common type: converting both operands there
            # is what makes mixed signed/unsigned comparisons (-1 < 1u is
            # false!) match the compiled code.
            common = ct.usual_arithmetic_conversion(
                ct.integer_promote(left_type), ct.integer_promote(right_type)
            )
            if isinstance(common, ct.IntType):
                wrap = common.wrap

        def run_cmp(left, right):
            if wrap is not None and not isinstance(left, float) and not isinstance(
                right, float
            ):
                left = wrap(int(left))
                right = wrap(int(right))
            return 1 if compare(left, right) else 0

        return run_cmp

    # The type the integer operation is performed in.  Pointers and unknown
    # types keep the unwrapped fallback semantics.
    wrap_bits = 0
    wrap_unsigned = False
    if isinstance(left_type, ct.IntType):
        promoted_left = ct.integer_promote(left_type)
        wrap_type: Optional[ct.CType] = None
        if op in ("<<", ">>"):
            wrap_type = promoted_left
        elif isinstance(right_type, ct.IntType):
            wrap_type = ct.usual_arithmetic_conversion(
                promoted_left, ct.integer_promote(right_type)
            )
        if isinstance(wrap_type, ct.IntType):
            wrap_bits = 8 * wrap_type.sizeof()
            wrap_unsigned = wrap_type.unsigned

    int_binop = ct.int_binop

    def run(left, right):
        if op in ("+", "-", "*", "/") and (
            static_float or isinstance(left, float) or isinstance(right, float)
        ):
            lf, rf = float(left), float(right)
            if op == "+":
                return lf + rf
            if op == "-":
                return lf - rf
            if op == "*":
                return lf * rf
            if rf == 0.0:
                raise CInterpreterError("floating point division by zero")
            return lf / rf
        if wrap_bits:
            try:
                # Shared with the compiler's constant folder
                # (repro.compiler.opt) so -O3 folds and interpretation agree
                # by construction.
                return int_binop(op, int(left), int(right), wrap_bits, wrap_unsigned)
            except ZeroDivisionError as exc:
                raise CInterpreterError(str(exc)) from exc
            except ValueError as exc:
                raise CInterpreterError(f"unsupported binary operator {op!r}") from exc
        return _raw_int_binop(op, int(left), int(right))

    return run


def apply_binary(
    op: str,
    left: Union[int, float],
    right: Union[int, float],
    left_type: ct.CType,
    right_type: ct.CType,
) -> Union[int, float]:
    """Apply a C binary operator with (simplified) C semantics.

    Integer division truncates toward zero, comparison operators return 0/1,
    and integer results wrap at the width of the operation's common type
    (shifts use the promoted left operand's type and mask the shift count by
    that width, matching what the hardware — and the compiler's constant
    folder in :mod:`repro.compiler.opt` — does).  One-shot convenience over
    :func:`binary_op_plan`; hot paths build the plan once and reuse it.
    """
    return binary_op_plan(op, left_type, right_type)(left, right)


# ---------------------------------------------------------------------------
# Dispatch tables (type-keyed, built once; one dict lookup per node visit)
# ---------------------------------------------------------------------------

_STMT_DISPATCH = {
    ast.Block: Interpreter._exec_block,
    ast.Declaration: Interpreter._exec_declaration,
    ast.ExprStmt: Interpreter._exec_expr_stmt,
    ast.If: Interpreter._exec_if,
    ast.While: Interpreter._exec_while,
    ast.DoWhile: Interpreter._exec_do_while,
    ast.For: Interpreter._exec_for,
    ast.Return: Interpreter._exec_return,
    ast.Break: Interpreter._exec_break,
    ast.Continue: Interpreter._exec_continue,
    ast.EmptyStmt: Interpreter._exec_empty,
}

_EVAL_DISPATCH = {
    ast.IntLiteral: Interpreter._eval_literal,
    ast.FloatLiteral: Interpreter._eval_literal,
    ast.CharLiteral: Interpreter._eval_literal,
    ast.StringLiteral: Interpreter._eval_string,
    ast.Identifier: Interpreter._eval_identifier,
    ast.BinaryOp: Interpreter._eval_binary,
    ast.UnaryOp: Interpreter._eval_unary,
    ast.PostfixOp: Interpreter._eval_postfix,
    ast.Assignment: Interpreter._eval_assignment,
    ast.Conditional: Interpreter._eval_conditional,
    ast.Call: Interpreter._eval_call,
    ast.Index: Interpreter._eval_index_or_member,
    ast.Member: Interpreter._eval_index_or_member,
    ast.Cast: Interpreter._eval_cast,
    ast.SizeOf: Interpreter._eval_sizeof,
}
