"""The Mini-C type system.

Types are modelled as immutable-ish dataclasses.  The same representation is
shared by the type checker (:mod:`repro.lang.typecheck`), the compiler
(:mod:`repro.compiler`) and the type-inference engine
(:mod:`repro.typeinfer`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class CType:
    """Base class for all Mini-C types."""

    def is_integer(self) -> bool:
        return False

    def is_float(self) -> bool:
        return False

    def is_arithmetic(self) -> bool:
        return self.is_integer() or self.is_float()

    def is_pointer(self) -> bool:
        return False

    def is_scalar(self) -> bool:
        return self.is_arithmetic() or self.is_pointer()

    def sizeof(self) -> int:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - overridden
        return self.__class__.__name__


@dataclass(frozen=True)
class VoidType(CType):
    """The ``void`` type."""

    def sizeof(self) -> int:
        return 1

    def __str__(self) -> str:
        return "void"


#: Integer kinds, ordered by conversion rank.
_INT_RANKS = {"char": 0, "short": 1, "int": 2, "long": 3, "long long": 4}
_INT_SIZES = {"char": 1, "short": 2, "int": 4, "long": 8, "long long": 8}


@dataclass(frozen=True)
class IntType(CType):
    """An integer type such as ``int`` or ``unsigned long``."""

    kind: str = "int"
    unsigned: bool = False

    def is_integer(self) -> bool:
        return True

    def sizeof(self) -> int:
        return _INT_SIZES[self.kind]

    @property
    def rank(self) -> int:
        return _INT_RANKS[self.kind]

    def min_value(self) -> int:
        if self.unsigned:
            return 0
        return -(1 << (8 * self.sizeof() - 1))

    def max_value(self) -> int:
        bits = 8 * self.sizeof()
        if self.unsigned:
            return (1 << bits) - 1
        return (1 << (bits - 1)) - 1

    def wrap(self, value: int) -> int:
        """Wrap an arbitrary Python int into this type's representable range."""
        bits = 8 * self.sizeof()
        value &= (1 << bits) - 1
        if not self.unsigned and value >= (1 << (bits - 1)):
            value -= 1 << bits
        return value

    def __str__(self) -> str:
        prefix = "unsigned " if self.unsigned else ""
        return prefix + self.kind


@dataclass(frozen=True)
class FloatType(CType):
    """A floating point type (``float`` or ``double``)."""

    kind: str = "double"

    def is_float(self) -> bool:
        return True

    def sizeof(self) -> int:
        return 4 if self.kind == "float" else 8

    def __str__(self) -> str:
        return self.kind


@dataclass(frozen=True)
class PointerType(CType):
    """A pointer to some pointee type."""

    pointee: CType

    def is_pointer(self) -> bool:
        return True

    def sizeof(self) -> int:
        return 8

    def __str__(self) -> str:
        return f"{self.pointee} *"


@dataclass(frozen=True)
class ArrayType(CType):
    """A fixed- or unknown-length array."""

    element: CType
    length: Optional[int] = None

    def sizeof(self) -> int:
        if self.length is None:
            return 8
        return self.element.sizeof() * self.length

    def decay(self) -> PointerType:
        """Return the pointer type this array decays to in expressions."""
        return PointerType(self.element)

    def __str__(self) -> str:
        length = "" if self.length is None else str(self.length)
        return f"{self.element} [{length}]"


@dataclass(frozen=True)
class StructField:
    """A named member of a struct."""

    name: str
    type: CType


@dataclass
class StructType(CType):
    """A struct type.  Equality is nominal (by tag)."""

    tag: str
    fields: List[StructField] = field(default_factory=list)
    complete: bool = True

    def sizeof(self) -> int:
        # No padding/alignment model: fields are packed.  Both the interpreter
        # and the VMs use the same layout so behaviour is consistent.
        return sum(f.type.sizeof() for f in self.fields) if self.fields else 1

    def field_offset(self, name: str) -> int:
        offset = 0
        for f in self.fields:
            if f.name == name:
                return offset
            offset += f.type.sizeof()
        raise KeyError(f"struct {self.tag} has no field {name!r}")

    def field_type(self, name: str) -> CType:
        for f in self.fields:
            if f.name == name:
                return f.type
        raise KeyError(f"struct {self.tag} has no field {name!r}")

    def has_field(self, name: str) -> bool:
        return any(f.name == name for f in self.fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StructType) and other.tag == self.tag

    def __hash__(self) -> int:
        return hash(("struct", self.tag))

    def __str__(self) -> str:
        return f"struct {self.tag}"


@dataclass(frozen=True)
class FunctionType(CType):
    """A function type (return type plus parameter types)."""

    return_type: CType
    param_types: Tuple[CType, ...] = ()
    variadic: bool = False

    def sizeof(self) -> int:
        return 8

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.param_types) or "void"
        return f"{self.return_type} ({params})"


@dataclass(frozen=True)
class NamedType(CType):
    """A reference to a typedef name whose definition may be unknown.

    The type checker resolves these against the typedef table; unresolved
    names are exactly what the type-inference engine synthesises definitions
    for.
    """

    name: str

    def sizeof(self) -> int:
        return 8

    def __str__(self) -> str:
        return self.name


# Convenient singletons used throughout the code base.
VOID = VoidType()
CHAR = IntType("char")
UCHAR = IntType("char", unsigned=True)
SHORT = IntType("short")
USHORT = IntType("short", unsigned=True)
INT = IntType("int")
UINT = IntType("int", unsigned=True)
LONG = IntType("long")
ULONG = IntType("long", unsigned=True)
FLOAT = FloatType("float")
DOUBLE = FloatType("double")


def is_void(t: CType) -> bool:
    return isinstance(t, VoidType)


def decay(t: CType) -> CType:
    """Apply array-to-pointer decay if applicable."""
    if isinstance(t, ArrayType):
        return t.decay()
    return t


def usual_arithmetic_conversion(left: CType, right: CType) -> CType:
    """Return the common type of a binary arithmetic expression.

    This implements a simplified version of C's "usual arithmetic
    conversions": floats win over integers, ``double`` wins over ``float``,
    larger rank wins, unsigned wins on ties.
    """
    if isinstance(left, FloatType) or isinstance(right, FloatType):
        if (isinstance(left, FloatType) and left.kind == "double") or (
            isinstance(right, FloatType) and right.kind == "double"
        ):
            return DOUBLE
        return FLOAT
    if isinstance(left, IntType) and isinstance(right, IntType):
        if left.rank == right.rank:
            if left.unsigned or right.unsigned:
                return IntType(
                    left.kind if left.rank >= right.rank else right.kind, unsigned=True
                )
            return left
        bigger = left if left.rank > right.rank else right
        # Promote to at least int.
        if bigger.rank < INT.rank:
            return INT
        return bigger
    # Pointers and other cases: fall back to the left type.
    return left


def integer_promote(t: CType) -> CType:
    """Promote small integer types to ``int``."""
    if isinstance(t, IntType) and t.rank < INT.rank:
        return INT
    return t


def literal_int_type(value: int) -> IntType:
    """The C type of a decimal integer literal: int, or long beyond it.

    The single source of truth for the type checker, the interpreter's
    static typing, lowering and the constant folder — they must agree or
    the substrates diverge on wide literals.
    """
    return LONG if abs(value) > 0x7FFFFFFF else INT


#: Integer kind with exactly N bits, used to rebuild a type from a width.
_BITS_TO_KIND = {8: "char", 16: "short", 32: "int", 64: "long"}

#: All eight (bits, unsigned) combinations, interned once — this lookup is
#: on the per-instruction hot path of the IR executor.
_INT_TYPE_CACHE: Dict[Tuple[int, bool], IntType] = {
    (bits, unsigned): IntType(kind, unsigned=unsigned)
    for bits, kind in _BITS_TO_KIND.items()
    for unsigned in (False, True)
}


def int_type_for_bits(bits: int, unsigned: bool = False) -> IntType:
    """The :class:`IntType` of width ``bits`` (8/16/32/64)."""
    return _INT_TYPE_CACHE[(bits, unsigned)]


def int_binop(
    op: str, left: int, right: int, bits: int = 64, unsigned: bool = False
) -> int:
    """Apply a C integer operator at a fixed width with wrapped semantics.

    This is the single source of truth shared by the interpreter
    (:func:`repro.lang.interpreter.apply_binary`) and the compiler's
    constant folder (:mod:`repro.compiler.opt`), so the two cannot drift.
    Operands are first converted into the type's domain (so ``-1`` becomes
    ``2**bits - 1`` when ``unsigned``), division truncates toward zero,
    shift counts are masked by the width, and the result wraps to the
    width.  Raises :class:`ZeroDivisionError` for ``/ 0`` and ``% 0``.
    """
    t = int_type_for_bits(bits, unsigned=unsigned)
    li = t.wrap(int(left))
    ri = t.wrap(int(right))
    if op == "+":
        result = li + ri
    elif op == "-":
        result = li - ri
    elif op == "*":
        result = li * ri
    elif op == "/":
        if ri == 0:
            raise ZeroDivisionError("integer division by zero")
        quotient = abs(li) // abs(ri)
        result = quotient if (li >= 0) == (ri >= 0) else -quotient
    elif op == "%":
        if ri == 0:
            raise ZeroDivisionError("integer modulo by zero")
        quotient = abs(li) // abs(ri)
        signed_quotient = quotient if (li >= 0) == (ri >= 0) else -quotient
        result = li - signed_quotient * ri
    elif op == "<<":
        result = li << (ri & (bits - 1))
    elif op == ">>":
        result = li >> (ri & (bits - 1))
    elif op == "&":
        result = li & ri
    elif op == "|":
        result = li | ri
    elif op == "^":
        result = li ^ ri
    else:
        raise ValueError(f"unsupported integer operator {op!r}")
    return t.wrap(result)


def types_compatible(a: CType, b: CType) -> bool:
    """Loose compatibility check used for assignments and calls."""
    a = decay(a)
    b = decay(b)
    if a.is_arithmetic() and b.is_arithmetic():
        return True
    if isinstance(a, PointerType) and isinstance(b, PointerType):
        return True
    if isinstance(a, PointerType) and b.is_integer():
        return True
    if a.is_integer() and isinstance(b, PointerType):
        return True
    if isinstance(a, StructType) and isinstance(b, StructType):
        return a.tag == b.tag
    if isinstance(a, NamedType) or isinstance(b, NamedType):
        return True
    if isinstance(a, VoidType) and isinstance(b, VoidType):
        return True
    return False


#: Builtin typedef names that decompilers routinely emit; used both by the
#: parser (to recognise them as types) and by the type-inference engine.
BUILTIN_TYPEDEFS: Dict[str, CType] = {
    "size_t": ULONG,
    "ssize_t": LONG,
    "ptrdiff_t": LONG,
    "intptr_t": LONG,
    "uintptr_t": ULONG,
    "int8_t": CHAR,
    "uint8_t": UCHAR,
    "int16_t": SHORT,
    "uint16_t": USHORT,
    "int32_t": INT,
    "uint32_t": UINT,
    "int64_t": LONG,
    "uint64_t": ULONG,
    "int_32": INT,
    "bool": INT,
    "_Bool": INT,
    "uint": UINT,
    "ulong": ULONG,
    "ushort": USHORT,
    "uchar": UCHAR,
    "byte": UCHAR,
    "undefined": UCHAR,
    "undefined1": UCHAR,
    "undefined2": USHORT,
    "undefined4": UINT,
    "undefined8": ULONG,
}
