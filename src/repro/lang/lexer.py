"""Lexer for the Mini-C language.

The lexer converts a source string into a flat list of :class:`Token`
objects.  It understands the subset of C used throughout the reproduction:
identifiers, keywords, integer / floating point / character / string
literals, all the multi-character operators and punctuation, and both
``//`` and ``/* ... */`` comments (which are discarded).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List


class TokenKind(enum.Enum):
    """Classification of a lexical token."""

    IDENT = "ident"
    KEYWORD = "keyword"
    INT_LIT = "int"
    FLOAT_LIT = "float"
    CHAR_LIT = "char"
    STRING_LIT = "string"
    PUNCT = "punct"
    EOF = "eof"


#: Keywords recognised by the Mini-C front end.
KEYWORDS = frozenset(
    {
        "void",
        "char",
        "short",
        "int",
        "long",
        "float",
        "double",
        "signed",
        "unsigned",
        "struct",
        "union",
        "enum",
        "typedef",
        "const",
        "static",
        "extern",
        "restrict",
        "__restrict",
        "volatile",
        "inline",
        "if",
        "else",
        "while",
        "for",
        "do",
        "return",
        "break",
        "continue",
        "sizeof",
        "switch",
        "case",
        "default",
        "goto",
    }
)

#: Multi-character punctuation, longest first so maximal munch works.
_PUNCTUATIONS = [
    "<<=",
    ">>=",
    "...",
    "->",
    "++",
    "--",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "~",
    "?",
    ":",
    ";",
    ",",
    ".",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
]


class LexError(Exception):
    """Raised when the input contains a character sequence that is not Mini-C."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: The token class.
        text: The exact source text of the token (escape sequences in string
            and character literals are *not* resolved here).
        line: 1-based source line.
        column: 1-based source column.
    """

    kind: TokenKind
    text: str
    line: int = 0
    column: int = 0

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.value}, {self.text!r})"


class Lexer:
    """Streaming lexer over a Mini-C source string."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.source):
                    raise LexError("unterminated block comment", self.line, self.column)
                self._advance(2)
            elif ch == "#":
                # Preprocessor lines (e.g. #include) are skipped; the corpus
                # generator emits self-contained code but decompiler output
                # occasionally includes them.
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def tokens(self) -> Iterator[Token]:
        """Yield all tokens, ending with a single EOF token."""
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.source):
                yield Token(TokenKind.EOF, "", self.line, self.column)
                return
            yield self._next_token()

    def _next_token(self) -> Token:
        line, column = self.line, self.column
        ch = self._peek()
        if ch.isalpha() or ch == "_":
            return self._lex_identifier(line, column)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number(line, column)
        if ch == '"':
            return self._lex_string(line, column)
        if ch == "'":
            return self._lex_char(line, column)
        for punct in _PUNCTUATIONS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, line, column)
        raise LexError(f"unexpected character {ch!r}", line, column)

    def _lex_identifier(self, line: int, column: int) -> Token:
        start = self.pos
        while self.pos < len(self.source) and (
            self._peek().isalnum() or self._peek() == "_"
        ):
            self._advance()
        text = self.source[start : self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.pos
        is_float = False
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
        else:
            while self._peek().isdigit():
                self._advance()
            if self._peek() == "." and self._peek(1) != ".":
                is_float = True
                self._advance()
                while self._peek().isdigit():
                    self._advance()
            if self._peek() in "eE" and (
                self._peek(1).isdigit() or (
                    self._peek(1) in "+-" and self._peek(2).isdigit()
                )
            ):
                is_float = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
                while self._peek().isdigit():
                    self._advance()
        # Suffixes: u, l, ul, ll, f etc.
        while self._peek() and self._peek() in "uUlLfF":
            if self._peek() in "fF":
                is_float = True
            self._advance()
        text = self.source[start : self.pos]
        kind = TokenKind.FLOAT_LIT if is_float else TokenKind.INT_LIT
        return Token(kind, text, line, column)

    def _lex_string(self, line: int, column: int) -> Token:
        start = self.pos
        self._advance()  # opening quote
        while self.pos < len(self.source) and self._peek() != '"':
            if self._peek() == "\\":
                self._advance()
            self._advance()
        if self.pos >= len(self.source):
            raise LexError("unterminated string literal", line, column)
        self._advance()  # closing quote
        return Token(TokenKind.STRING_LIT, self.source[start : self.pos], line, column)

    def _lex_char(self, line: int, column: int) -> Token:
        start = self.pos
        self._advance()  # opening quote
        while self.pos < len(self.source) and self._peek() != "'":
            if self._peek() == "\\":
                self._advance()
            self._advance()
        if self.pos >= len(self.source):
            raise LexError("unterminated character literal", line, column)
        self._advance()
        return Token(TokenKind.CHAR_LIT, self.source[start : self.pos], line, column)


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` and return the full token list including EOF."""
    return list(Lexer(source).tokens())


def parse_int_literal(text: str) -> int:
    """Parse a C integer literal's value (handles hex and suffixes)."""
    cleaned = text.rstrip("uUlL")
    if cleaned.lower().startswith("0x"):
        return int(cleaned, 16)
    if cleaned.startswith("0") and len(cleaned) > 1 and cleaned.isdigit():
        return int(cleaned, 8)
    return int(cleaned)


def parse_float_literal(text: str) -> float:
    """Parse a C floating point literal's value (drops suffixes)."""
    return float(text.rstrip("fFlL"))


_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "a": "\a",
    "b": "\b",
    "f": "\f",
    "v": "\v",
}


def unescape_string(text: str) -> str:
    """Resolve escape sequences in the body of a string/char literal.

    ``text`` must include the surrounding quotes.
    """
    body = text[1:-1]
    out: List[str] = []
    index = 0
    while index < len(body):
        ch = body[index]
        if ch == "\\" and index + 1 < len(body):
            out.append(_ESCAPES.get(body[index + 1], body[index + 1]))
            index += 2
        else:
            out.append(ch)
            index += 1
    return "".join(out)
