"""Performance measurement for the reproduction's pipelines.

:mod:`repro.perf.bench` times each pipeline stage (generation, front end,
interpretation, lowering + IR optimisation, backend emission) and the
end-to-end differential-fuzz throughput, and writes the results to
``BENCH_pipeline.json`` — the persisted trajectory future PRs regress
against (CI fails on a >30% end-to-end throughput drop).
"""
