"""Pipeline benchmark harness: ``python -m repro.perf.bench``.

Times every stage of the corpus pipeline on fixed-seed generated programs —

* **generator**   — seeded program + argument-vector sampling (including the
  printer/parser/typechecker round-trip the sampler performs);
* **frontend**    — parse + typecheck of already-rendered sources;
* **interpreter** — the reference-leg evaluator, one run per input vector;
* **lint**        — the UB/dataflow linter (:mod:`repro.analysis.lint`)
  over the already-typechecked ASTs, the same pass the eval scorer runs
  as its pre-filter;
* **lowering**    — AST opt + lowering + IR opt at both -O0 and -O3;
* **backends**    — x86-64 and AArch64 emission from shared lowered IR;
* **fuzz end-to-end** — the differential campaign itself, measured both on
  the sequential per-case path (``--no-batch`` semantics) and on the
  batched path that ships one native build/run per leg per batch;
* **eval** — decompilation-candidate scoring throughput
  (:mod:`repro.eval.score`): N mutation-derived candidates per function
  pushed through parse → typecheck → compile → batched native execution,
  reported as candidates/s

— and writes the numbers to ``BENCH_pipeline.json``.  The committed copy at
the repo root is the performance trajectory future PRs regress against:
``--compare BENCH_pipeline.json`` exits non-zero when the measured batched
end-to-end throughput drops more than ``--tolerance`` (default 30%) below
the committed number, which is what the CI ``bench-smoke`` job gates on.

Typical invocations::

    python -m repro.perf.bench --quick                      # CI smoke
    python -m repro.perf.bench --output BENCH_pipeline.json # refresh baseline
    python -m repro.perf.bench --quick --compare BENCH_pipeline.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from typing import Dict, List, Optional

from repro.compiler.driver import emit_from_lowered, lower_for_backend
from repro.testing.frontend import CaseContext
from repro.testing.fuzz import FuzzConfig, case_seed, run_campaign
from repro.testing.generator import GeneratedCase, ProgramGenerator
from repro.testing.native import have_native_toolchain
from repro.lang.parser import parse_program
from repro.lang.typecheck import TypeChecker

#: The pre-batching pipeline measured on the same fixed-seed workload
#: (PR 3 tree, `fuzz --seed 0 --count 500`, four legs, single core).  Kept
#: in the report so the trajectory records where the optimisation started.
PRE_BATCHING_BASELINE = {
    "cases": 500,
    "seconds": 69.9,
    "cases_per_second": 7.2,
    "note": "PR 3 per-case pipeline: one native build+run per case per leg",
}

#: The subprocess-batched pipeline as committed before the fork-server
#: rebuild (PR 6 tree, same workload/host class as above): one harness TU
#: compiled and one subprocess launched per batch leg, eval batching one
#: toolchain invocation per *function*.  The fork-server acceptance target
#: is 2x these numbers.
PRE_FORKSERVER_BASELINE = {
    "fuzz_cases_per_second": 35.55,
    "eval_candidates_per_second": 57.72,
    "note": "PR 6 subprocess batches: harness TU + subprocess per batch leg, "
    "one native build per eval function",
}


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware).

    ``os.cpu_count()`` reports the machine; CI runners and cgroup-limited
    containers routinely pin the process to a subset, and that subset is
    what every scaling number in the report was really measured against.
    """
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux hosts
        return os.cpu_count() or 1


def _rate(count: int, seconds: float) -> float:
    return round(count / seconds, 2) if seconds > 0 else float("inf")


def _stage(count_label: str, count: int, seconds: float) -> Dict:
    return {
        count_label: count,
        "seconds": round(seconds, 3),
        f"{count_label}_per_second": _rate(count, seconds),
    }


def bench_generator(seed: int, count: int) -> Dict:
    started = time.perf_counter()
    for index in range(count):
        ProgramGenerator(case_seed(seed, index)).generate()
    return _stage("cases", count, time.perf_counter() - started)


def _make_cases(seed: int, count: int) -> List[GeneratedCase]:
    return [
        ProgramGenerator(case_seed(seed, index)).generate() for index in range(count)
    ]


def bench_frontend(cases: List[GeneratedCase]) -> Dict:
    started = time.perf_counter()
    for case in cases:
        program = parse_program(case.source)
        TypeChecker(program).check()
    return _stage("cases", len(cases), time.perf_counter() - started)


def bench_interpreter(cases: List[GeneratedCase]) -> Dict:
    contexts = [
        CaseContext(case.source, case.name, program=case.program, checker=case.checker)
        for case in cases
    ]
    runs = 0
    started = time.perf_counter()
    for case, context in zip(cases, contexts):
        for args in case.inputs:
            context.interpreter().run_function(case.name, args)
            runs += 1
    return _stage("runs", runs, time.perf_counter() - started)


def bench_lint(cases: List[GeneratedCase]) -> Dict:
    from repro.analysis.lint import lint_program

    findings = 0
    started = time.perf_counter()
    for case in cases:
        findings += len(lint_program(case.program, name=case.name))
    out = _stage("cases", len(cases), time.perf_counter() - started)
    out["findings"] = findings
    return out


def bench_lowering(cases: List[GeneratedCase]) -> Dict:
    started = time.perf_counter()
    for case in cases:
        for opt_level in ("O0", "O3"):
            lower_for_backend(
                case.program, name=case.name, opt_level=opt_level, checker=case.checker
            )
    return _stage("lowerings", 2 * len(cases), time.perf_counter() - started)


def bench_backends(cases: List[GeneratedCase]) -> Dict:
    lowered = [
        lower_for_backend(
            case.program, name=case.name, opt_level=opt, checker=case.checker
        )
        for case in cases
        for opt in ("O0", "O3")
    ]
    emissions = 0
    started = time.perf_counter()
    for item in lowered:
        for isa in ("x86", "arm"):
            emit_from_lowered(item, isa)
            emissions += 1
    return _stage("emissions", emissions, time.perf_counter() - started)


def bench_fuzz(
    seed: int,
    sequential_count: int,
    batched_count: int,
    jobs: int,
    jobs_curve: Optional[List[int]] = None,
) -> Dict:
    backends = ("x86",) if have_native_toolchain() else ()
    sequential_config = FuzzConfig(backends=backends, use_batch=False)
    batched_config = FuzzConfig(backends=backends, use_batch=True, fork_server=True)
    subprocess_config = FuzzConfig(backends=backends, use_batch=True, fork_server=False)

    started = time.perf_counter()
    sequential_results = run_campaign(sequential_config, seed, sequential_count)
    sequential_seconds = time.perf_counter() - started

    started = time.perf_counter()
    subprocess_results = run_campaign(subprocess_config, seed, batched_count, jobs=jobs)
    subprocess_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batched_results = run_campaign(batched_config, seed, batched_count, jobs=jobs)
    batched_seconds = time.perf_counter() - started

    sequential = _stage("cases", sequential_count, sequential_seconds)
    batched = _stage("cases", batched_count, batched_seconds)
    batched["jobs"] = jobs
    batched["fork_server"] = True
    batched_subprocess = _stage("cases", batched_count, subprocess_seconds)
    batched_subprocess["jobs"] = jobs
    batched_subprocess["fork_server"] = False
    clean = all(
        not r.failed
        for r in sequential_results + subprocess_results + batched_results
    )
    out = {
        "legs": ["interp", "ir-O3"]
        + [f"{b}-{o}" for b in backends for o in ("O0", "O3")],
        "all_cases_clean": clean,
        "pre_batching_baseline": dict(PRE_BATCHING_BASELINE),
        "pre_forkserver_baseline": dict(PRE_FORKSERVER_BASELINE),
        "sequential": sequential,
        "batched": batched,
        "batched_subprocess": batched_subprocess,
        "speedup_batched_vs_sequential": round(
            batched["cases_per_second"] / max(1e-9, sequential["cases_per_second"]), 2
        ),
        "speedup_forkserver_vs_subprocess": round(
            batched["cases_per_second"]
            / max(1e-9, batched_subprocess["cases_per_second"]),
            2,
        ),
        "speedup_batched_vs_pre_batching": round(
            batched["cases_per_second"]
            / PRE_BATCHING_BASELINE["cases_per_second"],
            2,
        ),
        "speedup_batched_vs_pre_forkserver": round(
            batched["cases_per_second"]
            / PRE_FORKSERVER_BASELINE["fuzz_cases_per_second"],
            2,
        ),
    }
    if jobs_curve:
        out["jobs_curve"] = bench_jobs_curve(
            batched_config, seed, batched_count, jobs_curve
        )
    return out


def bench_jobs_curve(
    config: FuzzConfig, seed: int, count: int, jobs_values: List[int]
) -> List[Dict]:
    """The batched campaign timed at each worker count.

    Each point carries its speedup over the curve's jobs=1 point (or the
    smallest measured point when 1 is not in the list) — the number the CI
    multi-core gate checks.
    """
    points: List[Dict] = []
    for jobs in jobs_values:
        started = time.perf_counter()
        run_campaign(config, seed, count, jobs=jobs)
        point = _stage("cases", count, time.perf_counter() - started)
        point["jobs"] = jobs
        points.append(point)
    base = min(points, key=lambda p: p["jobs"])["cases_per_second"]
    for point in points:
        point["speedup_vs_jobs1"] = round(
            point["cases_per_second"] / max(1e-9, base), 2
        )
    return points


def bench_eval(seed: int, functions: int, candidates: int) -> Dict:
    """Decompilation-hypothesis scoring throughput (the repro.eval loop).

    Builds a generated dataset, manufactures labelled candidate sets and
    scores them on the batched native path (interpreter substrate when the
    host has no toolchain).  The agreement number is recorded so a
    throughput win can never silently buy wrong verdicts.  A cold-vs-warm
    series against a throwaway :mod:`repro.eval.cache` directory records
    what the persistent cache buys a repeated run (each point carries the
    cache's own hit/miss counters).
    """
    from repro.eval.cache import EvalCache
    from repro.eval.dataset import generated_entries
    from repro.eval.mutate import Mutator
    from repro.eval.score import score_dataset

    backend = "x86" if have_native_toolchain() else "none"
    started = time.perf_counter()
    # Only the grid point the scorer compiles at (its compile gate emits
    # x86-O0 in both modes) — the full grid is the dataset CLI's business.
    entries = generated_entries(
        seed, functions, max_stmts=8, isas=("x86",), opt_levels=("O0",)
    )
    candidate_sets = [
        Mutator(entry.seed).candidates(entry, candidates) for entry in entries
    ]
    build_seconds = time.perf_counter() - started

    started = time.perf_counter()
    report = score_dataset(
        entries, candidate_sets, backend=backend, use_batch=True, fork_server=True
    )
    scoring_seconds = time.perf_counter() - started

    started = time.perf_counter()
    score_dataset(
        entries, candidate_sets, backend=backend, use_batch=True, fork_server=False
    )
    subprocess_seconds = time.perf_counter() - started

    # Cold-vs-warm series: the same scoring run against a fresh cache
    # directory (paying the stores), then again against the populated one
    # (every verdict a memo hit).  A throwaway directory so the numbers
    # never depend on whatever .repro-cache/ the working tree carries.
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cold_cache = EvalCache(tmp)
        started = time.perf_counter()
        score_dataset(
            entries,
            candidate_sets,
            backend=backend,
            use_batch=True,
            fork_server=True,
            cache=cold_cache,
        )
        cold_seconds = time.perf_counter() - started
        warm_cache = EvalCache(tmp)
        started = time.perf_counter()
        score_dataset(
            entries,
            candidate_sets,
            backend=backend,
            use_batch=True,
            fork_server=True,
            cache=warm_cache,
        )
        warm_seconds = time.perf_counter() - started

    total = report["aggregate"]["candidates"]
    out = _stage("candidates", total, scoring_seconds)
    subprocess_rate = _rate(total, subprocess_seconds)
    out.update(
        {
            "functions": functions,
            "candidates_per_function": candidates,
            "backend": backend,
            "build_seconds": round(build_seconds, 3),
            "subprocess_candidates_per_second": subprocess_rate,
            "speedup_forkserver_vs_subprocess": round(
                out["candidates_per_second"] / max(1e-9, subprocess_rate), 2
            ),
            "pre_forkserver_baseline": PRE_FORKSERVER_BASELINE[
                "eval_candidates_per_second"
            ],
            "speedup_vs_pre_forkserver": round(
                out["candidates_per_second"]
                / PRE_FORKSERVER_BASELINE["eval_candidates_per_second"],
                2,
            ),
            "ground_truth_agreement": report["aggregate"]["ground_truth_agreement"],
        }
    )
    cache_cold = _stage("candidates", total, cold_seconds)
    cache_cold["cache"] = cold_cache.stats_summary()
    cache_warm = _stage("candidates", total, warm_seconds)
    cache_warm["cache"] = warm_cache.stats_summary()
    out["cache_cold"] = cache_cold
    out["cache_warm"] = cache_warm
    out["speedup_warm_vs_cold"] = round(
        cache_warm["candidates_per_second"]
        / max(1e-9, cache_cold["candidates_per_second"]),
        2,
    )
    return out


def bench_repair(seed: int, functions: int, candidates: int, budget: int) -> Dict:
    """Repair-campaign throughput (the repro.eval.repair search loop).

    Runs a full campaign over the near-miss candidates of a generated
    dataset and reports attempts/s (how fast neighbors move through the
    scorer) and repaired/s alongside the repair rate itself, so a
    throughput win can never silently buy a worse search.
    """
    from repro.eval.dataset import generated_entries
    from repro.eval.mutate import Mutator
    from repro.eval.repair import RepairConfig, repair_campaign

    backend = "x86" if have_native_toolchain() else "none"
    entries = generated_entries(
        seed, functions, max_stmts=8, isas=("x86",), opt_levels=("O0",)
    )
    candidate_sets = [
        Mutator(entry.seed).candidates(entry, candidates) for entry in entries
    ]
    config = RepairConfig(backend=backend, budget=budget)
    started = time.perf_counter()
    campaign = repair_campaign(entries, candidate_sets, config=config)
    seconds = time.perf_counter() - started

    aggregate = campaign["aggregate"]
    out = _stage("attempts", aggregate["attempts"], seconds)
    out.update(
        {
            "functions": functions,
            "candidates_per_function": candidates,
            "budget": budget,
            "backend": backend,
            "targets": aggregate["targets"],
            "repaired": aggregate["repaired"],
            "repaired_per_second": _rate(aggregate["repaired"], seconds),
            "repair_rate": aggregate["repair_rate"],
            "io_mismatch_repair_rate": aggregate["io_mismatch_repair_rate"],
        }
    )
    return out


def run_benchmarks(
    seed: int, quick: bool, jobs: int, jobs_curve: Optional[List[int]] = None
) -> Dict:
    stage_count = 40 if quick else 100
    sequential_count = 25 if quick else 500
    batched_count = 120 if quick else 500
    cases = _make_cases(seed, stage_count)
    report = {
        "schema": 1,
        "quick": quick,
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
            "usable_cpus": usable_cpus(),
            "native_toolchain": have_native_toolchain(),
        },
        "stages": {
            "generator": bench_generator(seed, stage_count),
            "frontend": bench_frontend(cases),
            "interpreter": bench_interpreter(cases),
            "lint": bench_lint(cases),
            "lowering": bench_lowering(cases),
            "backends": bench_backends(cases),
        },
        "fuzz": bench_fuzz(seed, sequential_count, batched_count, jobs, jobs_curve),
        "eval": bench_eval(seed, 8 if quick else 20, 6 if quick else 8),
        "repair": bench_repair(seed, 3 if quick else 6, 6, 30 if quick else 80),
    }
    return report


def compare_reports(
    current: Dict,
    baseline: Dict,
    tolerance: float,
    min_speedup: float = 2.5,
    min_eval_speedup: float = 2.0,
    require_jobs_scaling: bool = False,
    min_jobs_speedup: float = 2.0,
) -> Optional[str]:
    """None when within tolerance, else a human-readable failure message.

    Gates, in order:

    * the absolute batched fuzz and eval throughputs must stay within
      ``tolerance`` of the committed baseline;
    * because the baseline may have been recorded on different hardware,
      the *host-relative* batched-vs-sequential fuzz speedup measured
      inside the current run must stay above ``min_speedup`` — this
      catches code regressions even when a faster runner masks them in
      absolute cases/s;
    * the eval scorer must stay at least ``min_eval_speedup`` above the
      recorded pre-fork-server baseline (the fork-server acceptance
      floor);
    * with ``require_jobs_scaling`` (the multi-core CI gate), the highest
      point of the recorded ``--jobs`` curve must be at least
      ``min_jobs_speedup`` over its jobs=1 point.
    """
    try:
        baseline_rate = float(baseline["fuzz"]["batched"]["cases_per_second"])
    except (KeyError, TypeError, ValueError):
        return "baseline report has no fuzz.batched.cases_per_second"
    current_rate = float(current["fuzz"]["batched"]["cases_per_second"])
    floor = baseline_rate * (1.0 - tolerance)
    if current_rate < floor:
        return (
            f"end-to-end fuzz throughput regressed: {current_rate:.1f} cases/s "
            f"vs baseline {baseline_rate:.1f} cases/s "
            f"(> {tolerance:.0%} below baseline)"
        )
    try:
        baseline_eval = float(baseline["eval"]["candidates_per_second"])
        current_eval = float(current["eval"]["candidates_per_second"])
    except (KeyError, TypeError, ValueError):
        baseline_eval = current_eval = None
    if baseline_eval is not None:
        if current_eval < baseline_eval * (1.0 - tolerance):
            return (
                f"eval scoring throughput regressed: {current_eval:.1f} "
                f"candidates/s vs baseline {baseline_eval:.1f} candidates/s "
                f"(> {tolerance:.0%} below baseline)"
            )
    # The host-relative gates only mean something when native legs
    # actually ran: batching and the fork server change native execution,
    # so a toolchain-free run measures ~1x regardless of their health.
    legs = current["fuzz"].get("legs")
    if legs is not None and not any(
        leg.startswith(("x86", "arm")) for leg in legs
    ):
        return None
    speedup = float(current["fuzz"].get("speedup_batched_vs_sequential", 0.0))
    if speedup < min_speedup:
        return (
            f"batched path is only {speedup:.1f}x the sequential path on this "
            f"host (expected >= {min_speedup:.1f}x): the batching layer has "
            "regressed even if absolute throughput looks fine"
        )
    eval_section = current.get("eval") or {}
    if eval_section.get("backend") in ("x86", "arm"):
        eval_speedup = float(eval_section.get("speedup_vs_pre_forkserver", 0.0))
        if eval_speedup < min_eval_speedup:
            return (
                f"eval scoring is only {eval_speedup:.1f}x the pre-fork-server "
                f"baseline (expected >= {min_eval_speedup:.1f}x): the "
                "fork-server/grouped execution layer has regressed"
            )
    if require_jobs_scaling:
        curve = current["fuzz"].get("jobs_curve") or []
        if len(curve) < 2:
            return (
                "multi-core gate requested but the report has no --jobs "
                "scaling curve (run with --jobs-curve 1,2,4)"
            )
        top = max(curve, key=lambda point: point["jobs"])
        if float(top.get("speedup_vs_jobs1", 0.0)) < min_jobs_speedup:
            return (
                f"jobs={top['jobs']} end-to-end speedup is only "
                f"{top.get('speedup_vs_jobs1', 0.0):.1f}x over jobs=1 "
                f"(expected >= {min_jobs_speedup:.1f}x): --jobs is not "
                "delivering multi-core scaling"
            )
    return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.bench",
        description="Benchmark the corpus pipeline and record BENCH_pipeline.json.",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced case counts (CI smoke: ~30s instead of minutes)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes for the batched run"
    )
    parser.add_argument(
        "--jobs-curve",
        metavar="N,N,...",
        help="also time the batched fuzz campaign at each of these worker "
        "counts and record the scaling curve (e.g. 1,2,4)",
    )
    parser.add_argument(
        "--require-jobs-scaling",
        action="store_true",
        help="with --compare: fail unless the top of the --jobs curve is at "
        "least 2x its jobs=1 point (the multi-core CI gate)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_pipeline.json",
        help="where to write the report (default ./BENCH_pipeline.json)",
    )
    parser.add_argument(
        "--compare",
        metavar="BASELINE",
        help="baseline BENCH_pipeline.json; exit 1 when batched end-to-end "
        "throughput is more than --tolerance below it",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional regression vs the baseline (default 0.30)",
    )
    args = parser.parse_args(argv)

    jobs_curve: Optional[List[int]] = None
    if args.jobs_curve:
        try:
            jobs_curve = sorted({int(part) for part in args.jobs_curve.split(",")})
        except ValueError:
            parser.error("--jobs-curve takes a comma-separated list of integers")
        if any(jobs < 1 for jobs in jobs_curve):
            parser.error("--jobs-curve worker counts must be >= 1")
    if args.require_jobs_scaling and not args.compare:
        parser.error("--require-jobs-scaling only makes sense with --compare")

    report = run_benchmarks(args.seed, args.quick, args.jobs, jobs_curve)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")

    fuzz = report["fuzz"]
    print(f"wrote {args.output}")
    for stage, numbers in report["stages"].items():
        rate_key = next(k for k in numbers if k.endswith("_per_second"))
        print(f"  {stage:<12} {numbers[rate_key]:>9.1f} {rate_key.replace('_', ' ')}")
    print(
        f"  fuzz e2e     sequential {fuzz['sequential']['cases_per_second']:.1f} cases/s, "
        f"subprocess batches {fuzz['batched_subprocess']['cases_per_second']:.1f} cases/s, "
        f"fork-server {fuzz['batched']['cases_per_second']:.1f} cases/s "
        f"({fuzz['speedup_batched_vs_sequential']:.1f}x vs sequential; "
        f"{fuzz['speedup_forkserver_vs_subprocess']:.1f}x vs subprocess batches; "
        f"{fuzz['speedup_batched_vs_pre_forkserver']:.1f}x vs pre-fork-server baseline)"
    )
    for point in fuzz.get("jobs_curve", []):
        print(
            f"  fuzz jobs={point['jobs']}  {point['cases_per_second']:.1f} cases/s "
            f"({point['speedup_vs_jobs1']:.2f}x vs jobs=1)"
        )
    if not fuzz["all_cases_clean"]:
        print("warning: some benchmark cases reported divergences", file=sys.stderr)
    eval_stage = report["eval"]
    print(
        f"  eval         {eval_stage['candidates_per_second']:.1f} candidates/s "
        f"({eval_stage['functions']}x{eval_stage['candidates_per_function']} on "
        f"{eval_stage['backend']}, agreement "
        f"{eval_stage['ground_truth_agreement']:.0%}; "
        f"{eval_stage['speedup_vs_pre_forkserver']:.1f}x vs pre-fork-server "
        "baseline)"
    )
    print(
        f"  eval cache   cold {eval_stage['cache_cold']['candidates_per_second']:.1f} "
        f"-> warm {eval_stage['cache_warm']['candidates_per_second']:.1f} candidates/s "
        f"({eval_stage['speedup_warm_vs_cold']:.1f}x warm speedup)"
    )
    if eval_stage["ground_truth_agreement"] < 1.0:
        print(
            "warning: eval scoring disagreed with ground-truth labels",
            file=sys.stderr,
        )
    repair_stage = report["repair"]
    print(
        f"  repair       {repair_stage['attempts_per_second']:.1f} attempts/s, "
        f"{repair_stage['repaired_per_second']:.2f} repaired/s "
        f"({repair_stage['repaired']}/{repair_stage['targets']} targets on "
        f"{repair_stage['backend']}, io_mismatch repair rate "
        f"{repair_stage['io_mismatch_repair_rate']:.0%})"
    )

    if args.compare:
        with open(args.compare) as handle:
            baseline = json.load(handle)
        failure = compare_reports(
            report,
            baseline,
            args.tolerance,
            require_jobs_scaling=args.require_jobs_scaling,
        )
        if failure is not None:
            print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(
            f"throughput within {args.tolerance:.0%} of baseline "
            f"({baseline['fuzz']['batched']['cases_per_second']:.1f} cases/s)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
