"""Tests for the persistent eval cache (``repro.eval.cache``).

Pins the ISSUE's acceptance properties: cache-warm runs are byte-identical
to cache-cold and ``--no-cache`` runs at any ``--jobs`` count, corrupted or
schema-mismatched entries read as misses (quarantined, never a crash),
concurrent writers racing one key both succeed and leave one valid entry,
and the LRU sweep evicts deterministically under a size cap.
"""

import json
import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.eval.cache import (
    DEFAULT_CACHE_DIR,
    EvalCache,
    SCHEMA_VERSION,
    describe_stats,
    json_digest,
    merge_stats,
    normalize_source,
    open_cache,
    pipeline_fingerprint,
    source_digest,
)
from repro.eval.dataset import (
    dataset_from_json,
    dataset_to_json,
    entry_from_json,
    generated_entries,
)
from repro.eval.mutate import Mutator
from repro.eval.score import score_dataset
from repro.testing.native import have_native_toolchain

needs_toolchain = pytest.mark.skipif(
    not have_native_toolchain(),
    reason="requires an x86-64 host with GNU as and gcc",
)


# ---------------------------------------------------------------------------
# Keys and normalization
# ---------------------------------------------------------------------------


def test_keys_are_stable_and_distinct(tmp_path):
    cache = EvalCache(tmp_path)
    assert cache.key("a", 1) == cache.key("a", 1)
    assert cache.key("a", 1) != cache.key("a", 2)
    assert cache.key("a", 1) != cache.key("a")
    # Keys are full sha256 digests (the fingerprint itself is one too).
    assert len(cache.key("x")) == 64
    assert len(pipeline_fingerprint()) == 64


def test_normalize_source_is_formatting_insensitive():
    a = "int f(int x) { return x + 1; }"
    b = "int f(int x)\n{\n    return x   + 1;\n}\n"
    assert normalize_source(a) == normalize_source(b)
    assert source_digest(a) == source_digest(b)
    # Different token streams stay distinct.
    assert source_digest(a) != source_digest("int f(int x) { return x + 2; }")


def test_normalize_source_unlexable_never_collides():
    broken = "int f() { return `; }"
    assert normalize_source(broken).startswith("\x00unlexable\x00")
    assert normalize_source(broken) != normalize_source("int f ( ) { return ; }")


def test_json_digest_is_order_canonical():
    assert json_digest({"a": 1, "b": 2}) == json_digest({"b": 2, "a": 1})
    assert json_digest([1, 2]) != json_digest([2, 1])


# ---------------------------------------------------------------------------
# Round-trips, envelopes, stats
# ---------------------------------------------------------------------------


def test_put_get_round_trip_preserves_dict_order(tmp_path):
    cache = EvalCache(tmp_path)
    key = cache.key("order")
    payload = {"zeta": 1, "alpha": {"x86-O0": ".text", "arm-O0": ".arm"}}
    cache.put("entry", key, payload)
    loaded = cache.get("entry", key)
    assert loaded == payload
    # Insertion order is part of the payload: no silent alphabetization.
    assert list(loaded) == ["zeta", "alpha"]
    assert list(loaded["alpha"]) == ["x86-O0", "arm-O0"]


def test_miss_then_hit_counters(tmp_path):
    cache = EvalCache(tmp_path)
    key = cache.key("counts")
    assert cache.get("verdict", key) is None
    cache.put("verdict", key, {"verdict": "io_equivalent"})
    assert cache.get("verdict", key) == {"verdict": "io_equivalent"}
    summary = cache.stats_summary()
    assert summary["hits"] == 1
    assert summary["misses"] == 1
    assert summary["stores"] == 1
    assert summary["layers"]["verdict"]["hits"] == 1
    assert "verdict 1/2" in describe_stats(summary)


def test_binary_round_trip_is_executable(tmp_path):
    cache = EvalCache(tmp_path / "cache")
    source = tmp_path / "tool.sh"
    source.write_text("#!/bin/sh\nexit 0\n")
    key = cache.key("bin")
    assert not cache.get_file("binary", key, tmp_path / "missing")
    cache.put_file("binary", key, source)
    destination = tmp_path / "restored.sh"
    assert cache.get_file("binary", key, destination)
    assert destination.read_text() == source.read_text()
    assert os.access(destination, os.X_OK)


def test_absorb_and_merge_stats(tmp_path):
    cache = EvalCache(tmp_path)
    cache._bump("verdict", "hits")
    cache.absorb(
        {
            "evictions": 2,
            "layers": {
                "verdict": {"hits": 3, "misses": 1, "stores": 1, "corrupt": 0},
                "asm": {"hits": 1, "misses": 0, "stores": 0, "corrupt": 0},
            },
        }
    )
    summary = cache.stats_summary()
    assert summary["layers"]["verdict"]["hits"] == 4
    assert summary["layers"]["asm"]["hits"] == 1
    assert summary["evictions"] == 2
    merged = merge_stats({}, summary)
    merged = merge_stats(merged, summary)
    assert merged["hits"] == 2 * summary["hits"]


def test_open_cache_none_means_disabled(tmp_path):
    assert open_cache(None) is None
    cache = open_cache(tmp_path / "c")
    assert isinstance(cache, EvalCache)
    assert (tmp_path / "c").is_dir()
    assert DEFAULT_CACHE_DIR == ".repro-cache"


# ---------------------------------------------------------------------------
# Corruption and schema mismatch: always a miss, never a crash
# ---------------------------------------------------------------------------


def _stored_paths(cache):
    return [
        path
        for path in cache.root.rglob("*")
        if path.is_file() and not path.name.startswith(".tmp-")
    ]


@pytest.mark.parametrize(
    "damage",
    [
        b"",  # truncated to nothing
        b'{"schema": 1, "payl',  # truncated mid-envelope
        b"\xff\xfenot json at all",  # garbage bytes
        b'["schema", 1]',  # JSON but not an envelope
        json.dumps({"schema": SCHEMA_VERSION + 1, "payload": 1}).encode(),  # future
        json.dumps({"schema": SCHEMA_VERSION}).encode(),  # no payload
    ],
)
def test_corrupt_entry_is_quarantined_miss(tmp_path, damage):
    cache = EvalCache(tmp_path)
    key = cache.key("damage")
    cache.put("entry", key, {"ok": True})
    [path] = _stored_paths(cache)
    path.write_bytes(damage)
    assert cache.get("entry", key) is None  # miss, not an exception
    assert _stored_paths(cache) == []  # quarantined in place
    summary = cache.stats_summary()
    assert summary["corrupt"] == 1
    assert summary["misses"] == 1
    # The slot is usable again immediately.
    cache.put("entry", key, {"ok": True})
    assert cache.get("entry", key) == {"ok": True}


def test_corruption_in_dataset_layer_recomputes(tmp_path):
    """End-to-end: a corrupted entry payload forces a rebuild, same bytes."""
    cache = EvalCache(tmp_path)
    [entry] = generated_entries(3, 1, max_stmts=5, cache=cache)
    for path in _stored_paths(cache):
        path.write_bytes(b"\x00 corrupt \x00")
    cache_after = EvalCache(tmp_path)
    [rebuilt] = generated_entries(3, 1, max_stmts=5, cache=cache_after)
    assert rebuilt.to_json() == entry.to_json()
    assert cache_after.stats_summary()["corrupt"] >= 1


# ---------------------------------------------------------------------------
# Concurrent writers
# ---------------------------------------------------------------------------


def _race_writer(args):
    root, key = args
    cache = EvalCache(Path(root))
    # Both workers write the same bytes a hundred times while the other
    # reads: the reader must only ever observe a complete envelope.
    payload = {"value": "x" * 4096}
    outcomes = []
    for _ in range(100):
        cache.put("entry", key, payload)
        got = cache.get("entry", key)
        outcomes.append(got == payload)
    return all(outcomes), cache.stats_summary()["corrupt"]


def test_concurrent_writers_one_valid_entry(tmp_path):
    cache = EvalCache(tmp_path)
    key = cache.key("race")
    with multiprocessing.Pool(processes=2) as pool:
        results = pool.map(_race_writer, [(str(tmp_path), key)] * 2)
    assert all(ok for ok, _ in results)
    assert all(corrupt == 0 for _, corrupt in results)
    # Exactly one published file, valid, and no leaked temp files.
    assert cache.get("entry", key) == {"value": "x" * 4096}
    assert len(_stored_paths(cache)) == 1
    assert not list(cache.root.glob(".tmp-*"))


# ---------------------------------------------------------------------------
# Eviction
# ---------------------------------------------------------------------------


def test_sweep_evicts_lru_first_deterministically(tmp_path):
    cache = EvalCache(tmp_path, max_bytes=0)
    keys = [cache.key("evict", index) for index in range(4)]
    for index, key in enumerate(keys):
        cache.put("entry", key, {"index": index, "pad": "p" * 512})
        path = cache._path("entry", key, ".json")
        os.utime(path, ns=(1_000_000 + index, 1_000_000 + index))
    # A hit refreshes recency: key 0 becomes the newest entry.
    assert cache.get("entry", keys[0]) is not None
    survivor_budget = cache._path("entry", keys[0], ".json").stat().st_size
    evicted = cache.sweep(max_bytes=survivor_budget)
    assert evicted == 3
    assert cache.get("entry", keys[0]) is not None
    for key in keys[1:]:
        assert cache.get("entry", key) is None
    assert cache.evictions == 3


def test_sweep_tie_break_is_by_path(tmp_path):
    cache = EvalCache(tmp_path)
    keys = [cache.key("tie", index) for index in range(3)]
    for key in keys:
        cache.put("entry", key, {"pad": "p" * 128})
        os.utime(cache._path("entry", key, ".json"), ns=(5, 5))
    keep_two = sum(cache._path("entry", key, ".json").stat().st_size for key in keys) - 1
    assert cache.sweep(max_bytes=keep_two) == 1
    expected_victim = min(str(cache._path("entry", key, ".json")) for key in keys)
    assert not Path(expected_victim).exists()


def test_sweep_under_cap_is_a_no_op(tmp_path):
    cache = EvalCache(tmp_path)
    cache.put("entry", cache.key("keep"), {"ok": True})
    assert cache.sweep() == 0
    assert cache.total_bytes() > 0


# ---------------------------------------------------------------------------
# Dataset JSON round-trip
# ---------------------------------------------------------------------------


def test_dataset_json_round_trip_is_lossless():
    entries = generated_entries(5, 2, max_stmts=5)
    document = dataset_to_json(entries)
    reloaded = dataset_from_json(json.loads(json.dumps(document)))
    assert [e.to_json() for e in reloaded] == [e.to_json() for e in entries]
    # Loaded entries carry no context; consumers rebuild it lazily.
    assert all(e.context is None for e in reloaded)


def test_dataset_schema_mismatch_is_rejected():
    from repro.eval.dataset import DatasetError

    with pytest.raises(DatasetError):
        dataset_from_json({"schema": 99, "entries": []})


def test_entry_cache_hit_round_trips_through_builder(tmp_path):
    cache = EvalCache(tmp_path)
    [cold] = generated_entries(7, 1, max_stmts=5, cache=cache)
    warm_cache = EvalCache(tmp_path)
    [warm] = generated_entries(7, 1, max_stmts=5, cache=warm_cache)
    assert warm.to_json() == cold.to_json()
    assert warm_cache.stats_summary()["layers"]["entry"]["hits"] == 1


def test_loaded_entries_feed_the_mutator():
    [entry] = generated_entries(11, 1, max_stmts=5)
    [reloaded] = dataset_from_json(dataset_to_json([entry]))
    cold = Mutator(entry.seed).candidates(entry, 4)
    warm = Mutator(entry.seed).candidates(reloaded, 4)
    assert [vars(c) for c in cold] == [vars(c) for c in warm]


# ---------------------------------------------------------------------------
# Byte-identity and memo effectiveness (the tentpole acceptance property)
# ---------------------------------------------------------------------------


def _score_report(entries, candidate_sets, cache=None, jobs=1):
    report = score_dataset(
        entries,
        candidate_sets,
        backend="x86" if have_native_toolchain() else "none",
        use_batch=True,
        fork_server=have_native_toolchain(),
        jobs=jobs,
        cache=cache,
    )
    return json.dumps(report, indent=2, sort_keys=True)


def _small_grid(seed=13, functions=3, candidates=4, cache=None):
    entries = generated_entries(
        seed, functions, max_stmts=6, isas=("x86",), opt_levels=("O0",), cache=cache
    )
    sets = [
        Mutator(entry.seed).candidates(entry, candidates, cache=cache)
        for entry in entries
    ]
    return entries, sets


def test_reports_byte_identical_cold_warm_nocache(tmp_path):
    entries, sets = _small_grid()
    nocache = _score_report(entries, sets, cache=None)

    cold_cache = EvalCache(tmp_path)
    cold = _score_report(entries, sets, cache=cold_cache)
    assert cold == nocache
    assert cold_cache.stats_summary()["layers"]["verdict"]["stores"] > 0

    warm_cache = EvalCache(tmp_path)
    warm = _score_report(entries, sets, cache=warm_cache)
    assert warm == nocache
    verdict = warm_cache.stats_summary()["layers"]["verdict"]
    assert verdict["misses"] == 0  # every candidate came from the memo
    assert verdict["hits"] > 0


def test_reports_byte_identical_across_jobs(tmp_path):
    entries, sets = _small_grid()
    cache = EvalCache(tmp_path)
    sequential = _score_report(entries, sets, cache=cache, jobs=1)
    parallel = _score_report(entries, sets, cache=EvalCache(tmp_path), jobs=2)
    assert sequential == parallel


def test_warm_dataset_build_skips_generation(tmp_path):
    cold_cache = EvalCache(tmp_path)
    _small_grid(cache=cold_cache)
    warm_cache = EvalCache(tmp_path)
    _small_grid(cache=warm_cache)
    summary = warm_cache.stats_summary()
    assert summary["layers"]["entry"]["misses"] == 0
    assert summary["layers"]["candidates"]["misses"] == 0
    assert summary["misses"] == 0


# ---------------------------------------------------------------------------
# Temp-file hygiene (the _publish cleanup + stale-reap bugfix)
# ---------------------------------------------------------------------------


def _tmp_files(cache: EvalCache):
    return sorted(cache.root.glob(".tmp-*"))


def test_publish_cleans_tmp_on_writer_exception(tmp_path):
    """A writer failing with anything (not just OSError) must not strand
    its temp file; the exception itself still propagates."""
    cache = EvalCache(tmp_path / "cache")

    def bad_writer(tmp):
        raise ValueError("boom")

    with pytest.raises(ValueError):
        cache._publish(bad_writer, cache.root / "layer" / "ab" / "abcd.json")
    assert _tmp_files(cache) == []


def test_publish_swallows_oserror_but_cleans_tmp(tmp_path):
    """Best-effort semantics for environmental failures: the write is
    dropped silently, and the temp file is dropped with it."""
    cache = EvalCache(tmp_path / "cache")

    def disk_full(tmp):
        raise OSError("no space left on device")

    cache._publish(disk_full, cache.root / "layer" / "ab" / "abcd.json")
    assert _tmp_files(cache) == []


def test_publish_interrupt_cleans_tmp(tmp_path):
    """KeyboardInterrupt mid-write (the report's original repro) cleans up
    and propagates — it is not swallowed like an OSError."""
    cache = EvalCache(tmp_path / "cache")

    def interrupted(tmp):
        raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        cache._publish(interrupted, cache.root / "layer" / "ab" / "abcd.json")
    assert _tmp_files(cache) == []


def test_stale_tmp_reaped_on_init_and_sweep(tmp_path):
    """Temp files stranded by an older code version (or SIGKILL) are
    reaped by cache open and by sweep(); fresh ones — possibly a live
    concurrent writer's — are left alone."""
    root = tmp_path / "cache"
    cache = EvalCache(root)
    stale = root / ".tmp-stale"
    fresh = root / ".tmp-fresh"
    stale.write_bytes(b"dead")
    fresh.write_bytes(b"alive")
    old = time.time() - 2 * EvalCache.STALE_TMP_SECONDS
    os.utime(stale, (old, old))

    reopened = EvalCache(root)
    assert not stale.exists()
    assert fresh.exists()

    os.utime(fresh, (old, old))
    reopened.sweep()
    assert not fresh.exists()
