"""Backend smoke tests: the emitted assembly must be non-empty and
syntactically well-formed for both ISAs at both optimisation levels, and the
tiny golden functions must produce their expected shape exactly."""

import re
from pathlib import Path

import pytest

from repro.compiler import compile_function

from corpus import CORPUS

_GOLDEN_DIR = Path(__file__).parent / "golden"

#: A line of AT&T x86 assembly: label, directive, or tab-indented mnemonic.
_X86_LINE = re.compile(r"^(?:[.\w]+:|\t\.[a-z_]+.*|\t[a-z][a-z0-9]*\t?.*)$")
#: Same for the AArch64 dialect.
_ARM_LINE = re.compile(r"^(?:[.\w]+:|\t\.[a-z_]+.*|\t[a-z][a-z0-9.]*\t?.*|\t//.*)$")

_GRID = [(isa, opt) for isa in ("x86", "arm") for opt in ("O0", "O3")]


def _assert_well_formed(assembly: str, isa: str, name: str) -> None:
    assert assembly.strip(), f"{name}/{isa}: empty assembly"
    pattern = _X86_LINE if isa == "x86" else _ARM_LINE
    for line in assembly.splitlines():
        if not line:
            continue
        assert pattern.match(line), f"{name}/{isa}: malformed line {line!r}"
    # The function label and a return must be present.
    assert f"{name}:" in assembly.splitlines(), f"{name}/{isa}: missing function label"
    assert re.search(r"^\tret$", assembly, re.M), f"{name}/{isa}: missing ret"
    # Every local label that is jumped to must be defined.
    if isa == "x86":
        targets = re.findall(r"^\tj\w+\t(\.L\S+)$", assembly, re.M)
    else:
        targets = re.findall(
            r"^\t(?:b|b\.\w+|cbn?z\t\w+,)\t?\s*(\.L\S+)$", assembly, re.M
        )
    defined = set(re.findall(r"^(\.L\S+):$", assembly, re.M))
    for target in targets:
        assert target in defined, f"{name}/{isa}: jump to undefined label {target}"


@pytest.mark.parametrize("isa,opt", _GRID)
@pytest.mark.parametrize(
    "source,name", [(entry[0], entry[1]) for entry in CORPUS], ids=[
        e[1] for e in CORPUS
    ]
)
def test_corpus_compiles(source, name, isa, opt):
    compiled = compile_function(source, name=name, isa=isa, opt_level=opt)
    assert compiled.isa == isa and compiled.opt_level == opt
    _assert_well_formed(compiled.assembly, isa, name)


@pytest.mark.parametrize("isa,opt", _GRID)
def test_golden_add2(isa, opt):
    """Byte-exact golden files for a tiny function: the compiler is
    deterministic, so any drift in emission shows up here first."""
    source = "int add2(int a, int b) { return a + b + 2; }\n"
    compiled = compile_function(source, isa=isa, opt_level=opt)
    golden = _GOLDEN_DIR / f"add2_{isa}_{opt}.s"
    assert golden.exists(), (
        f"golden file {golden} missing; regenerate with tests/make_golden.py"
    )
    assert compiled.assembly == golden.read_text(), (
        f"assembly for add2/{isa}/{opt} drifted from {golden}; "
        "regenerate with tests/make_golden.py if the change is intentional"
    )


def test_o0_spills_and_o3_allocates():
    """-O0 must keep values in the frame; -O3 must use callee-saved registers."""
    source, name, _ = CORPUS[0]  # sum_to
    o0_x86 = compile_function(source, name=name, isa="x86", opt_level="O0").assembly
    o3_x86 = compile_function(source, name=name, isa="x86", opt_level="O3").assembly
    assert "%rbx" not in o0_x86
    assert any(reg in o3_x86 for reg in ("%rbx", "%r12", "%r13", "%r14", "%r15"))
    o0_arm = compile_function(source, name=name, isa="arm", opt_level="O0").assembly
    o3_arm = compile_function(source, name=name, isa="arm", opt_level="O3").assembly
    assert "x19" not in o0_arm
    assert any(f"x{n}" in o3_arm for n in range(19, 29))


def test_float_and_string_literals_emitted():
    source = """
double scaled(double x) {
    return 2.5 * x + 0.125;
}
"""
    for isa in ("x86", "arm"):
        assembly = compile_function(source, isa=isa, opt_level="O0").assembly
        assert ".LCF" in assembly, f"{isa}: float literal pool missing"
        assert ".rodata" in assembly
