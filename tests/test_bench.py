"""Unit tests for the benchmark harness's regression gates (no timing)."""

from repro.perf.bench import (
    PRE_BATCHING_BASELINE,
    PRE_FORKSERVER_BASELINE,
    compare_reports,
)


def _report(rate: float, speedup: float = 5.0) -> dict:
    return {
        "fuzz": {
            "batched": {"cases_per_second": rate},
            "speedup_batched_vs_sequential": speedup,
        }
    }


def test_compare_within_tolerance_passes():
    assert compare_reports(_report(8.0), _report(10.0), tolerance=0.30) is None
    assert compare_reports(_report(25.0), _report(10.0), tolerance=0.30) is None


def test_compare_absolute_regression_fails():
    failure = compare_reports(_report(6.0), _report(10.0), tolerance=0.30)
    assert failure is not None and "regressed" in failure


def test_compare_host_relative_speedup_gate():
    """A fast host must not mask a broken batching layer: even when the
    absolute rate beats the baseline, a collapsed batched-vs-sequential
    speedup fails the gate."""
    failure = compare_reports(
        _report(50.0, speedup=1.1), _report(10.0), tolerance=0.30
    )
    assert failure is not None and "sequential path" in failure
    assert compare_reports(_report(50.0, speedup=3.0), _report(10.0), 0.30) is None


def test_compare_skips_speedup_gate_without_native_legs():
    """A toolchain-free host cannot exhibit a batching speedup (batching
    only changes native execution), so the relative gate must not fire."""
    current = _report(8.0, speedup=1.0)
    current["fuzz"]["legs"] = ["interp", "ir-O3"]
    assert compare_reports(current, _report(10.0), tolerance=0.30) is None
    # With native legs present the gate still fires.
    current["fuzz"]["legs"] = ["interp", "ir-O3", "x86-O0", "x86-O3"]
    assert compare_reports(current, _report(10.0), tolerance=0.30) is not None


def test_compare_tolerates_malformed_baseline():
    assert compare_reports(_report(6.0), {}, tolerance=0.30) is not None


def test_pre_batching_baseline_is_recorded():
    assert PRE_BATCHING_BASELINE["cases"] == 500
    assert PRE_BATCHING_BASELINE["cases_per_second"] > 0


def test_pre_forkserver_baseline_is_recorded():
    assert PRE_FORKSERVER_BASELINE["fuzz_cases_per_second"] > 0
    assert PRE_FORKSERVER_BASELINE["eval_candidates_per_second"] > 0


def _eval_report(rate: float, speedup: float = 3.0, backend: str = "x86") -> dict:
    report = _report(50.0, speedup=5.0)
    report["eval"] = {
        "candidates_per_second": rate,
        "speedup_vs_pre_forkserver": speedup,
        "backend": backend,
    }
    return report


def test_compare_eval_absolute_regression_fails():
    failure = compare_reports(
        _eval_report(30.0), _eval_report(100.0), tolerance=0.30
    )
    assert failure is not None and "eval scoring throughput regressed" in failure
    assert compare_reports(_eval_report(90.0), _eval_report(100.0), 0.30) is None


def test_compare_eval_forkserver_floor():
    """Even when absolute eval throughput beats the baseline, dropping
    under 2x the pre-fork-server baseline fails the acceptance floor."""
    failure = compare_reports(
        _eval_report(200.0, speedup=1.4), _eval_report(100.0), tolerance=0.30
    )
    assert failure is not None and "pre-fork-server" in failure
    # The floor is native-execution specific: the interpreter substrate
    # cannot exhibit it.
    assert (
        compare_reports(
            _eval_report(200.0, speedup=1.4, backend="none"),
            _eval_report(100.0),
            tolerance=0.30,
        )
        is None
    )


def test_compare_jobs_scaling_gate():
    current = _report(50.0, speedup=5.0)
    baseline = _report(10.0)
    failure = compare_reports(
        current, baseline, tolerance=0.30, require_jobs_scaling=True
    )
    assert failure is not None and "scaling curve" in failure
    current["fuzz"]["jobs_curve"] = [
        {"jobs": 1, "cases_per_second": 50.0, "speedup_vs_jobs1": 1.0},
        {"jobs": 4, "cases_per_second": 80.0, "speedup_vs_jobs1": 1.6},
    ]
    failure = compare_reports(
        current, baseline, tolerance=0.30, require_jobs_scaling=True
    )
    assert failure is not None and "multi-core" in failure
    current["fuzz"]["jobs_curve"][1] = {
        "jobs": 4,
        "cases_per_second": 150.0,
        "speedup_vs_jobs1": 3.0,
    }
    assert (
        compare_reports(current, baseline, tolerance=0.30, require_jobs_scaling=True)
        is None
    )
