"""Tests for the decompilation-hypothesis scoring subsystem (``repro.eval``).

Pins the ISSUE's acceptance properties: every mutation with a certified
ground-truth label must score to exactly its expected verdict (preserving
-> ``io_equivalent``, breaking -> ``io_mismatch``/``trap``, invalid ->
front-end verdicts), batch scoring must be byte-identical to the
per-candidate reference path, and the JSON report must be stable under a
fixed seed.
"""

import json

import pytest

from repro.eval.dataset import (
    Observation,
    build_entry,
    classify_observations,
    generated_entries,
)
from repro.eval.mutate import Mutator
from repro.eval.score import edit_similarity, score_candidates, score_dataset
from repro.testing.native import have_native_toolchain

needs_toolchain = pytest.mark.skipif(
    not have_native_toolchain(),
    reason="requires an x86-64 host with GNU as and gcc",
)


def _small_dataset(seed=9, functions=4, candidates=6):
    entries = generated_entries(seed, functions, max_stmts=8)
    sets = [Mutator(entry.seed).candidates(entry, candidates) for entry in entries]
    return entries, sets


# ---------------------------------------------------------------------------
# Dataset builder
# ---------------------------------------------------------------------------


def test_generated_entries_are_deterministic_and_complete():
    a = generated_entries(3, 3, max_stmts=6)
    b = generated_entries(3, 3, max_stmts=6)
    assert [e.source for e in a] == [e.source for e in b]
    for entry in a:
        assert set(entry.assembly) == {"x86-O0", "x86-O3", "arm-O0", "arm-O3"}
        assert len(entry.reference) == len(entry.inputs)
        # Reference functions are ground truth: they must execute cleanly.
        assert all(obs.status == "ok" for obs in entry.reference)
        assert all(f"{entry.name}:" in asm for asm in entry.assembly.values())


def test_build_entry_records_io_vectors():
    source = """
int scale = 2;

int accum(int a, int *out) {
    *out = a * scale;
    scale = scale + 1;
    return *out + 1;
}
"""
    entry = build_entry(source, "accum", [(3, [0]), (5, [0])], "t-0", "corpus")
    first, second = entry.reference
    assert first.return_value == 7 and first.arg_values[1] == [6]
    assert first.globals["scale"] == 3
    # Every IO vector starts from pristine globals (fresh interpreter), so
    # the second vector sees scale == 2 again.
    assert second.return_value == 11
    assert second.arg_values[1] == [10]
    assert second.globals["scale"] == 3


# ---------------------------------------------------------------------------
# Verdict classification (pure logic, no toolchain)
# ---------------------------------------------------------------------------


def _ok(ret, args=(), globs=None):
    return Observation("ok", ret, list(args), dict(globs or {}))


def test_classify_equivalent_and_mismatch():
    ref = [_ok(1), _ok(2)]
    assert classify_observations(ref, [_ok(1), _ok(2)])[0] == "io_equivalent"
    verdict, detail = classify_observations(ref, [_ok(1), _ok(3)])
    assert verdict == "io_mismatch" and "input #1" in detail


def test_classify_trap_takes_precedence_over_mismatch():
    ref = [_ok(1), _ok(2)]
    cand = [_ok(9), Observation("trap", detail="SIGFPE")]
    assert classify_observations(ref, cand)[0] == "trap"


def test_classify_limit_counts_as_trap():
    ref = [_ok(1)]
    assert classify_observations(ref, [Observation("limit")])[0] == "trap"


def test_classify_shared_trap_is_equivalent():
    ref = [Observation("trap", detail="division by zero")]
    cand = [Observation("trap", detail="exit status -8")]
    assert classify_observations(ref, cand)[0] == "io_equivalent"


def test_classify_globals_compare_common_keys_only():
    # The native harness only observes globals present in the assembly, so
    # a key one side does not report must not count as a divergence.
    ref = [_ok(1, globs={"g": 5, "h": 7})]
    assert classify_observations(ref, [_ok(1, globs={"g": 5})])[0] == "io_equivalent"
    assert classify_observations(ref, [_ok(1, globs={"g": 6})])[0] == "io_mismatch"


def test_classify_mismatched_args():
    ref = [_ok(None, args=[[1, 2]])]
    assert classify_observations(ref, [_ok(None, args=[[1, 3]])])[0] == "io_mismatch"


# ---------------------------------------------------------------------------
# Mutator: certified labels
# ---------------------------------------------------------------------------


def test_candidate_sets_are_deterministic_and_labelled():
    entries, sets = _small_dataset()
    _, sets_again = _small_dataset()
    assert [[c.text for c in s] for s in sets] == [
        [c.text for c in s] for s in sets_again
    ]
    for candidates in sets:
        labels = {c.label for c in candidates}
        assert "preserving" in labels and "breaking" in labels
        for candidate in candidates:
            if candidate.label == "preserving":
                assert candidate.expected == "io_equivalent"
            elif candidate.label == "breaking":
                assert candidate.expected in ("io_mismatch", "trap")
            else:
                assert candidate.expected in (
                    "parse_error",
                    "type_error",
                    "compile_error",
                )
            assert candidate.text != ""


def test_trap_labels_can_be_disabled_for_arm_scoring():
    """AArch64 division by zero returns 0 instead of faulting, so the
    scorer requests trap-free labels when targeting the arm backend."""
    entries = generated_entries(9, 4, max_stmts=8)
    for entry in entries:
        candidates = Mutator(entry.seed, allow_trap_labels=False).candidates(entry, 8)
        assert all(c.expected != "trap" for c in candidates)
        assert any(c.label == "breaking" for c in candidates)


def test_preserving_candidates_differ_textually_from_reference():
    entries, sets = _small_dataset()
    for entry, candidates in zip(entries, sets):
        for candidate in candidates:
            if candidate.label == "preserving":
                assert candidate.text != entry.source


# ---------------------------------------------------------------------------
# Scorer: verdict pins (interpreter substrate — no toolchain required)
# ---------------------------------------------------------------------------


def test_scorer_agrees_with_ground_truth_on_interpreter():
    entries, sets = _small_dataset(seed=5, functions=5, candidates=6)
    for entry, candidates in zip(entries, sets):
        scores = score_candidates(entry, candidates, backend="none")
        for candidate, score in zip(candidates, scores):
            assert score.verdict == candidate.expected, (
                f"{entry.uid} candidate {score.index} ({candidate.kind}): "
                f"expected {candidate.expected}, got {score.verdict} "
                f"({score.detail})\n{candidate.text}"
            )


def test_scores_carry_io_agreement():
    entries, sets = _small_dataset(seed=5, functions=4, candidates=6)
    for entry, candidates in zip(entries, sets):
        scores = score_candidates(entry, candidates, backend="none")
        for score in scores:
            if score.verdict == "io_equivalent":
                assert score.agreement == 1.0
            elif score.verdict in ("io_mismatch", "trap"):
                if score.lint_prefilter:
                    # The UB linter skipped execution entirely.
                    assert score.agreement is None
                else:
                    # Executed but disagreed somewhere: agreement is a
                    # proper fraction of the entry's IO vectors.
                    assert score.agreement is not None
                    assert 0.0 <= score.agreement < 1.0
            elif score.verdict in ("parse_error", "type_error"):
                # Never executed: no agreement signal, and the report
                # omits the key rather than inventing a number.
                assert score.agreement is None
                assert "agreement" not in score.to_json()


def test_jobs_beyond_entry_count_and_empty_dataset():
    """``jobs`` larger than the entry count (including the zero-entry
    degenerate case) must neither crash nor change a single report byte."""
    report = score_dataset([], [], backend="none", jobs=4)
    assert report["aggregate"]["candidates"] == 0
    assert report["aggregate"]["ground_truth_agreement"] == 1.0
    assert report["functions"] == []

    entries, sets = _small_dataset(seed=7, functions=2, candidates=4)
    lone = score_dataset(entries, sets, backend="none", jobs=1)
    flooded = score_dataset(entries, sets, backend="none", jobs=8)
    assert json.dumps(lone, sort_keys=True) == json.dumps(flooded, sort_keys=True)


def test_edit_similarity_metric():
    a = "int f(int a) {\n    return a + 1;\n}\n"
    assert edit_similarity(a, a) == 1.0
    # Whitespace-only changes are invisible to the token-level metric.
    assert edit_similarity("int f(int a){return a+1;}", a) == 1.0
    renamed = a.replace("a", "b")
    assert 0.0 < edit_similarity(renamed, a) < 1.0
    # Unlexable candidates fall back to *whitespace* tokenization, not a
    # character-by-character comparison: shared words still count as
    # matches, so the score stays on the same tokens-edited scale.
    assert edit_similarity("@@@ not C @@@", a) == 0.0
    assert edit_similarity("@@@ return a + 1 ; @@@", a) == 0.2222
    # Empty-input pins: empty-vs-empty is a perfect match by convention,
    # empty-vs-nonempty is maximally distant (all insertions).
    assert edit_similarity("", "") == 1.0
    assert edit_similarity("   ", "") == 1.0
    assert edit_similarity("", a) == 0.0
    assert edit_similarity(a, "") == 0.0


# ---------------------------------------------------------------------------
# Scorer: native path, batch parity, report stability
# ---------------------------------------------------------------------------


@needs_toolchain
def test_scorer_agrees_with_ground_truth_on_native():
    entries, sets = _small_dataset(seed=13, functions=5, candidates=6)
    report = score_dataset(entries, sets, backend="x86", use_batch=True)
    aggregate = report["aggregate"]
    assert aggregate["ground_truth_agreement"] == 1.0, aggregate["mismatches"]
    assert aggregate["candidates"] == 30
    # Every verdict class the mutator can produce must be exercised
    # somewhere in the set for the agreement number to mean anything.
    assert "io_equivalent" in aggregate["verdict_counts"]
    assert set(aggregate["verdict_counts"]) & {"io_mismatch", "trap"}


@needs_toolchain
def test_batch_scoring_is_byte_identical_to_per_candidate():
    entries, sets = _small_dataset(seed=17, functions=4, candidates=6)
    batched = score_dataset(entries, sets, backend="x86", use_batch=True)
    sequential = score_dataset(entries, sets, backend="x86", use_batch=False)
    batched["config"]["batched"] = None
    sequential["config"]["batched"] = None
    assert json.dumps(batched, sort_keys=True) == json.dumps(
        sequential, sort_keys=True
    )


@needs_toolchain
def test_every_execution_path_is_byte_identical():
    """Fork-server groups, subprocess groups, per-candidate binaries and
    sharded workers are interchangeable: same report bytes from all four."""
    entries, sets = _small_dataset(seed=17, functions=4, candidates=6)

    def comparable(report):
        report["config"]["batched"] = None
        report["config"]["fork_server"] = None
        return json.dumps(report, sort_keys=True)

    fork = comparable(score_dataset(entries, sets, backend="x86"))
    sub = comparable(
        score_dataset(entries, sets, backend="x86", fork_server=False)
    )
    single = comparable(
        score_dataset(entries, sets, backend="x86", use_batch=False)
    )
    sharded = comparable(score_dataset(entries, sets, backend="x86", jobs=3))
    assert fork == sub == single == sharded


@needs_toolchain
def test_report_is_stable_under_fixed_seed():
    entries, sets = _small_dataset(seed=21, functions=3, candidates=5)
    first = score_dataset(entries, sets, backend="x86")
    entries, sets = _small_dataset(seed=21, functions=3, candidates=5)
    second = score_dataset(entries, sets, backend="x86")
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
    # Schema pin: downstream consumers (CI artifact, bench) rely on these.
    assert first["schema"] == 1
    assert set(first["config"]) == {
        "backend", "opt_level", "batched", "fork_server", "lint"
    }
    aggregate = first["aggregate"]
    assert set(aggregate) >= {
        "functions",
        "candidates",
        "verdict_counts",
        "ground_truth_agreement",
        "lint",
        "mismatches",
        "top1_by_similarity",
        "topk_any_equivalent",
    }
    for function in first["functions"]:
        assert set(function) == {"uid", "name", "origin", "inputs", "candidates"}
        for candidate in function["candidates"]:
            assert set(candidate) >= {"index", "verdict", "similarity", "detail"}
