"""Build-and-execute harness for compiled x86-64 assembly.

This is the "run the ground truth for real" half of the paper's IO-equivalence
check: a corpus function is compiled to x86-64 assembly, assembled with the
system GNU toolchain, linked against a generated C driver and executed on the
host.  The observable state (return value, pointer-argument contents, global
contents) is then compared against :class:`repro.lang.interpreter.Interpreter`
running the same source on the same inputs.

Argument buffers use the interpreter's packed memory layout (structs have no
padding), so they are encoded/decoded here as raw bytes rather than declared
as C aggregates.  Scalar parameters are passed through ``long long``/``double``
prototypes: the compiled code expects integer arguments sign- or zero-extended
to the full 64-bit register, which is exactly what a ``long long`` prototype
makes the C caller do.
"""

from __future__ import annotations

import platform
import re
import shutil
import struct
import subprocess
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.compiler import compile_function
from repro.lang import ctypes as ct
from repro.lang.interpreter import Interpreter
from repro.lang.parser import parse_program
from repro.testing.oracle import values_equal


def have_native_toolchain() -> bool:
    """True when the host can assemble and run x86-64 code."""
    return (
        platform.machine() in ("x86_64", "AMD64")
        and shutil.which("as") is not None
        and shutil.which("gcc") is not None
    )


def _arm_cross_compiler() -> Optional[str]:
    for cc in ("aarch64-linux-gnu-gcc", "aarch64-unknown-linux-gnu-gcc"):
        if shutil.which(cc):
            return cc
    return None


def _arm_emulator() -> Optional[List[str]]:
    if platform.machine() == "aarch64":
        return []  # run directly on the host
    for emulator in ("qemu-aarch64", "qemu-aarch64-static"):
        if shutil.which(emulator):
            return [emulator]
    return None


def have_arm_toolchain() -> bool:
    """True when AArch64 output can be assembled and executed.

    Either the host itself is aarch64 with a GNU toolchain, or a cross
    compiler plus ``qemu-aarch64`` user-mode emulation is installed.
    """
    if platform.machine() == "aarch64":
        return shutil.which("gcc") is not None
    return _arm_cross_compiler() is not None and _arm_emulator() is not None


# ---------------------------------------------------------------------------
# Packed-byte encoding of Python argument values (mirrors the interpreter's
# marshalling in Interpreter._marshal_argument / read_typed / write_typed).
# ---------------------------------------------------------------------------


def _encode_scalar(value: Any, t: ct.CType) -> bytes:
    if isinstance(t, ct.FloatType):
        return struct.pack("<f" if t.sizeof() == 4 else "<d", float(value))
    size = t.sizeof()
    return (int(value) & ((1 << (8 * size)) - 1)).to_bytes(size, "little")


def _decode_scalar(data: bytes, t: ct.CType) -> Any:
    if isinstance(t, ct.FloatType):
        return struct.unpack("<f" if t.sizeof() == 4 else "<d", data)[0]
    signed = not (isinstance(t, ct.IntType) and t.unsigned)
    if isinstance(t, (ct.PointerType, ct.ArrayType)):
        signed = False
    return int.from_bytes(data, "little", signed=signed)


@dataclass
class _Buffer:
    """A pointer argument's backing bytes and how to read it back."""

    data: bytearray
    elem: Optional[ct.CType] = None  # list arguments
    count: int = 0
    struct_type: Optional[ct.StructType] = None  # dict arguments
    as_string: bool = False


def _encode_argument(value: Any, ptype: ct.CType, resolve) -> Optional[_Buffer]:
    """Encode a Python pointer-argument into packed bytes (None for scalars)."""
    if isinstance(value, str) and isinstance(ptype, ct.PointerType):
        data = bytearray(len(value) + 16)
        raw = value.encode("latin-1", errors="replace")
        data[: len(raw)] = raw
        return _Buffer(data, elem=ct.CHAR, count=len(value) + 1, as_string=True)
    if isinstance(value, (list, tuple)) and isinstance(ptype, ct.PointerType):
        elem = resolve(ptype.pointee)
        if isinstance(elem, ct.VoidType):
            elem = ct.CHAR
        data = bytearray(max(1, len(value)) * elem.sizeof() + 16)
        for index, item in enumerate(value):
            encoded = _encode_scalar(item, elem)
            data[index * elem.sizeof() : index * elem.sizeof() + len(encoded)] = encoded
        return _Buffer(data, elem=elem, count=len(value))
    if isinstance(value, dict) and isinstance(ptype, ct.PointerType):
        struct_type = resolve(ptype.pointee)
        data = bytearray(max(struct_type.sizeof(), 8) + 8)
        for fname, fvalue in value.items():
            if struct_type.has_field(fname):
                ftype = resolve(struct_type.field_type(fname))
                encoded = _encode_scalar(fvalue, ftype)
                offset = struct_type.field_offset(fname)
                data[offset : offset + len(encoded)] = encoded
        return _Buffer(data, struct_type=struct_type)
    return None


def _decode_buffer(data: bytes, buf: _Buffer, resolve) -> Any:
    if buf.struct_type is not None:
        out: Dict[str, Any] = {}
        for fld in buf.struct_type.fields:
            ftype = resolve(fld.type)
            offset = buf.struct_type.field_offset(fld.name)
            out[fld.name] = _decode_scalar(data[offset : offset + ftype.sizeof()], ftype)
        return out
    elem = buf.elem or ct.CHAR
    values = [
        _decode_scalar(data[i * elem.sizeof() : (i + 1) * elem.sizeof()], elem)
        for i in range(buf.count)
    ]
    if buf.as_string:
        chars: List[str] = []
        for v in values:
            if v == 0:
                break
            chars.append(chr(int(v) & 0xFF))
        return "".join(chars)
    return values


# ---------------------------------------------------------------------------
# Harness generation
# ---------------------------------------------------------------------------

_DUMP_HELPER = """
static void dump(const char *tag, const unsigned char *p, long n) {
    printf("%s ", tag);
    if (n == 0) { printf("-\\n"); return; }
    for (long i = 0; i < n; i++) printf("%02x", p[i]);
    printf("\\n");
}
"""


def _scalar_literal(value: Any, t: ct.CType) -> str:
    if isinstance(t, ct.FloatType):
        bits = struct.unpack("<Q", struct.pack("<d", float(value)))[0]
        return f"bits_to_double(0x{bits:016x}ULL)"
    wrapped = t.wrap(int(value)) if isinstance(t, ct.IntType) else int(value)
    return f"(long long)0x{wrapped & 0xFFFFFFFFFFFFFFFF:016x}ULL"


def _assembly_globals(assembly: str) -> List[Tuple[str, int]]:
    """(name, size) for every global data symbol the assembly defines.

    Covers both zero-filled ``.comm`` symbols and initialised ``.data``
    objects (recognised by their ``.size name, N`` directive; function
    symbols use ``.size name, .-name`` and so never match).
    """
    found = [
        (name, int(size))
        for name, size in re.findall(r"^\t\.comm\t([A-Za-z_]\w*),(\d+)", assembly, re.M)
    ]
    found.extend(
        (name, int(size))
        for name, size in re.findall(
            r"^\t\.size\t([A-Za-z_]\w*), (\d+)$", assembly, re.M
        )
    )
    return found


@dataclass
class NativeResult:
    """Observable state of one native execution."""

    return_value: Any
    arg_values: List[Any]
    globals: Dict[str, Any]


class NativeFunction:
    """A corpus function assembled to a host executable.

    ``isa`` selects the backend: ``"x86"`` builds with the host toolchain,
    ``"arm"`` builds a static binary with the AArch64 cross compiler and
    executes it under ``qemu-aarch64`` (or directly on aarch64 hosts).
    ``asm_transform``, when given, rewrites the assembly text before it is
    assembled — the fuzzer uses this to inject deliberate miscompiles.
    """

    def __init__(
        self,
        source: str,
        name: str,
        inputs: Sequence[Tuple[Any, ...]],
        opt_level: str,
        workdir: Path,
        isa: str = "x86",
        asm_transform: Optional[Callable[[str], str]] = None,
        run_timeout: float = 10.0,
    ) -> None:
        self.source = source
        self.name = name
        self.inputs = list(inputs)
        self.opt_level = opt_level
        self.isa = isa
        self.run_timeout = run_timeout
        program = parse_program(source)
        self._interp = Interpreter(program)  # used only for type resolution
        self._resolve = self._interp._resolve_type
        func = program.function(name)
        assert func is not None, f"no function {name!r}"
        self.param_types = [ct.decay(self._resolve(p.type)) for p in func.params]
        self.return_type = self._resolve(func.return_type)
        compiled = compile_function(source, name=name, isa=isa, opt_level=opt_level)
        assembly = compiled.assembly
        if asm_transform is not None:
            assembly = asm_transform(assembly)
        self.globals = _assembly_globals(assembly)
        self._buffers: List[List[Optional[_Buffer]]] = []
        asm_path = workdir / f"{name}_{isa}_{opt_level}.s"
        asm_path.write_text(assembly)
        harness_path = workdir / f"{name}_{isa}_{opt_level}_main.c"
        harness_path.write_text(self._generate_harness())
        self.binary = workdir / f"{name}_{isa}_{opt_level}"
        if isa == "arm" and platform.machine() != "aarch64":
            cc = _arm_cross_compiler()
            assert cc is not None, "no AArch64 cross compiler available"
            build = [cc, "-static", "-o", str(self.binary), str(harness_path), str(asm_path)]
            self._exec_prefix = _arm_emulator() or []
        else:
            build = ["gcc", "-no-pie", "-o", str(self.binary), str(harness_path), str(asm_path)]
            self._exec_prefix = []
        subprocess.run(build, check=True, capture_output=True, timeout=120)

    # -- C generation --------------------------------------------------------

    def _prototype(self) -> str:
        args = ", ".join(
            "double" if isinstance(t, ct.FloatType) else "long long"
            for t in self.param_types
        ) or "void"
        if ct.is_void(self.return_type):
            ret = "void"
        elif isinstance(self.return_type, ct.FloatType):
            ret = "double"
        else:
            ret = "long long"
        return f"extern {ret} {self.name}({args});"

    def _generate_harness(self) -> str:
        lines = [
            "#include <stdio.h>",
            "#include <stdlib.h>",
            "",
            self._prototype(),
        ]
        for gname, _ in self.globals:
            lines.append(f"extern unsigned char {gname}[];")
        lines.append(_DUMP_HELPER)
        lines.append("static double bits_to_double(unsigned long long u) {")
        lines.append("    union { unsigned long long u; double d; } cvt; cvt.u = u; return cvt.d;")
        lines.append("}")
        body: List[str] = []
        for index, args in enumerate(self.inputs):
            buffers: List[Optional[_Buffer]] = []
            call_args: List[str] = []
            decls: List[str] = []
            for j, (value, ptype) in enumerate(zip(args, self.param_types)):
                buf = _encode_argument(value, ptype, self._resolve)
                buffers.append(buf)
                if buf is None:
                    call_args.append(_scalar_literal(value, ptype))
                else:
                    cname = f"in{index}_{j}"
                    data = ", ".join(str(b) for b in buf.data)
                    decls.append(f"static unsigned char {cname}[] = {{ {data} }};")
                    call_args.append(f"(long long){cname}")
            self._buffers.append(buffers)
            body.append(f"    if (idx == {index}) {{")
            for decl in decls:
                body.append(f"        {decl}")
            call = f"{self.name}({', '.join(call_args)})"
            if ct.is_void(self.return_type):
                body.append(f"        {call};")
            elif isinstance(self.return_type, ct.FloatType):
                body.append(f"        printf(\"RETF %.17g\\n\", {call});")
            else:
                body.append(f"        printf(\"RET %lld\\n\", {call});")
            for j, buf in enumerate(buffers):
                if buf is not None:
                    body.append(f"        dump(\"ARG{j}\", in{index}_{j}, {len(buf.data)});")
            for gname, gsize in self.globals:
                body.append(f"        dump(\"GLB:{gname}\", {gname}, {gsize});")
            body.append("    }")
        lines.append("int main(int argc, char **argv) {")
        lines.append("    int idx = argc > 1 ? atoi(argv[1]) : 0;")
        lines.extend(body)
        lines.append("    return 0;")
        lines.append("}")
        return "\n".join(lines) + "\n"

    # -- execution -----------------------------------------------------------

    def run(self, index: int) -> NativeResult:
        """Execute input set ``index`` natively and decode the output."""
        # The timeout guards the differential oracle/reducer against
        # candidate programs that loop forever (the interpreter leg traps on
        # its step budget; the native binary has no such budget).
        proc = subprocess.run(
            self._exec_prefix + [str(self.binary), str(index)],
            check=True,
            capture_output=True,
            text=True,
            timeout=self.run_timeout,
        )
        return_value: Any = None
        arg_values: List[Any] = list(self.inputs[index])
        global_values: Dict[str, Any] = {}
        global_types = {
            gname: self._interp.global_addrs[gname].type for gname, _ in self.globals
        }
        for line in proc.stdout.splitlines():
            tag, _, payload = line.partition(" ")
            if tag == "RET":
                raw = int(payload)
                if isinstance(self.return_type, ct.IntType):
                    raw = self.return_type.wrap(raw)
                return_value = raw
            elif tag == "RETF":
                return_value = float(payload)
            elif tag.startswith("ARG"):
                j = int(tag[3:])
                buf = self._buffers[index][j]
                data = b"" if payload == "-" else bytes.fromhex(payload)
                if buf is not None:
                    arg_values[j] = _decode_buffer(data, buf, self._resolve)
            elif tag.startswith("GLB:"):
                gname = tag[4:]
                data = b"" if payload == "-" else bytes.fromhex(payload)
                gtype = self._resolve(global_types[gname])
                if isinstance(gtype, ct.ArrayType):
                    elem = gtype.element
                    global_values[gname] = [
                        _decode_scalar(data[i * elem.sizeof() : (i + 1) * elem.sizeof()], elem)
                        for i in range(gtype.length or 0)
                    ]
                else:
                    global_values[gname] = _decode_scalar(data, gtype)
        return NativeResult(return_value, arg_values, global_values)

    def expected(self, index: int):
        """The interpreter's observable state on the same input."""
        return Interpreter(parse_program(self.source)).run_function(
            self.name, self.inputs[index]
        )


# Single implementation shared with the differential oracle (re-exported
# here for the native test modules).
__all__ = [
    "NativeFunction",
    "NativeResult",
    "have_arm_toolchain",
    "have_native_toolchain",
    "values_equal",
]
