"""Thin re-export shim.

The native build-and-execute harness now lives in
:mod:`repro.testing.native` (so the package no longer imports from the
test tree); this module keeps the historical ``tests/native_runner.py``
import path working for the test suite and any external scripts.
"""

from repro.testing.native import (  # noqa: F401
    BatchCase,
    BatchExecutionError,
    NativeBatch,
    NativeFunction,
    NativeResult,
    have_arm_toolchain,
    have_native_toolchain,
    values_equal,
)

__all__ = [
    "BatchCase",
    "BatchExecutionError",
    "NativeBatch",
    "NativeFunction",
    "NativeResult",
    "have_arm_toolchain",
    "have_native_toolchain",
    "values_equal",
]
