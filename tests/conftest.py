"""Make ``src/`` importable so plain ``python -m pytest`` works without the
``PYTHONPATH=src`` incantation."""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
