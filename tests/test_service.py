"""Tests for the scoring service (``repro.eval.service``).

Pins the ISSUE's acceptance properties: the HTTP wire format is stable
(schema pin), service verdicts are byte-identical to the ``score``
CLI's for the same fixed-seed grid, journaled jobs survive a daemon
restart and replay deterministically, and shutting the daemon down
leaves no orphaned fork-server/qemu children behind.

Everything except the explicitly toolchain-gated tests runs on the
interpreter backend (``"none"``), so this module needs no compiler.
"""

import contextlib
import json
import os
import time
from pathlib import Path

import pytest

from repro.eval.cache import EvalCache
from repro.eval.dataset import generated_entries
from repro.eval.mutate import Mutator
from repro.eval.score import score_dataset
from repro.eval.service import (
    JobJournal,
    ScoringService,
    ServiceClient,
    ServiceError,
    build_grid_requests,
    job_id_for,
    score_grid_via_service,
)
from repro.testing.native import have_native_toolchain

needs_toolchain = pytest.mark.skipif(
    not have_native_toolchain(),
    reason="requires an x86-64 host with GNU as and gcc",
)

REFERENCE = "int f(int a, int b) { return a + b; }"
INPUTS = [[1, 2], [3, 4], [-5, 9]]


def _request(**overrides):
    request = {
        "name": "f",
        "reference": REFERENCE,
        "inputs": INPUTS,
        "backend": "none",
        "candidates": [
            REFERENCE,  # identical: io_equivalent
            "int f(int a, int b) { return a - b; }",  # io_mismatch
            "int f(int a, int b { return a; }",  # parse_error
        ],
    }
    request.update(overrides)
    return request


@contextlib.contextmanager
def _service(**kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("backend", "none")
    service = ScoringService(**kwargs)
    port = service.start_in_thread()
    try:
        yield service, ServiceClient(f"http://127.0.0.1:{port}")
    finally:
        service.stop()


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------


def test_score_endpoint_schema_pin():
    """The response shape is API: exactly these keys, these verdicts."""
    with _service() as (_, client):
        response = client.score(_request())
    assert set(response) == {
        "schema",
        "uid",
        "name",
        "backend",
        "opt_level",
        "candidates",
    }
    assert response["schema"] == 1
    assert response["name"] == "f"
    assert response["backend"] == "none"
    verdicts = [c["verdict"] for c in response["candidates"]]
    assert verdicts == ["io_equivalent", "io_mismatch", "parse_error"]
    for payload in response["candidates"]:
        assert set(payload) == {
            "index",
            "verdict",
            "similarity",
            "detail",
            "agreement",
            "lint_flagged",
            "lint_prefilter",
        }
    assert [c["index"] for c in response["candidates"]] == [0, 1, 2]


def test_batched_requests_and_candidate_objects():
    """``{"requests": [...]}`` scores several units in one round trip, and
    candidates may carry metadata objects instead of bare strings."""
    unit = _request(
        candidates=[{"text": REFERENCE, "kind": "identity", "label": "equivalent"}]
    )
    with _service() as (_, client):
        response = client.score({"requests": [unit, _request()]})
    assert response["schema"] == 1
    assert len(response["results"]) == 2
    assert response["results"][0]["candidates"][0]["verdict"] == "io_equivalent"
    assert len(response["results"][1]["candidates"]) == 3


def test_malformed_requests_rejected():
    with _service() as (_, client):
        for bad in [
            [],  # not an object
            {},  # no candidates
            {"candidates": []},  # empty candidates
            {"candidates": ["int f() { return 0; }"]},  # no entry/reference
            _request(backend="sparc"),  # unknown backend
            _request(opt_level="O7"),  # unknown opt level
            {"requests": []},  # empty batch
            {"candidates": [{"kind": "oops"}], "name": "f",
             "reference": REFERENCE, "inputs": INPUTS},  # candidate without text
        ]:
            with pytest.raises(ServiceError) as excinfo:
                client.score(bad)
            assert "HTTP 400" in str(excinfo.value)


def test_unknown_routes_and_jobs():
    with _service() as (_, client):
        with pytest.raises(ServiceError) as excinfo:
            client.job("job-999-nope")
        assert "HTTP 404" in str(excinfo.value)
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/frobnicate")
        assert "HTTP 404" in str(excinfo.value)


def test_unbuildable_reference_is_a_scoring_error_not_a_crash():
    """A reference that fails to build surfaces as HTTP 500 with the
    dataset error, and the daemon keeps serving afterwards."""
    with _service() as (_, client):
        with pytest.raises(ServiceError) as excinfo:
            client.score(_request(reference="int f(int a, int b) { return }"))
        assert "HTTP 500" in str(excinfo.value)
        assert client.score(_request())["candidates"][0]["verdict"] == "io_equivalent"


def test_stats_schema_pin():
    with _service() as (_, client):
        client.score(_request())
        stats = client.stats()
    assert set(stats) == {
        "schema",
        "backend",
        "queue_depth",
        "jobs",
        "workers",
        "requests",
        "cache",
        "journal",
    }
    assert stats["jobs"]["done"] == 1
    assert stats["workers"] == {"configured": 1, "busy": 0}
    assert stats["requests"]["POST /score"] == 1
    assert stats["cache"] is None  # no cache mounted in this service


def test_stats_reports_cache_counters(tmp_path):
    """With a cache mounted, a repeated request is answered from the
    verdict memo — visible in /stats as hits."""
    cache = EvalCache(tmp_path / "cache")
    with _service(cache=cache) as (_, client):
        first = client.score(_request())
        second = client.score(_request())
        stats = client.stats()
    assert first == second
    counters = stats["cache"]["layers"]["verdict"]
    assert counters["stores"] == 3  # one memo entry per candidate
    assert counters["hits"] >= 3  # the whole second request memo-hits


# ---------------------------------------------------------------------------
# Determinism: the service is the CLI, over a socket
# ---------------------------------------------------------------------------


def test_grid_report_byte_identical_to_cli_path(tmp_path):
    """The acceptance criterion: scoring the fixed-seed grid through the
    daemon produces a report byte-identical to ``score_dataset``'s (the
    CLI writes exactly ``json.dumps(report, indent=2)``)."""
    entries = generated_entries(
        0, 4, max_stmts=8, isas=("x86",), opt_levels=("O0",), cache=None
    )
    candidate_sets = [
        Mutator(entry.seed, allow_trap_labels=True).candidates(entry, 4, cache=None)
        for entry in entries
    ]
    baseline = score_dataset(entries, candidate_sets, backend="none", opt_level="O0")
    with _service(workers=2, cache=EvalCache(tmp_path / "cache")) as (service, client):
        report = score_grid_via_service(
            client, 0, 4, 4, max_stmts=8, backend="none", cache=service.cache
        )
    assert json.dumps(report, indent=2) == json.dumps(baseline, indent=2)


def test_build_grid_requests_matches_cli_dataset():
    """The grid client feeds the server *prebuilt* triples — the exact
    entries and candidate texts the score CLI would build locally."""
    entries, candidate_sets, requests = build_grid_requests(
        0, 3, 4, max_stmts=8, backend="none"
    )
    assert len(entries) == len(candidate_sets) == len(requests) == 3
    for entry, candidate_set, request in zip(entries, candidate_sets, requests):
        assert request["entry"] == entry.to_json()
        assert [c["text"] for c in request["candidates"]] == [
            c.text for c in candidate_set
        ]
        assert request["backend"] == "none"


# ---------------------------------------------------------------------------
# Jobs and the journal
# ---------------------------------------------------------------------------


def test_job_ids_are_deterministic():
    request = _request()
    assert job_id_for(7, request) == job_id_for(7, dict(request))
    assert job_id_for(7, request) != job_id_for(8, request)
    assert job_id_for(0, request).startswith("job-0-")


def test_jobs_survive_restart(tmp_path):
    """The restart discipline: a job frozen in flight (workerless daemon)
    replays from the journal and completes after a restart; a third
    restart serves the finished result straight from the journal with no
    recompute (again workerless: nothing *could* recompute it)."""
    journal = tmp_path / "journal.jsonl"
    request = _request()

    with _service(workers=0, journal=journal) as (_, client):
        submitted = client.submit_job(request)
        assert client.job(submitted["id"])["status"] == "pending"
        # Synchronous scoring is refused rather than hanging forever.
        with pytest.raises(ServiceError) as excinfo:
            client.score(request)
        assert "HTTP 503" in str(excinfo.value)

    with _service(workers=1, journal=journal) as (_, client):
        finished = client.wait_job(submitted["id"], deadline=60)
    assert finished["status"] == "done"
    verdicts = [c["verdict"] for c in finished["result"]["candidates"]]
    assert verdicts == ["io_equivalent", "io_mismatch", "parse_error"]

    with _service(workers=0, journal=journal) as (_, client):
        replayed = client.job(submitted["id"])
    assert replayed["status"] == "done"
    assert replayed["result"] == finished["result"]


def test_journal_replay_tolerates_garbage_tail(tmp_path):
    """A crash mid-append leaves a truncated last line; replay skips it
    instead of refusing the whole journal."""
    journal = JobJournal(tmp_path / "journal.jsonl")
    journal.append({"type": "job", "seq": 0, "id": "job-0-abc", "request": {}})
    with open(journal.path, "a", encoding="utf-8") as handle:
        handle.write('{"type": "job", "seq": 1, "id": "job-1-trunc')
    records = journal.replay()
    assert len(records) == 1
    assert records[0]["id"] == "job-0-abc"


def test_async_jobs_complete_without_polling_race(tmp_path):
    """POST /jobs + wait_job on a live worker pool: the common async path."""
    with _service(workers=2, journal=tmp_path / "j.jsonl") as (_, client):
        ids = [client.submit_job(_request())["id"] for _ in range(3)]
        assert len(set(ids)) == 3  # distinct seq -> distinct ids
        for job_id in ids:
            assert client.wait_job(job_id, deadline=60)["status"] == "done"


# ---------------------------------------------------------------------------
# Process hygiene
# ---------------------------------------------------------------------------


def _pids_mentioning(needle: str):
    """PIDs whose command line mentions ``needle`` (psutil-free)."""
    found = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            cmdline = (Path("/proc") / entry / "cmdline").read_bytes()
        except OSError:
            continue
        if needle.encode() in cmdline:
            found.append(int(entry))
    return found


@needs_toolchain
def test_native_service_verdicts_match_direct_scoring(tmp_path):
    """On the real toolchain the daemon's verdicts equal score_dataset's
    (fork-server groups and all), and shutting it down leaves no process
    whose command line points into the service workdir."""
    workdir = tmp_path / "service-work"
    entries = generated_entries(
        1, 2, max_stmts=6, isas=("x86",), opt_levels=("O0",), cache=None
    )
    candidate_sets = [
        Mutator(entry.seed, allow_trap_labels=True).candidates(entry, 3, cache=None)
        for entry in entries
    ]
    baseline = score_dataset(entries, candidate_sets, backend="x86", opt_level="O0")
    with _service(backend="x86", workdir=workdir) as (service, client):
        report = score_grid_via_service(client, 1, 2, 3, max_stmts=6, backend="x86")
    assert json.dumps(report, indent=2) == json.dumps(baseline, indent=2)
    deadline = time.monotonic() + 10.0
    while _pids_mentioning(str(workdir)) and time.monotonic() < deadline:
        time.sleep(0.1)
    assert _pids_mentioning(str(workdir)) == []
