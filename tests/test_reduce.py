"""Direct unit coverage for the delta-debugging reducer.

Until now the reducer was only exercised indirectly through the fuzzer's
injected-miscompile acceptance test; these tests pin its contract on its
own: a fixed point is idempotent, the failure predicate holds at every
accepted step (and every candidate the predicate ever sees is a valid
program), unused parameters and globals are removed, literals shrink, and
the diverging input vector is isolated.
"""

from repro.lang.parser import parse_program
from repro.lang.printer import print_program
from repro.lang.typecheck import check_program
from repro.testing.reduce import reduce_case

BLOATED = """
int unused_global = 99;

int target(int a, int b) {
    int x = 1;
    int y = 2;
    for (int i = 0; i < 5; i++) {
        x = x + i;
    }
    if (a > b) {
        y = y * 3;
    }
    int z = a / ((b & 7) + 1);
    return z + x + y;
}
"""


def _is_valid(source: str) -> bool:
    result = check_program(parse_program(source))
    return not result.errors and result.missing.is_empty()


def test_fixed_point_is_idempotent():
    """A program the reducer cannot shrink further must come back unchanged,
    with zero accepted edits — on the second run as well as the first."""

    def still_divides(source: str, inputs) -> bool:
        return "/" in source

    # No parameter to drop, no statement to remove, no literal to shrink
    # (0 and 1 are terminal), no sub-expression that keeps the division.
    minimal = print_program(parse_program("int f(void) { return 0 / 0; }"))
    first = reduce_case(minimal, "f", [()], still_divides)
    assert first.source == minimal
    assert first.accepted == 0
    second = reduce_case(first.source, "f", first.inputs, still_divides)
    assert second.source == first.source
    assert second.accepted == 0


def test_reduction_result_is_a_fixed_point():
    """Whatever the reducer produces, running it again must change nothing:
    greedy reduction terminates at a genuine local minimum."""

    def still_divides(source: str, inputs) -> bool:
        return "/" in source

    first = reduce_case(BLOATED, "target", [(1, 2)], still_divides)
    second = reduce_case(first.source, "target", first.inputs, still_divides)
    assert second.source == first.source
    assert second.inputs == first.inputs
    assert second.accepted == 0


def test_predicate_holds_at_every_step_and_candidates_are_valid():
    """The reducer must only ever consult the predicate on programs that
    survive the real front end, and the final result must be a program the
    predicate accepted (the divergence is preserved at every kept edit)."""
    seen_true = []

    def predicate(source: str, inputs) -> bool:
        # Contract: every candidate handed to the predicate re-parses and
        # re-typechecks — the reducer filters invalid candidates itself.
        assert _is_valid(source), f"reducer leaked an invalid candidate:\n{source}"
        interesting = "/" in source
        if interesting:
            seen_true.append(source)
        return interesting

    result = reduce_case(BLOATED, "target", [(1, 2)], predicate)
    assert "/" in result.source
    assert result.source in seen_true
    assert result.accepted > 0
    assert len(result.source.splitlines()) < len(BLOATED.strip().splitlines())


def test_unused_parameters_and_globals_are_removed():
    source = """
int unused_global = 99;
int used_global = 5;

int target(int a, int b, int c) {
    used_global += 1;
    return a + 1;
}
"""

    def marker(candidate: str, inputs) -> bool:
        return "a + 1" in candidate and "used_global" in candidate

    result = reduce_case(source, "target", [(1, 2, 3)], marker)
    assert "unused_global" not in result.source
    assert "used_global" in result.source
    # b and c never feed the marker expression: both parameters are dropped
    # and their argument columns go with them.
    assert result.inputs == [(1,)]


def test_literal_shrinking_reaches_zero():
    source = """
int f(int a)
{
    return a + 123456;
}
"""

    def still_adds(candidate: str, inputs) -> bool:
        return "a + " in candidate

    result = reduce_case(source, "f", [(7,)], still_adds)
    assert "123456" not in result.source
    assert "a + 0" in result.source


def test_diverging_input_vector_is_isolated_first():
    """With several input vectors, the reducer keeps only one that still
    triggers the predicate before shrinking the program."""
    calls = []

    def predicate(source: str, inputs) -> bool:
        calls.append(list(inputs))
        return "/" in source

    result = reduce_case(BLOATED, "target", [(1, 2), (3, 4), (5, 6)], predicate)
    assert len(result.inputs) == 1
    # The very first probe tries the first vector alone.
    assert calls[0] == [(1, 2)]


def test_attempt_budget_is_respected():
    def never_satisfied_after_start(source: str, inputs) -> bool:
        return "/" in source

    result = reduce_case(
        BLOATED, "target", [(1, 2)], never_satisfied_after_start, max_attempts=10
    )
    assert result.attempts <= 10
