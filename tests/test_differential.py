"""O0 vs O3 differential tests.

The -O3 pipeline's AST transformations (constant folding, loop unrolling)
must be behaviour-preserving: running the original and the optimised
function through the interpreter on the same inputs has to produce the same
observable state (return value, out-parameter contents, globals).
"""

import pytest

from repro.compiler.opt import optimize_function_ast
from repro.lang import ast_nodes as ast
from repro.lang.interpreter import Interpreter
from repro.lang.parser import parse_program
from repro.testing.oracle import values_equal as _values_equal

from corpus import CORPUS


def _optimized_program(program: ast.Program, name: str) -> ast.Program:
    decls = []
    for decl in program.decls:
        if (
            isinstance(decl, ast.FunctionDef)
            and decl.name == name
            and decl.body is not None
        ):
            decls.append(optimize_function_ast(decl))
        else:
            decls.append(decl)
    return ast.Program(decls)


@pytest.mark.parametrize(
    "source,name,inputs", CORPUS, ids=[entry[1] for entry in CORPUS]
)
def test_o0_and_o3_agree(source, name, inputs):
    base = parse_program(source)
    optimized = _optimized_program(parse_program(source), name)
    for args in inputs:
        ref = Interpreter(base).run_function(name, args)
        opt = Interpreter(optimized).run_function(name, args)
        assert _values_equal(ref.return_value, opt.return_value), (
            f"{name}{args}: return {ref.return_value!r} (O0) != {opt.return_value!r} (O3)"
        )
        assert _values_equal(ref.arg_values, opt.arg_values), (
            f"{name}{args}: out-params {ref.arg_values!r} != {opt.arg_values!r}"
        )
        assert _values_equal(ref.globals, opt.globals), (
            f"{name}{args}: globals {ref.globals!r} != {opt.globals!r}"
        )


def test_optimizer_actually_transforms():
    """Sanity check: at least one corpus function is really rewritten by -O3
    (otherwise the differential test proves nothing)."""
    from repro.lang.printer import print_function

    source, name, _ = CORPUS[0]  # sum_to: unrollable counted loop
    func = parse_program(source).function(name)
    assert print_function(optimize_function_ast(func)) != print_function(func)
