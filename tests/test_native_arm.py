"""Native AArch64 IO-equivalence tests.

The mirror image of ``test_native_x86.py`` for the ARM backend: every
corpus function is compiled to AArch64 assembly at -O0 and -O3, built as a
static binary with the cross toolchain, executed under ``qemu-aarch64``
user-mode emulation (or directly on aarch64 hosts) and compared against the
interpreter's observable state.

Skipped cleanly when no AArch64 toolchain/emulator is available.
"""

import pytest

from corpus import CORPUS
from repro.testing.native import NativeFunction, have_arm_toolchain, values_equal

pytestmark = pytest.mark.skipif(
    not have_arm_toolchain(),
    reason="requires an AArch64 toolchain (aarch64 host, or cross gcc + qemu-aarch64)",
)


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("native_arm")


def _check_entry(source, name, inputs, opt, workdir):
    native = NativeFunction(source, name, inputs, opt, workdir, isa="arm")
    for index in range(len(inputs)):
        expected = native.expected(index)
        actual = native.run(index)
        if expected.return_value is not None:
            assert values_equal(actual.return_value, expected.return_value), (
                f"{name}{inputs[index]} @ arm/{opt}: native returned "
                f"{actual.return_value!r}, interpreter {expected.return_value!r}"
            )
        for j, value in enumerate(actual.arg_values):
            assert values_equal(value, expected.arg_values[j]), (
                f"{name}{inputs[index]} @ arm/{opt}: arg {j} native {value!r} "
                f"!= interpreter {expected.arg_values[j]!r}"
            )
        for gname, gvalue in actual.globals.items():
            assert values_equal(gvalue, expected.globals[gname]), (
                f"{name}{inputs[index]} @ arm/{opt}: global {gname} native "
                f"{gvalue!r} != interpreter {expected.globals[gname]!r}"
            )


@pytest.mark.parametrize("opt", ["O0", "O3"])
@pytest.mark.parametrize(
    "source,name,inputs", CORPUS, ids=[entry[1] for entry in CORPUS]
)
def test_arm_native_matches_interpreter(source, name, inputs, opt, workdir):
    _check_entry(source, name, inputs, opt, workdir)
