"""Batch/parallel parity: the throughput machinery must not change verdicts.

The batched native path (``Oracle.check_batch`` / ``NativeBatch``) and the
``--jobs N`` worker pool exist purely for speed; this module pins the
acceptance property that a fixed-seed run through them produces verdicts
identical to the sequential per-case path — including trap observations,
and including the exact ``Divergence.describe()`` text when a (deterministic)
miscompile is injected.
"""

from dataclasses import dataclass
from typing import List, Tuple

import pytest

from repro.testing.fuzz import FuzzConfig, case_seed, run_campaign
from repro.testing.generator import generate_case
from repro.testing.oracle import Oracle

from repro.testing.native import NativeBatch, BatchCase, have_native_toolchain

needs_toolchain = pytest.mark.skipif(
    not have_native_toolchain(),
    reason="requires an x86-64 host with GNU as and gcc",
)


@dataclass
class _Case:
    source: str
    name: str
    inputs: List[Tuple]


def _swap_first_addl(assembly: str) -> str:
    """A *deterministic* injected miscompile (first ``addl`` -> ``subl``).

    Unlike ``strip_cltd`` — whose misbehaviour reads whatever garbage %edx
    happens to hold, and therefore legitimately differs between a fresh
    process and a shared batch process — this transform corrupts results
    deterministically, so even the post-divergence outcome lines must match
    byte for byte between the batched and sequential paths.
    """
    lines = assembly.splitlines()
    for index, line in enumerate(lines):
        if line.strip().startswith("addl"):
            lines[index] = line.replace("addl", "subl", 1)
            break
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Oracle-level parity (toolchain-free)
# ---------------------------------------------------------------------------


def test_check_batch_matches_check_case_without_native_legs():
    oracle = Oracle(backends=())
    cases = [generate_case(case_seed(3, index), max_stmts=8) for index in range(12)]
    batch_verdicts = oracle.check_batch(cases)
    for case, batched in zip(cases, batch_verdicts):
        sequential = oracle.check_case(case.source, case.name, case.inputs)
        assert (sequential is None) == (
            batched is None or isinstance(batched, Exception)
        )
        assert not isinstance(batched, Exception)
        assert sequential is None and batched is None


def test_check_batch_reports_parse_errors_per_case():
    oracle = Oracle(backends=())
    good = generate_case(case_seed(3, 0), max_stmts=6)
    bad = _Case("int f( {", "f", [(1,)])
    verdicts = oracle.check_batch([good, bad, good])
    assert verdicts[0] is None and verdicts[2] is None
    assert isinstance(verdicts[1], Exception)


# ---------------------------------------------------------------------------
# Native batch parity
# ---------------------------------------------------------------------------


@needs_toolchain
def test_batched_verdicts_identical_to_sequential_fixed_seed():
    """Clean fixed-seed cases: batch and per-case paths both report None,
    and a case where every leg traps is equally clean on both."""
    oracle = Oracle(backends=("x86",))
    cases = [generate_case(case_seed(5, index), max_stmts=8) for index in range(20)]
    cases.append(
        _Case("int f(int a) {\n    return a / (a - a);\n}\n", "f", [(3,), (7,)])
    )
    batch_verdicts = oracle.check_batch(cases)
    for case, batched in zip(cases, batch_verdicts):
        sequential = oracle.check_case(case.source, case.name, list(case.inputs))
        assert not isinstance(batched, Exception), batched
        assert (sequential is None) and (batched is None), (
            sequential and sequential.describe(),
            batched and batched.describe(),
        )


@needs_toolchain
def test_batched_divergences_byte_identical_under_deterministic_miscompile():
    oracle = Oracle(backends=("x86",), asm_transform=_swap_first_addl)
    cases = [generate_case(case_seed(0, index), max_stmts=8) for index in range(12)]
    batch_verdicts = oracle.check_batch(cases)
    divergences = 0
    for case, batched in zip(cases, batch_verdicts):
        sequential = oracle.check_case(case.source, case.name, case.inputs)
        assert not isinstance(batched, Exception), batched
        assert (sequential is None) == (batched is None)
        if sequential is not None:
            divergences += 1
            assert sequential.describe() == batched.describe()
    assert divergences >= 1, "deterministic miscompile produced no divergence"


@needs_toolchain
def test_batch_trap_resume_recovers_following_cases():
    """A trapping pair must not eat the results of later pairs in the batch."""
    trap = _Case("int f(int a) {\n    return a / (a - a);\n}\n", "f", [(1,)])
    clean = _Case("int g(int a) {\n    return a + 1;\n}\n", "g", [(1,), (41,)])
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        batch = NativeBatch(
            [
                BatchCase(trap.source, trap.name, list(trap.inputs)),
                BatchCase(clean.source, clean.name, list(clean.inputs)),
            ],
            "O0",
            Path(tmp),
        )
        status, detail = batch.outcome(0, 0)
        assert status == "trap" and "exit status" in detail
        status, result = batch.outcome(1, 0)
        assert status == "ok" and result.return_value == 2
        status, result = batch.outcome(1, 1)
        assert status == "ok" and result.return_value == 42


@needs_toolchain
def test_batch_globals_reset_between_input_vectors():
    """Vectors share one process in a batch; globals must still start
    pristine for every call, like the per-process sequential path."""
    source = """
int acc = 5;

int bump(int k) {
    acc += k;
    return acc;
}
"""
    case = _Case(source, "bump", [(1,), (1,), (10,)])
    oracle = Oracle(backends=("x86",))
    assert oracle.check_batch([case])[0] is None
    sequential = oracle.check_case(case.source, case.name, case.inputs)
    assert sequential is None


# ---------------------------------------------------------------------------
# Fork-server parity (the subprocess harness is the reference)
# ---------------------------------------------------------------------------


@needs_toolchain
def test_forkserver_campaign_records_identical_to_subprocess():
    """Fixed-seed campaign verdicts must not depend on the execution mode."""
    fork = run_campaign(FuzzConfig(backends=("x86",), batch_size=8), 7, 16)
    sub = run_campaign(
        FuzzConfig(backends=("x86",), batch_size=8, fork_server=False), 7, 16
    )
    assert _records(fork) == _records(sub)
    assert all(r.status == "ok" for r in fork)


@needs_toolchain
def test_forkserver_divergences_byte_identical_to_subprocess():
    """Under a deterministic miscompile the two modes must produce the very
    same ``Divergence.describe()`` text — same diverging leg, same values,
    same report bytes."""
    cases = [generate_case(case_seed(0, index), max_stmts=8) for index in range(12)]
    fork_oracle = Oracle(
        backends=("x86",), asm_transform=_swap_first_addl, fork_server=True
    )
    sub_oracle = Oracle(
        backends=("x86",), asm_transform=_swap_first_addl, fork_server=False
    )
    fork_verdicts = fork_oracle.check_batch(cases)
    sub_verdicts = sub_oracle.check_batch(cases)
    divergences = 0
    for fork_verdict, sub_verdict in zip(fork_verdicts, sub_verdicts):
        assert not isinstance(fork_verdict, Exception), fork_verdict
        assert not isinstance(sub_verdict, Exception), sub_verdict
        assert (fork_verdict is None) == (sub_verdict is None)
        if fork_verdict is not None:
            divergences += 1
            assert fork_verdict.describe() == sub_verdict.describe()
    assert divergences >= 1, "deterministic miscompile produced no divergence"


@needs_toolchain
def test_forkserver_outcomes_byte_identical_to_subprocess_with_traps():
    """Every (case, input) outcome — ok values, trap attribution strings —
    must match the subprocess reference byte for byte."""
    import tempfile
    from pathlib import Path

    trap = _Case("int f(int a) {\n    return 7 / a;\n}\n", "f", [(0,), (2,), (0,)])
    clean = _Case("int g(int a) {\n    return a * 3;\n}\n", "g", [(1,), (-5,)])
    glob = _Case(
        "int acc = 2;\n\nint h(int k) {\n    acc += k;\n    return acc;\n}\n",
        "h",
        [(5,), (0,)],
    )
    cases = [trap, clean, glob]

    def outcomes(fork_server):
        with tempfile.TemporaryDirectory() as tmp:
            batch = NativeBatch(
                [BatchCase(c.source, c.name, list(c.inputs)) for c in cases],
                "O0",
                Path(tmp),
                fork_server=fork_server,
            )
            assert batch.fork_server == fork_server
            table = {}
            for case_index, case in enumerate(cases):
                for input_index in range(len(case.inputs)):
                    status, payload = batch.outcome(case_index, input_index)
                    if status == "ok":
                        table[(case_index, input_index)] = (
                            status,
                            payload.return_value,
                            list(payload.arg_values),
                            dict(payload.globals),
                        )
                    else:
                        table[(case_index, input_index)] = (status, str(payload))
            return table

    fork_table = outcomes(True)
    sub_table = outcomes(False)
    assert fork_table == sub_table
    assert fork_table[(0, 0)][0] == "trap"
    assert "exit status" in fork_table[(0, 0)][1]
    assert fork_table[(0, 1)] == ("ok", 3, [2], {})


@needs_toolchain
def test_forkserver_recovers_from_killed_server(monkeypatch):
    """Killing the persistent server mid-batch must cost nothing but a
    restart: every pair still gets its correct outcome."""
    import tempfile
    from pathlib import Path

    from repro.testing import native as native_mod

    cases = [
        _Case("int f(int a) {\n    return a + 10;\n}\n", "f", [(1,), (2,), (3,)]),
        _Case("int g(int a) {\n    return a * a;\n}\n", "g", [(4,), (5,)]),
    ]
    original_send = native_mod._ForkServer.send
    calls = {"count": 0}

    def killing_send(self, line):
        calls["count"] += 1
        if calls["count"] == 3:  # mid-batch: pairs 1-2 served, pair 3 pending
            self.proc.kill()
            self.proc.wait()
        return original_send(self, line)

    monkeypatch.setattr(native_mod._ForkServer, "send", killing_send)
    with tempfile.TemporaryDirectory() as tmp:
        batch = NativeBatch(
            [BatchCase(c.source, c.name, list(c.inputs)) for c in cases],
            "O0",
            Path(tmp),
            fork_server=True,
        )
        assert batch.fork_server
        expected = {(0, 0): 11, (0, 1): 12, (0, 2): 13, (1, 0): 16, (1, 1): 25}
        for (case_index, input_index), value in expected.items():
            status, result = batch.outcome(case_index, input_index)
            assert status == "ok" and result.return_value == value
    assert calls["count"] > 3, "the killed request was never retried"


@needs_toolchain
def test_forkserver_charges_pair_that_kills_server_every_time(monkeypatch):
    """A pair that takes the server down on *every* attempt must not spin
    forever: after MAX_PAIR_RETRIES restarts it is charged a ``limit``
    outcome and the rest of the batch completes normally."""
    import tempfile
    from pathlib import Path

    from repro.testing import native as native_mod

    cases = [
        _Case("int f(int a) {\n    return a + 10;\n}\n", "f", [(1,), (2,), (3,)]),
        _Case("int g(int a) {\n    return a * a;\n}\n", "g", [(4,), (5,)]),
    ]
    original_send = native_mod._ForkServer.send
    poison = {"line": None, "deaths": 0}

    def killing_send(self, line):
        if poison["line"] is not None and line == poison["line"]:
            poison["deaths"] += 1
            self.proc.kill()
            self.proc.wait()
        return original_send(self, line)

    monkeypatch.setattr(native_mod._ForkServer, "send", killing_send)
    with tempfile.TemporaryDirectory() as tmp:
        batch = NativeBatch(
            [BatchCase(c.source, c.name, list(c.inputs)) for c in cases],
            "O0",
            Path(tmp),
            fork_server=True,
        )
        # Execution is lazy: the request table exists before any pair runs,
        # so the poison can target pair (0, 1) deterministically.
        poison["line"] = batch._requests[1]
        status, detail = batch.outcome(0, 1)
        assert status == "limit"
        assert "fork server died 3 times" in detail
        expected = {(0, 0): 11, (0, 2): 13, (1, 0): 16, (1, 1): 25}
        for (case_index, input_index), value in expected.items():
            status, result = batch.outcome(case_index, input_index)
            assert status == "ok" and result.return_value == value
    assert poison["deaths"] == native_mod.NativeBatch.MAX_PAIR_RETRIES + 1


# ---------------------------------------------------------------------------
# Parallel (--jobs) parity
# ---------------------------------------------------------------------------


def _records(results):
    return [(r.index, r.seed, r.status, r.detail) for r in results]


def test_jobs_records_identical_to_single_process_toolchain_free():
    config = FuzzConfig(backends=(), batch_size=8)
    sequential = run_campaign(config, 11, 24, jobs=1)
    parallel = run_campaign(config, 11, 24, jobs=4)
    assert _records(sequential) == _records(parallel)


@needs_toolchain
def test_jobs_records_identical_with_native_legs():
    config = FuzzConfig(backends=("x86",), batch_size=8)
    sequential = run_campaign(config, 13, 16, jobs=1)
    parallel = run_campaign(config, 13, 16, jobs=2)
    assert _records(sequential) == _records(parallel)
    assert all(r.status == "ok" for r in sequential)


# ---------------------------------------------------------------------------
# Lifecycle: close() reaps children, build timeouts scale with the batch
# ---------------------------------------------------------------------------


def test_batch_build_timeout_scales_with_pair_budget():
    """The build join deadline must never cap below the batch's own
    execution budget (the 300s hard cap was the bug: a 5000-pair batch's
    legitimate 510s budget was cut to 300s and misread as a build hang)."""
    from repro.testing.native import batch_build_timeout

    assert batch_build_timeout(10.0, 100) == 300.0  # floor for small batches
    assert batch_build_timeout(10.0, 5000) == 510.0  # budget wins when larger
    assert batch_build_timeout(400.0, 0) == 400.0  # one slow pair alone


@needs_toolchain
def test_close_mid_execution_reaps_fork_server_group():
    """Closing a batch while a pair is wedged in an infinite loop must
    kill the fork server's whole process group — server and forked child
    — and subsequent outcome() calls must raise, not hang."""
    import os
    import tempfile
    import threading
    import time
    from pathlib import Path

    from repro.testing.native import BatchExecutionError

    looping = "int f(int a) {\n    while (a > 0) { a = a + 0; }\n    return a;\n}\n"
    with tempfile.TemporaryDirectory() as tmp:
        batch = NativeBatch(
            [BatchCase(looping, "f", [(1,)])],
            "O0",
            Path(tmp),
            run_timeout=120.0,
            fork_server=True,
        )
        failure = []

        def drive():
            try:
                batch.outcome(0, 0)
            except Exception as exc:
                failure.append(exc)

        thread = threading.Thread(target=drive)
        thread.start()
        deadline = time.monotonic() + 60.0
        while batch._server is None and time.monotonic() < deadline:
            time.sleep(0.02)
        server = batch._server
        assert server is not None, "fork server never came up"
        pgid = server.proc.pid
        # Collect the whole process group: the server plus its forked child
        # running the wedged pair (poll: the fork may not have happened yet).
        group = []
        while time.monotonic() < deadline and len(group) < 2:
            group = []
            for entry in os.listdir("/proc"):
                if not entry.isdigit():
                    continue
                try:
                    stat = (Path("/proc") / entry / "stat").read_text()
                    if int(stat.rsplit(")", 1)[1].split()[2]) == pgid:
                        group.append(int(entry))
                except (OSError, ValueError, IndexError):
                    continue
            time.sleep(0.02)
        assert pgid in group and len(group) >= 2, group

        batch.close()
        thread.join(timeout=30)
        assert not thread.is_alive(), "outcome() still blocked after close()"
        assert failure and isinstance(failure[0], BatchExecutionError)

        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            alive = [pid for pid in group if _pid_alive(pid)]
            if not alive:
                break
            time.sleep(0.05)
        assert alive == [], f"orphaned pids survived close(): {alive}"

        with pytest.raises(BatchExecutionError):
            batch.outcome(0, 0)


def _pid_alive(pid: int) -> bool:
    import os

    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    # Kernel may keep a zombie until the parent reaps; a zombie holds no
    # resources and os.waitpid already ran in kill(), so treat Z as dead.
    try:
        stat = open(f"/proc/{pid}/stat").read()
        return stat.rsplit(")", 1)[1].split()[0] != "Z"
    except (OSError, IndexError):
        return False


@needs_toolchain
def test_grouped_runner_context_manager_closes_batches():
    """Abandoning a GroupedBatchRunner mid-iteration (the generator is
    dropped, GeneratorExit fires) must close both in-flight batches."""
    import tempfile
    from pathlib import Path

    from repro.testing.native import GroupedBatchRunner

    units = [
        [BatchCase(f"int f{i}(int a) {{ return a + {i}; }}", f"f{i}", [(1,)])]
        for i in range(4)
    ]
    with tempfile.TemporaryDirectory() as tmp:
        with GroupedBatchRunner("O0", Path(tmp), group_cases=1) as runner:
            iterator = runner.run(units)
            next(iterator)
            assert runner._current is not None
            iterator.close()  # GeneratorExit -> finally -> close()
            assert runner._current is None and runner._next is None


@needs_toolchain
def test_closed_batch_refuses_new_execution():
    import tempfile
    from pathlib import Path

    from repro.testing.native import BatchExecutionError

    with tempfile.TemporaryDirectory() as tmp:
        batch = NativeBatch(
            [BatchCase("int f(int a) { return a; }", "f", [(1,)])],
            "O0",
            Path(tmp),
        )
        batch.close()
        with pytest.raises(BatchExecutionError):
            batch.outcome(0, 0)
