"""Batch/parallel parity: the throughput machinery must not change verdicts.

The batched native path (``Oracle.check_batch`` / ``NativeBatch``) and the
``--jobs N`` worker pool exist purely for speed; this module pins the
acceptance property that a fixed-seed run through them produces verdicts
identical to the sequential per-case path — including trap observations,
and including the exact ``Divergence.describe()`` text when a (deterministic)
miscompile is injected.
"""

from dataclasses import dataclass
from typing import List, Tuple

import pytest

from repro.testing.fuzz import FuzzConfig, case_seed, run_campaign
from repro.testing.generator import generate_case
from repro.testing.oracle import Oracle

from repro.testing.native import NativeBatch, BatchCase, have_native_toolchain

needs_toolchain = pytest.mark.skipif(
    not have_native_toolchain(),
    reason="requires an x86-64 host with GNU as and gcc",
)


@dataclass
class _Case:
    source: str
    name: str
    inputs: List[Tuple]


def _swap_first_addl(assembly: str) -> str:
    """A *deterministic* injected miscompile (first ``addl`` -> ``subl``).

    Unlike ``strip_cltd`` — whose misbehaviour reads whatever garbage %edx
    happens to hold, and therefore legitimately differs between a fresh
    process and a shared batch process — this transform corrupts results
    deterministically, so even the post-divergence outcome lines must match
    byte for byte between the batched and sequential paths.
    """
    lines = assembly.splitlines()
    for index, line in enumerate(lines):
        if line.strip().startswith("addl"):
            lines[index] = line.replace("addl", "subl", 1)
            break
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Oracle-level parity (toolchain-free)
# ---------------------------------------------------------------------------


def test_check_batch_matches_check_case_without_native_legs():
    oracle = Oracle(backends=())
    cases = [generate_case(case_seed(3, index), max_stmts=8) for index in range(12)]
    batch_verdicts = oracle.check_batch(cases)
    for case, batched in zip(cases, batch_verdicts):
        sequential = oracle.check_case(case.source, case.name, case.inputs)
        assert (sequential is None) == (batched is None or isinstance(batched, Exception))
        assert not isinstance(batched, Exception)
        assert sequential is None and batched is None


def test_check_batch_reports_parse_errors_per_case():
    oracle = Oracle(backends=())
    good = generate_case(case_seed(3, 0), max_stmts=6)
    bad = _Case("int f( {", "f", [(1,)])
    verdicts = oracle.check_batch([good, bad, good])
    assert verdicts[0] is None and verdicts[2] is None
    assert isinstance(verdicts[1], Exception)


# ---------------------------------------------------------------------------
# Native batch parity
# ---------------------------------------------------------------------------


@needs_toolchain
def test_batched_verdicts_identical_to_sequential_fixed_seed():
    """Clean fixed-seed cases: batch and per-case paths both report None,
    and a case where every leg traps is equally clean on both."""
    oracle = Oracle(backends=("x86",))
    cases = [generate_case(case_seed(5, index), max_stmts=8) for index in range(20)]
    cases.append(_Case("int f(int a) {\n    return a / (a - a);\n}\n", "f", [(3,), (7,)]))
    batch_verdicts = oracle.check_batch(cases)
    for case, batched in zip(cases, batch_verdicts):
        sequential = oracle.check_case(case.source, case.name, list(case.inputs))
        assert not isinstance(batched, Exception), batched
        assert (sequential is None) and (batched is None), (
            sequential and sequential.describe(),
            batched and batched.describe(),
        )


@needs_toolchain
def test_batched_divergences_byte_identical_under_deterministic_miscompile():
    oracle = Oracle(backends=("x86",), asm_transform=_swap_first_addl)
    cases = [generate_case(case_seed(0, index), max_stmts=8) for index in range(12)]
    batch_verdicts = oracle.check_batch(cases)
    divergences = 0
    for case, batched in zip(cases, batch_verdicts):
        sequential = oracle.check_case(case.source, case.name, case.inputs)
        assert not isinstance(batched, Exception), batched
        assert (sequential is None) == (batched is None)
        if sequential is not None:
            divergences += 1
            assert sequential.describe() == batched.describe()
    assert divergences >= 1, "deterministic miscompile produced no divergence"


@needs_toolchain
def test_batch_trap_resume_recovers_following_cases():
    """A trapping pair must not eat the results of later pairs in the batch."""
    trap = _Case("int f(int a) {\n    return a / (a - a);\n}\n", "f", [(1,)])
    clean = _Case("int g(int a) {\n    return a + 1;\n}\n", "g", [(1,), (41,)])
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        batch = NativeBatch(
            [
                BatchCase(trap.source, trap.name, list(trap.inputs)),
                BatchCase(clean.source, clean.name, list(clean.inputs)),
            ],
            "O0",
            Path(tmp),
        )
        status, detail = batch.outcome(0, 0)
        assert status == "trap" and "exit status" in detail
        status, result = batch.outcome(1, 0)
        assert status == "ok" and result.return_value == 2
        status, result = batch.outcome(1, 1)
        assert status == "ok" and result.return_value == 42


@needs_toolchain
def test_batch_globals_reset_between_input_vectors():
    """Vectors share one process in a batch; globals must still start
    pristine for every call, like the per-process sequential path."""
    source = """
int acc = 5;

int bump(int k) {
    acc += k;
    return acc;
}
"""
    case = _Case(source, "bump", [(1,), (1,), (10,)])
    oracle = Oracle(backends=("x86",))
    assert oracle.check_batch([case])[0] is None
    sequential = oracle.check_case(case.source, case.name, case.inputs)
    assert sequential is None


# ---------------------------------------------------------------------------
# Parallel (--jobs) parity
# ---------------------------------------------------------------------------


def _records(results):
    return [(r.index, r.seed, r.status, r.detail) for r in results]


def test_jobs_records_identical_to_single_process_toolchain_free():
    config = FuzzConfig(backends=(), batch_size=8)
    sequential = run_campaign(config, 11, 24, jobs=1)
    parallel = run_campaign(config, 11, 24, jobs=4)
    assert _records(sequential) == _records(parallel)


@needs_toolchain
def test_jobs_records_identical_with_native_legs():
    config = FuzzConfig(backends=("x86",), batch_size=8)
    sequential = run_campaign(config, 13, 16, jobs=1)
    parallel = run_campaign(config, 13, 16, jobs=2)
    assert _records(sequential) == _records(parallel)
    assert all(r.status == "ok" for r in sequential)
