"""Tests for the search-based candidate repair campaign (``repro.eval.repair``).

Pins the ISSUE's acceptance properties on the interpreter substrate (no
toolchain required, so every property is checked on every platform): the
repair-neighbor stream is deterministic and RNG-free, single-edit breaks
are inverted byte-exactly, campaigns are byte-identical across reruns /
``--resume`` / any ``--jobs`` count, and the zero-target degenerate case
neither crashes nor divides by zero.  The native x86 path is exercised by
the CI ``repair-smoke`` job.
"""

import json

from repro.eval.dataset import generated_entries
from repro.eval.mutate import Mutator, _op_alternatives, repair_neighbors
from repro.eval.repair import (
    REPAIRABLE_VERDICTS,
    RepairConfig,
    repair_campaign,
)
from repro.lang.parser import parse_program
from repro.lang.printer import print_program


def _small_dataset(seed=9, functions=4, candidates=6):
    entries = generated_entries(seed, functions, max_stmts=8)
    sets = [Mutator(entry.seed).candidates(entry, candidates) for entry in entries]
    return entries, sets


def _config(**overrides):
    base = dict(backend="none", budget=60, beam=4, chunk=24, max_depth=3)
    base.update(overrides)
    return RepairConfig(**base)


# ---------------------------------------------------------------------------
# Neighbor enumeration
# ---------------------------------------------------------------------------


def test_op_alternatives_list_inverse_direction_first():
    # swap_op maps both '-' and '*' to '+', so repairing a '+' tries those
    # inverse candidates first (sorted), before the forward image '-'.
    assert _op_alternatives("+") == ["*", "-"]
    assert _op_alternatives("-") == ["+"]
    assert _op_alternatives("<") == ["<="]
    # An operator is never its own alternative.
    for op in ("+", "-", "*", "<", "==", "&"):
        assert op not in _op_alternatives(op)


def test_repair_neighbors_deterministic_and_single_edit():
    source = print_program(
        parse_program("int f(int a) { if (a < 3) { return a - 1; } return a; }")
    )
    first = list(repair_neighbors(source, "f"))
    second = list(repair_neighbors(source, "f"))
    assert first == second, "neighbor stream must be RNG-free"
    assert first, "a near-miss source must have repair neighbors"
    kinds = {kind for kind, _ in first}
    assert kinds <= {
        "op_swap",
        "literal_nudge",
        "sign_flip",
        "condition_flip",
        "collapse",
        "stmt_drop",
        "cast_insert",
    }
    for _, text in first:
        assert text != source, "identity edits must be filtered out"
        parse_program(text)  # every neighbor is valid Mini-C


def test_repair_neighbors_invert_single_edit_breaks():
    reference = print_program(
        parse_program("int f(int a) { int b = a + 2; return b * 3; }")
    )
    # The three most common single-edit breaks: op swap, literal bump,
    # condition negation (on a variant with a branch).
    for broken in (
        reference.replace("a + 2", "a - 2"),
        reference.replace("b * 3", "b * 4"),
    ):
        assert broken != reference
        texts = [text for _, text in repair_neighbors(broken, "f")]
        assert reference in texts, broken

    branchy = print_program(
        parse_program("int g(int a) { if (a < 0) { return 0; } return a; }")
    )
    negated = branchy.replace("a < 0", "!(a < 0)")
    texts = [text for _, text in repair_neighbors(negated, "g")]
    assert branchy in texts


def test_repair_neighbors_reject_unparseable_and_unknown_names():
    assert list(repair_neighbors("@@@ not C @@@", "f")) == []
    source = print_program(parse_program("int f(int a) { return a; }"))
    assert list(repair_neighbors(source, "missing")) == []


# ---------------------------------------------------------------------------
# Campaigns (interpreter substrate)
# ---------------------------------------------------------------------------


def test_campaign_repairs_near_misses_deterministically():
    entries, sets = _small_dataset(seed=9, functions=4, candidates=6)
    first = repair_campaign(entries, sets, config=_config())
    second = repair_campaign(entries, sets, config=_config())
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    aggregate = first["aggregate"]
    assert aggregate["targets"] > 0, "the mutator must produce near-misses"
    assert aggregate["repaired"] > 0, "the search must repair some of them"
    assert set(aggregate["start_verdicts"]) <= set(REPAIRABLE_VERDICTS)
    # The headline acceptance number: most single-edit io_mismatch
    # candidates are repaired within budget.
    assert aggregate["io_mismatch_repair_rate"] >= 0.6
    for target in first["targets"]:
        assert target["status"] in ("repaired", "exhausted", "active")
        assert target["attempts_used"] <= 60
        if target["status"] == "repaired":
            assert target["repaired_source"]
            assert target["best"]["verdict"] == "io_equivalent"


def test_campaign_resume_is_byte_identical():
    entries, sets = _small_dataset(seed=9, functions=3, candidates=6)
    full = repair_campaign(entries, sets, config=_config(budget=40))

    partial = repair_campaign(entries, sets, config=_config(budget=40, max_rounds=1))
    resumed = repair_campaign(
        entries, sets, config=_config(budget=40), state=partial
    )
    assert json.dumps(full, sort_keys=True) == json.dumps(resumed, sort_keys=True)


def test_campaign_jobs_parity():
    entries, sets = _small_dataset(seed=11, functions=3, candidates=6)
    lone = repair_campaign(entries, sets, config=_config(budget=30))
    sharded = repair_campaign(entries, sets, config=_config(budget=30), jobs=3)
    flooded = repair_campaign(entries, sets, config=_config(budget=30), jobs=64)
    assert json.dumps(lone, sort_keys=True) == json.dumps(sharded, sort_keys=True)
    assert json.dumps(lone, sort_keys=True) == json.dumps(flooded, sort_keys=True)


def test_campaign_with_no_targets():
    # Zero entries: nothing to repair, rates defined as 1.0 (not a crash).
    campaign = repair_campaign([], [], config=_config())
    aggregate = campaign["aggregate"]
    assert aggregate["targets"] == 0
    assert aggregate["repair_rate"] == 1.0
    assert aggregate["io_mismatch_repair_rate"] == 1.0
    assert campaign["targets"] == []
