"""Native x86-64 IO-equivalence tests.

Every corpus function is compiled to x86-64 assembly at -O0 and -O3,
assembled and linked with the system GNU toolchain, executed on the host and
compared against the interpreter's observable state (return value,
pointer-argument contents, globals).  This is the strongest check the
reproduction has that the emitted assembly means what the source means —
including the 32-bit wrapping semantics the width-annotated IR carries.

Skipped automatically on non-x86-64 hosts or when ``as``/``gcc`` is missing.
"""

import subprocess
from pathlib import Path

import pytest

from corpus import CORPUS
from repro.testing.native import NativeFunction, have_native_toolchain, values_equal

pytestmark = pytest.mark.skipif(
    not have_native_toolchain(),
    reason="requires an x86-64 host with GNU as and gcc",
)

_GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("native")


def _check_entry(source, name, inputs, opt, workdir):
    native = NativeFunction(source, name, inputs, opt, workdir)
    for index in range(len(inputs)):
        expected = native.expected(index)
        actual = native.run(index)
        if expected.return_value is not None:
            assert values_equal(actual.return_value, expected.return_value), (
                f"{name}{inputs[index]} @ {opt}: native returned "
                f"{actual.return_value!r}, interpreter {expected.return_value!r}"
            )
        for j, value in enumerate(actual.arg_values):
            assert values_equal(value, expected.arg_values[j]), (
                f"{name}{inputs[index]} @ {opt}: arg {j} native {value!r} "
                f"!= interpreter {expected.arg_values[j]!r}"
            )
        for gname, gvalue in actual.globals.items():
            assert values_equal(gvalue, expected.globals[gname]), (
                f"{name}{inputs[index]} @ {opt}: global {gname} native "
                f"{gvalue!r} != interpreter {expected.globals[gname]!r}"
            )


@pytest.mark.parametrize("opt", ["O0", "O3"])
@pytest.mark.parametrize(
    "source,name,inputs", CORPUS, ids=[entry[1] for entry in CORPUS]
)
def test_native_matches_interpreter(source, name, inputs, opt, workdir):
    _check_entry(source, name, inputs, opt, workdir)


def test_overflowing_intermediate_matches_interpreter(workdir):
    """The acceptance criterion spelled out: a 32-bit product that exceeds
    2**31 before being divided must wrap exactly like the interpreter at
    both optimisation levels."""
    source = """
int prod_div(int a, int b, int c) {
    return a * b / c;
}
"""
    inputs = [(100000, 100000, 1000), (46341, 46341, 7)]
    for opt in ("O0", "O3"):
        native = NativeFunction(source, "prod_div", inputs, opt, workdir)
        for index in range(len(inputs)):
            expected = native.expected(index).return_value
            actual = native.run(index).return_value
            assert actual == expected, (
                f"prod_div{inputs[index]} @ {opt}: native {actual} != "
                f"interpreter {expected} (32-bit intermediate not wrapped?)"
            )
    # Sanity: the overflow really happens (64-bit arithmetic would differ).
    a, b, c = inputs[0]
    wrapped = ((a * b + 2**31) % 2**32 - 2**31) // c
    assert wrapped != (a * b) // c, "test inputs no longer overflow 32 bits"


def test_shared_initialised_global_links_across_functions(tmp_path):
    """Two separately compiled functions of one program share an initialised
    global: their .data definitions are weak, so linking both objects into
    one binary must work (as the old mergeable .comm symbols always did)."""
    import subprocess as sp

    from repro.compiler import compile_program

    source = """
int base = 5;

int f(int x) {
    return base + x;
}

int g(int x) {
    return base * x;
}
"""
    grid = compile_program(source, isas=("x86",), opt_levels=("O0",))
    (tmp_path / "f.s").write_text(grid["f"][("x86", "O0")].assembly)
    (tmp_path / "g.s").write_text(grid["g"][("x86", "O0")].assembly)
    (tmp_path / "main.c").write_text(
        '#include <stdio.h>\n'
        "extern long f(long);\n"
        "extern long g(long);\n"
        'int main(void){ printf("%ld %ld\\n", (long)(int)f(2), (long)(int)g(3)); return 0; }\n'
    )
    binary = tmp_path / "run"
    sp.run(
        ["gcc", "-no-pie", "-o", str(binary), str(tmp_path / "main.c"),
         str(tmp_path / "f.s"), str(tmp_path / "g.s")],
        check=True, capture_output=True,
    )
    out = sp.run([str(binary)], check=True, capture_output=True, text=True).stdout
    assert out.strip() == "7 15"


def test_golden_x86_assembles(tmp_path):
    """Every x86 golden file must be accepted by the system GNU assembler."""
    golden = sorted(_GOLDEN_DIR.glob("*_x86_*.s"))
    assert golden, "no x86 golden files found"
    for path in golden:
        subprocess.run(
            ["as", "--64", str(path), "-o", str(tmp_path / (path.stem + ".o"))],
            check=True,
            capture_output=True,
        )
