"""Tests for the property-based differential fuzzing subsystem.

Covers the generator (determinism, round-trip validity), the IR executor
leg, the four-way oracle, the delta-debugging reducer, and the acceptance
criterion that a deliberately injected miscompile (dropping the ``cltd``
sign extension before ``idivl``) is caught and reduced to a tiny
reproducer.  Printer/driver regressions the fuzzer originally shook out are
pinned here too.
"""

import pytest

from repro.compiler import CompileError, compile_function
from repro.lang import ast_nodes as ast
from repro.lang.interpreter import Interpreter
from repro.lang.parser import parse_program
from repro.lang.printer import print_expr
from repro.testing.fuzz import case_seed, strip_cltd
from repro.testing.generator import ProgramGenerator, generate_case
from repro.testing.irexec import IRExecutor
from repro.testing.oracle import Oracle, values_equal
from repro.testing.reduce import oracle_interestingness, reduce_case

from corpus import CORPUS
from repro.testing.native import have_native_toolchain


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------


def test_generator_is_deterministic():
    a = generate_case(1234)
    b = generate_case(1234)
    assert a.source == b.source
    assert a.inputs == b.inputs


def test_generator_seeds_differ():
    sources = {generate_case(seed).source for seed in range(10)}
    assert len(sources) == 10


@pytest.mark.parametrize("seed", range(0, 60, 3))
def test_generated_programs_compile_and_run(seed):
    """Every generated program must compile at both levels on both ISAs and
    execute on its inputs without tripping the interpreter."""
    case = generate_case(seed, max_stmts=8)
    for isa in ("x86", "arm"):
        for opt in ("O0", "O3"):
            compile_function(case.source, name=case.name, isa=isa, opt_level=opt)
    interp = Interpreter(parse_program(case.source))
    interp.run_function(case.name, case.inputs[0])


def test_generator_respects_max_stmts():
    small = ProgramGenerator(5, max_stmts=3).generate()
    large = ProgramGenerator(5, max_stmts=30).generate()
    assert len(large.source.splitlines()) > len(small.source.splitlines())


# ---------------------------------------------------------------------------
# IR executor
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "source,name,inputs", CORPUS[:12], ids=[entry[1] for entry in CORPUS[:12]]
)
def test_ir_executor_matches_interpreter_on_corpus(source, name, inputs):
    for opt in ("O0", "O3"):
        for args in inputs:
            expected = Interpreter(parse_program(source)).run_function(name, args)
            actual = IRExecutor(source, opt_level=opt).run_function(name, args)
            assert values_equal(actual.return_value, expected.return_value)
            assert values_equal(actual.arg_values, expected.arg_values)
            assert values_equal(actual.globals, expected.globals)


def test_ir_executor_honours_global_initialisers():
    source = """
int base = 41;

int next_base(int k) {
    base += k;
    return base;
}
"""
    result = IRExecutor(source).run_function("next_base", (1,))
    assert result.return_value == 42
    assert result.globals["base"] == 42


# ---------------------------------------------------------------------------
# Oracle (toolchain-free legs)
# ---------------------------------------------------------------------------


def test_oracle_interp_vs_ir_clean_on_generated_programs():
    oracle = Oracle(backends=())
    assert oracle.legs() == ["interp", "ir-O3"]
    for index in range(25):
        case = generate_case(case_seed(7, index), max_stmts=8)
        divergence = oracle.check_case(case.source, case.name, case.inputs)
        assert divergence is None, divergence.describe()


def test_oracle_trap_on_every_leg_is_equivalent():
    """A trap is an observation: when every leg traps (division by zero
    here), the legs agree and no divergence is reported."""
    oracle = Oracle(backends=())
    source = """
int f(int a) {
    return a / (a - a);
}
"""
    assert oracle.check_case(source, "f", [(3,)]) is None


# ---------------------------------------------------------------------------
# Reducer
# ---------------------------------------------------------------------------


def test_reducer_shrinks_with_syntactic_predicate():
    """Reducer mechanics, independent of any toolchain: shrink a bloated
    program while preserving a syntactic property."""
    source = """
int target(int a, int b) {
    int x = 1;
    int y = 2;
    for (int i = 0; i < 5; i++) {
        x = x + i;
    }
    if (a > b) {
        y = y * 3;
    }
    int z = a / ((b & 7) + 1);
    return z + x + y;
}
"""

    def still_divides(candidate: str, inputs) -> bool:
        return "/" in candidate

    result = reduce_case(source, "target", [(1, 2)], still_divides)
    assert "/" in result.source
    assert len(result.source.splitlines()) < len(source.strip().splitlines())


def test_reducer_drops_unused_parameters():
    source = """
int target(int a, int b, int c) {
    return a + 1;
}
"""

    def still_adds(candidate: str, inputs) -> bool:
        return "a + 1" in candidate

    result = reduce_case(source, "target", [(1, 2, 3)], still_adds)
    assert "b" not in result.source and "c" not in result.source
    assert result.inputs == [(1,)]


# ---------------------------------------------------------------------------
# Fuzzer-found front-end regressions
# ---------------------------------------------------------------------------


def test_printer_does_not_fuse_double_negation():
    """-(-28) must not print as the predecrement --28 (fuzzer find)."""
    text = print_expr(ast.UnaryOp("-", ast.IntLiteral(-28)))
    assert "--" not in text
    nested = print_expr(ast.UnaryOp("-", ast.UnaryOp("-", ast.Identifier("x"))))
    assert "--" not in nested


def test_shift_result_type_is_promoted_left_operand():
    """(u32 >> u64_count) stays 32-bit: the count does not widen the result
    (fuzzer find, mirrored by the shift_type corpus regression)."""
    source = """
unsigned long f(unsigned int p, unsigned long s) {
    return ((0 - p) >> s) << 1;
}
"""
    result = Interpreter(parse_program(source)).run_function("f", (100, 0))
    assert result.return_value == ((2**32 - 100) << 1) % 2**32


def test_global_initialisers_emit_data_sections():
    source = """
int base = 42;
int zero_base;

int touch(int k) {
    zero_base += k;
    return base + zero_base;
}
"""
    x86 = compile_function(source, name="touch", isa="x86", opt_level="O0").assembly
    assert "\t.data" in x86 and "\t.long\t42" in x86
    assert "\t.comm\tzero_base,4,8" in x86  # zero-init stays in .bss
    arm = compile_function(source, name="touch", isa="arm", opt_level="O0").assembly
    assert "\t.data" in arm and "\t.word\t42" in arm
    assert "\t.comm\tzero_base,4,8" in arm


def test_non_constant_global_initialiser_is_rejected():
    source = """
int seed(int x);
int base = seed(3);

int touch(void) {
    return base;
}
"""
    with pytest.raises(CompileError):
        compile_function(source, name="touch")


# ---------------------------------------------------------------------------
# Native legs and the injected-miscompile acceptance criterion
# ---------------------------------------------------------------------------

needs_toolchain = pytest.mark.skipif(
    not have_native_toolchain(),
    reason="requires an x86-64 host with GNU as and gcc",
)


@needs_toolchain
def test_bounded_fuzz_smoke_native():
    """A short four-way fuzz run must come back clean."""
    oracle = Oracle(backends=("x86",))
    assert set(oracle.legs()) == {"interp", "ir-O3", "x86-O0", "x86-O3"}
    for index in range(10):
        case = generate_case(case_seed(11, index), max_stmts=8)
        divergence = oracle.check_case(case.source, case.name, case.inputs)
        assert divergence is None, divergence.describe()


@needs_toolchain
def test_injected_miscompile_is_caught_and_reduced():
    """Acceptance criterion: stripping the cltd before idivl must be caught
    by the oracle and reduced to a <= 15 line reproducer."""
    oracle = Oracle(backends=("x86",), asm_transform=strip_cltd)
    divergence = None
    case = None
    for index in range(40):
        candidate = generate_case(case_seed(0, index))
        divergence = oracle.check_case(
            candidate.source, candidate.name, candidate.inputs
        )
        if divergence is not None:
            case = candidate
            break
    assert divergence is not None, "fuzzer failed to catch the injected miscompile"

    predicate = oracle_interestingness(oracle, case.name)
    result = reduce_case(
        case.source, case.name, case.inputs, predicate, max_attempts=300
    )
    assert len(result.source.strip().splitlines()) <= 15, result.source
    assert oracle.check_case(result.source, case.name, result.inputs) is not None

    # The pristine compiler must be clean on the same program.
    clean_oracle = Oracle(backends=("x86",))
    assert clean_oracle.check_case(result.source, case.name, result.inputs) is None
