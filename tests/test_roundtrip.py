"""Printer → parser → typechecker round-trip stability, pinned directly.

The generator has always *relied* on this invariant (it renders its AST
through the printer and re-parses the text before handing a case to the
oracle), but nothing tested it on its own: for any generated program, the
pretty-printed form must be a fixed point of parse → print, and the
reparse must type-check cleanly.  200 fixed-seed programs keep the
property deterministic in CI while covering every construct the sampler
can emit (all int widths and signedness, casts, compound assignment,
++/--, ternaries, nested control flow, globals, pointer out-parameters).
"""

import pytest

from repro.lang.parser import parse_program
from repro.lang.printer import print_program
from repro.lang.typecheck import check_program
from repro.testing.fuzz import case_seed
from repro.testing.generator import generate_case

#: Decorrelated from the fuzz-smoke seeds so this suite explores different
#: programs than the CI fuzz job.
BASE_SEED = 23
N_PROGRAMS = 200


def _chunk(start: int, count: int):
    return [case_seed(BASE_SEED, index) for index in range(start, start + count)]


@pytest.mark.parametrize("start", range(0, N_PROGRAMS, 25))
def test_reprint_of_reparse_is_byte_identical(start):
    for seed in _chunk(start, 25):
        case = generate_case(seed, max_stmts=10)
        reparsed = parse_program(case.source)
        reprinted = print_program(reparsed)
        assert reprinted == case.source, (
            f"seed {seed}: printer is not a fixed point of parse->print\n"
            f"--- printed ---\n{case.source}\n--- reprinted ---\n{reprinted}"
        )


@pytest.mark.parametrize("start", range(0, N_PROGRAMS, 50))
def test_reparse_typechecks_cleanly(start):
    for seed in _chunk(start, 50):
        case = generate_case(seed, max_stmts=10)
        result = check_program(parse_program(case.source))
        assert not result.errors, f"seed {seed}: {result.errors}\n{case.source}"
        assert result.missing.is_empty(), f"seed {seed}: {result.missing}"


def test_second_round_trip_is_stable():
    """print(parse(print(parse(text)))) == print(parse(text)): one round
    trip reaches the fixed point, not an oscillation."""
    for seed in _chunk(0, 25):
        case = generate_case(seed, max_stmts=10)
        once = print_program(parse_program(case.source))
        twice = print_program(parse_program(once))
        assert once == twice, f"seed {seed}"
