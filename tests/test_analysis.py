"""Tests for the repro.analysis subsystem (PR 6).

Three layers:

* the IR verifier — accepts everything the lowering pipeline produces
  (golden + generated corpus, O0 and O3) and rejects hand-broken IR with
  pass-attributed diagnostics;
* the UB/dataflow linter — pinned verdicts on small sources, and
  precision against the mutator's certified trap labels;
* the sanitizer leg — attributed UBSan reports, clean runs, struct skips
  (native-toolchain tests are gated).
"""

import dataclasses

import pytest

from corpus import CORPUS
from repro.analysis.lint import lint_source
from repro.analysis.sanitize import (
    SanitizerBatch,
    parse_sanitizer_reports,
)
from repro.analysis.verifier import (
    IRVerificationError,
    verify_function,
    verify_function_or_raise,
)
from repro.compiler import ir
from repro.compiler.driver import lower_for_backend
from repro.eval.dataset import generated_entries
from repro.eval.mutate import Mutator
from repro.eval.score import score_dataset
from repro.lang.parser import parse_program
from repro.testing.fuzz import case_seed, strip_reextension
from repro.testing.generator import ProgramGenerator
from repro.testing.native import have_native_toolchain
from repro.testing.oracle import Oracle


def _lowered_ir(source: str, name: str, opt_level: str = "O0") -> ir.IRFunction:
    return lower_for_backend(
        parse_program(source), name=name, opt_level=opt_level
    ).ir_func


# ---------------------------------------------------------------------------
# IR verifier: accepts real output
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("opt_level", ["O0", "O3"])
def test_verifier_accepts_golden_corpus(opt_level):
    for source, name, _ in CORPUS:
        lower_for_backend(
            parse_program(source), name=name, opt_level=opt_level, verify_ir=True
        )


@pytest.mark.parametrize("opt_level", ["O0", "O3"])
def test_verifier_accepts_generated_corpus(opt_level):
    for index in range(30):
        case = ProgramGenerator(case_seed(7, index), max_stmts=10).generate()
        lower_for_backend(
            parse_program(case.source),
            name=case.name,
            opt_level=opt_level,
            verify_ir=True,
        )


# ---------------------------------------------------------------------------
# IR verifier: rejects broken IR, attributing the pass
# ---------------------------------------------------------------------------


def test_verifier_flags_undefined_register():
    func = _lowered_ir("int f(int a) { return a; }", "f")
    func.instrs.insert(0, ir.IRMove(ir.VReg(996), ir.VReg(999)))
    diagnostics = verify_function(func, pass_name="test-pass")
    assert diagnostics, "undefined-register use not flagged"
    assert any("use of undefined register" in d.message for d in diagnostics)
    assert diagnostics[0].pass_name == "test-pass"
    assert "[ir-verifier]" in str(diagnostics[0])
    assert "after test-pass" in str(diagnostics[0])


def test_verifier_flags_dangling_branch_target():
    func = _lowered_ir("int f(int a) { return a; }", "f")
    func.instrs.insert(0, ir.IRJump(".Lnope"))
    diagnostics = verify_function(func)
    assert any("is not a label" in d.message for d in diagnostics)


def test_verifier_flags_wrong_width_cast():
    # ``char c = a`` lowers through a width cast; mis-annotate its
    # destination so the annotation no longer matches what the cast
    # produces.
    func = _lowered_ir("int f(int a) { char c = a; return c; }", "f")
    casts = [
        (i, instr)
        for i, instr in enumerate(func.instrs)
        if isinstance(instr, ir.IRCast) and instr.kind in ir.WIDTH_CASTS
    ]
    assert casts, "expected a width cast in the lowered IR"
    index, cast = casts[0]
    wrong = dataclasses.replace(
        cast.dst, bits=64 if cast.dst.bits != 64 else 32
    )
    func.instrs[index] = ir.IRCast(cast.kind, wrong, cast.src)
    diagnostics = verify_function(func)
    assert any("destination annotated" in d.message for d in diagnostics)


def test_verifier_flags_dropped_reextension():
    func = _lowered_ir("int f(int a) { char c = a; return c + 1; }", "f")
    strip_reextension(func)
    with pytest.raises(IRVerificationError) as excinfo:
        verify_function_or_raise(func, pass_name="inject:strip_reextension")
    assert excinfo.value.pass_name == "inject:strip_reextension"
    assert "inject:strip_reextension" in str(excinfo.value)


def test_verifier_tracks_constant_values():
    # A 64-bit register holding a small known immediate is fine as a
    # narrow operand; a known out-of-range immediate is not.
    def one(value):
        wide = ir.VReg(0, bits=64)
        narrow = ir.VReg(1, bits=8)
        return ir.IRFunction(
            name="f",
            instrs=[
                ir.IRConst(wide, value),
                ir.IRBinOp("add", narrow, wide, 1, bits=8),
                ir.IRRet(narrow),
            ],
            next_vreg=2,
        )

    assert verify_function(one(5)) == []
    diagnostics = verify_function(one(300))
    assert any("holds immediate 300" in d.message for d in diagnostics)


def test_oracle_reports_injected_ir_miscompile():
    oracle = Oracle(backends=(), ir_transform=strip_reextension)
    divergence = oracle.check_case(
        "int f(int a) { char c = a; return c + 1; }", "f", [(5,)]
    )
    assert divergence is not None
    assert divergence.category == "ir-verifier"
    assert divergence.diverging_leg == "inject:strip_reextension"
    assert "IR invariant violation" in divergence.describe()


# ---------------------------------------------------------------------------
# Linter: pinned verdicts
# ---------------------------------------------------------------------------


def _findings(source, kind=None):
    found = lint_source(source)
    if kind is None:
        return found
    return [f for f in found if f.kind == kind]


def test_lint_definite_division_by_zero_predicts_trap():
    findings = _findings("int f(int a) { return a / 0; }", "div_by_zero")
    assert findings and findings[0].severity == "error"
    assert findings[0].predicts_trap


def test_lint_nonzero_divisor_is_clean():
    assert not _findings(
        "int f(int a, int b) { return a / ((b & 7) + 1); }", "div_by_zero"
    )
    assert not _findings(
        "int f(int a, int b) { return a / ((b & 7) + 1); }", "possible_div_by_zero"
    )


def test_lint_guard_refines_divisor():
    source = "int f(int a, int b) { if (b) { return a / b; } return 0; }"
    assert not _findings(source, "div_by_zero")


def test_lint_division_in_loop_is_not_must_execute():
    source = "int f(int a) { while (a) { return 1 / 0; } return 0; }"
    findings = _findings(source, "div_by_zero")
    assert findings and not findings[0].must_execute
    assert not findings[0].predicts_trap


def test_lint_float_division_by_zero_is_defined():
    assert not any(
        f.predicts_trap
        for f in _findings("double f(double a) { return a / 0.0; }")
    )


def test_lint_shift_width():
    assert _findings("int f(int a) { return a << 32; }", "shift_width")
    assert not _findings("int f(int a, int b) { return a << (b & 31); }", "shift_width")


def test_lint_uninitialized_read():
    assert _findings("int f(int a) { int x; return x + a; }", "uninitialized")


def test_lint_unreachable_code():
    assert _findings("int f(int a) { return a; a = 2; return a; }", "unreachable")


# ---------------------------------------------------------------------------
# Linter: precision against certified mutate labels
# ---------------------------------------------------------------------------


def test_lint_trap_predictions_match_certified_labels():
    entries = generated_entries(0, 12, max_stmts=10, isas=("x86",), opt_levels=("O0",))
    flagged = 0
    for entry in entries:
        for candidate in Mutator(entry.seed).candidates(entry, 6):
            if not candidate.expected:
                continue
            try:
                findings = lint_source(candidate.text, name=entry.name)
            except Exception:
                continue
            if any(f.predicts_trap for f in findings):
                flagged += 1
                assert candidate.expected == "trap", (
                    f"linter flagged a candidate certified as "
                    f"{candidate.expected!r}: {candidate.text}"
                )
    assert flagged > 0, "no certified trap candidate was ever flagged"


def test_score_prefilter_preserves_verdicts():
    entries = generated_entries(3, 6, max_stmts=8, isas=("x86",), opt_levels=("O0",))
    candidate_sets = [Mutator(entry.seed).candidates(entry, 4) for entry in entries]
    with_lint = score_dataset(entries, candidate_sets, backend="none", use_batch=False)
    without = score_dataset(
        entries, candidate_sets, backend="none", use_batch=False, lint=False
    )
    assert (
        with_lint["aggregate"]["verdict_counts"]
        == without["aggregate"]["verdict_counts"]
    )
    assert with_lint["aggregate"]["ground_truth_agreement"] == 1.0
    lint_section = with_lint["aggregate"]["lint"]
    assert lint_section["enabled"]
    assert lint_section["precision"] >= 0.95
    assert without["aggregate"]["lint"]["flagged"] == 0


# ---------------------------------------------------------------------------
# Sanitizer leg
# ---------------------------------------------------------------------------


class _Case:
    def __init__(self, source, name, inputs):
        self.source = source
        self.name = name
        self.inputs = inputs


def test_parse_sanitizer_reports_dedups():
    stderr = (
        "san_case0.c:2:14: runtime error: shift exponent 40 is too large "
        "for 32-bit type 'int'\n"
        "san_case0.c:2:14: runtime error: shift exponent 40 is too large "
        "for 32-bit type 'int'\n"
        "san_case1.c:3:10: runtime error: division by zero\n"
    )
    reports = parse_sanitizer_reports(
        stderr, {"san_case0.c": 0, "san_case1.c": 7}
    )
    assert len(reports) == 2
    assert reports[0].case_index == 0
    assert "shift exponent" in reports[0].message
    assert reports[1].case_index == 7


needs_gcc = pytest.mark.skipif(
    not have_native_toolchain(), reason="no native toolchain"
)


@needs_gcc
def test_sanitizer_batch_attributes_shift_report(tmp_path):
    batch = SanitizerBatch(
        [
            _Case("int f(int a, int b) { return a + b; }", "f", [(1, 2)]),
            _Case("int g(int a) { return a << 40; }", "g", [(3,)]),
        ],
        tmp_path,
    )
    by_case = batch.reports_by_case()
    assert 0 not in by_case
    assert 1 in by_case
    assert any("shift exponent" in r.message for r in by_case[1])


@needs_gcc
def test_sanitizer_batch_skips_struct_cases(tmp_path):
    source = (
        "struct point { int x; int y; };\n"
        "int f(struct point p) { return p.x + p.y; }\n"
    )
    batch = SanitizerBatch([_Case(source, "f", [])], tmp_path)
    assert 0 in batch.skipped
    assert batch.run() == []


@needs_gcc
def test_oracle_sanitizer_divergence(tmp_path):
    oracle = Oracle(backends=("x86",), workdir=tmp_path, sanitize=True)
    divergence = oracle.check_case("int f(int a) { return a << 40; }", "f", [(3,)])
    assert divergence is not None
    assert divergence.category == "sanitizer"
    assert "shift exponent" in divergence.detail
    assert "sanitizer report" in divergence.describe()
