"""Packaging/API tests: the lazy re-exports of ``repro.compiler``,
``repro.testing`` and ``repro.eval``, and the driver's error reporting."""

import importlib

import pytest

import repro.compiler as compiler_pkg
from repro.compiler import (
    CompileError,
    CompiledFunction,
    compile_function,
    compile_program,
)


def test_advertised_entry_points_importable():
    assert callable(compile_function)
    assert callable(compile_program)
    assert issubclass(CompileError, Exception)
    assert CompiledFunction is not None


def test_submodules_importable_standalone():
    for name in ("ir", "lowering", "opt", "regalloc", "x86", "arm", "driver"):
        module = importlib.import_module(f"repro.compiler.{name}")
        assert module is getattr(compiler_pkg, name)


def test_unknown_attribute_raises_attribute_error():
    with pytest.raises(AttributeError):
        compiler_pkg.no_such_symbol


def test_dir_lists_exports():
    listing = dir(compiler_pkg)
    assert "compile_function" in listing
    assert "lowering" in listing


def test_native_harness_public_api_surface():
    """The native harnesses live in ``repro.testing.native`` (the
    ``tests/native_runner.py`` shim is gone); pin the public surface so a
    future relocation cannot silently break consumers again."""
    module = importlib.import_module("repro.testing.native")
    for name in (
        "BatchCase",
        "BatchExecutionError",
        "NativeBatch",
        "NativeFunction",
        "NativeResult",
        "have_arm_toolchain",
        "have_native_toolchain",
        "values_equal",
    ):
        assert name in module.__all__, name
        assert getattr(module, name) is not None
    # The lazy package-level re-exports must resolve to the same objects.
    import repro.testing as testing_pkg

    assert testing_pkg.NativeBatch is module.NativeBatch
    assert testing_pkg.NativeFunction is module.NativeFunction


def test_eval_package_api_surface():
    import repro.eval as eval_pkg

    for name in eval_pkg.__all__:
        assert getattr(eval_pkg, name) is not None, name
    from repro.eval.dataset import VERDICTS

    assert VERDICTS == (
        "parse_error",
        "type_error",
        "compile_error",
        "trap",
        "io_mismatch",
        "io_equivalent",
    )
    with pytest.raises(AttributeError):
        eval_pkg.no_such_symbol


def test_compile_program_grid():
    source = """
int twice(int x) { return 2 * x; }
int thrice(int x) { return 3 * x; }
"""
    grid = compile_program(source)
    assert set(grid) == {"twice", "thrice"}
    for per_func in grid.values():
        assert set(per_func) == {
            ("x86", "O0"), ("x86", "O3"), ("arm", "O0"), ("arm", "O3")
        }
        for compiled in per_func.values():
            assert compiled.assembly.strip()


def test_parse_error_becomes_compile_error():
    with pytest.raises(CompileError, match="parse error"):
        compile_function("int broken( {")


def test_unknown_isa_rejected():
    with pytest.raises(CompileError, match="unknown ISA"):
        compile_function("int f(void) { return 0; }", isa="riscv")


def test_unknown_opt_level_rejected():
    with pytest.raises(CompileError, match="optimisation level"):
        compile_function("int f(void) { return 0; }", opt_level="O2")


def test_isa_and_opt_aliases():
    source = "int f(void) { return 0; }"
    assert compile_function(source, isa="aarch64", opt_level=0).isa == "arm"
    assert compile_function(source, isa="x86_64", opt_level="-O3").opt_level == "O3"


def test_named_function_selection():
    source = "int a(void) { return 1; }\nint b(void) { return 2; }"
    assert compile_function(source, name="b").name == "b"
    with pytest.raises(CompileError, match="multiple functions"):
        compile_function(source)
    with pytest.raises(CompileError, match="no function named"):
        compile_function(source, name="c")
