"""Regenerate (or verify) the golden assembly files used by test_backends.py.

Run from the repository root:

    python tests/make_golden.py          # rewrite the golden files
    python tests/make_golden.py --check  # exit 1 if any golden file is stale
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.compiler import compile_function  # noqa: E402

SOURCE = "int add2(int a, int b) { return a + b + 2; }\n"
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def generate() -> dict:
    """{path: expected assembly} for every golden file."""
    expected = {}
    for isa in ("x86", "arm"):
        for opt in ("O0", "O3"):
            compiled = compile_function(SOURCE, isa=isa, opt_level=opt)
            expected[GOLDEN_DIR / f"add2_{isa}_{opt}.s"] = compiled.assembly
    return expected


def main() -> int:
    check = "--check" in sys.argv[1:]
    GOLDEN_DIR.mkdir(exist_ok=True)
    expected = generate()
    stale = []
    for path, assembly in expected.items():
        if check:
            if not path.exists() or path.read_text() != assembly:
                stale.append(path)
        else:
            path.write_text(assembly)
            print(f"wrote {path} ({len(assembly.splitlines())} lines)")
    if check and stale:
        for path in stale:
            print(f"stale golden file: {path}", file=sys.stderr)
        print("regenerate with: python tests/make_golden.py", file=sys.stderr)
        return 1
    if check:
        print(f"{len(expected)} golden files up to date")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
