"""Regenerate the golden assembly files used by test_backends.py.

Run from the repository root:

    python tests/make_golden.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.compiler import compile_function  # noqa: E402

SOURCE = "int add2(int a, int b) { return a + b + 2; }\n"
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def main() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for isa in ("x86", "arm"):
        for opt in ("O0", "O3"):
            compiled = compile_function(SOURCE, isa=isa, opt_level=opt)
            path = GOLDEN_DIR / f"add2_{isa}_{opt}.s"
            path.write_text(compiled.assembly)
            print(f"wrote {path} ({len(compiled.assembly.splitlines())} lines)")


if __name__ == "__main__":
    main()
