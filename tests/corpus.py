"""Mini-C corpus shared by the differential and backend smoke tests.

Each entry is ``(program_source, function_name, inputs)`` where ``inputs``
is a list of argument tuples the function is executed on.  The functions
deliberately exercise the features the SLaDe evaluation leans on: counted
loops (so -O3 unrolling kicks in), pointers and out-parameters, structs,
signed division/modulo, shifts, floats and globals.
"""

CORPUS = [
    (
        """
int sum_to(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        s += i;
    }
    return s;
}
""",
        "sum_to",
        [(0,), (1,), (7,), (100,)],
    ),
    (
        """
long dot(int *a, int *b, int n) {
    long acc = 0;
    for (int i = 0; i < n; i++) {
        acc += a[i] * b[i];
    }
    return acc;
}
""",
        "dot",
        [([1, 2, 3, 4, 5], [5, 4, 3, 2, 1], 5), ([-7, 9], [3, -2], 2)],
    ),
    (
        """
void reverse(int *a, int n) {
    int i = 0;
    int j = n - 1;
    while (i < j) {
        int tmp = a[i];
        a[i] = a[j];
        a[j] = tmp;
        i++;
        j--;
    }
}
""",
        "reverse",
        [([1, 2, 3, 4, 5, 6], 6), ([10], 1), ([4, 8], 2)],
    ),
    (
        """
int fib(int n) {
    int a = 0;
    int b = 1;
    for (int i = 0; i < n; i++) {
        int t = a + b;
        a = b;
        b = t;
    }
    return a;
}
""",
        "fib",
        [(0,), (1,), (10,), (20,)],
    ),
    (
        """
int divmod_mix(int a, int b) {
    if (b == 0) {
        return -1;
    }
    return a / b * 1000 + a % b;
}
""",
        "divmod_mix",
        [(17, 5), (-17, 5), (17, -5), (-17, -5), (42, 0)],
    ),
    (
        """
int shifty(int x, int s) {
    return (x << (s & 7)) ^ (x >> 1);
}
""",
        "shifty",
        [(1, 3), (255, 7), (-64, 2), (1024, 33)],
    ),
    (
        """
typedef struct Point {
    int x;
    int y;
} Point;

int manhattan(Point *p, Point *q) {
    int dx = p->x - q->x;
    int dy = p->y - q->y;
    if (dx < 0) {
        dx = -dx;
    }
    if (dy < 0) {
        dy = -dy;
    }
    return dx + dy;
}
""",
        "manhattan",
        [({"x": 1, "y": 2}, {"x": 4, "y": 6}), ({"x": -3, "y": 0}, {"x": 3, "y": -4})],
    ),
    (
        """
typedef struct Point {
    int x;
    int y;
} Point;

void scale_point(Point *p, int k) {
    p->x = p->x * k;
    p->y = p->y * k;
}
""",
        "scale_point",
        [({"x": 3, "y": -2}, 5), ({"x": 0, "y": 7}, -1)],
    ),
    (
        """
int my_strlen(char *s) {
    int n = 0;
    while (s[n] != 0) {
        n++;
    }
    return n;
}
""",
        "my_strlen",
        [("hello",), ("",), ("a longer string with spaces",)],
    ),
    (
        """
int count_eq(char *s, int c) {
    int n = 0;
    for (int i = 0; s[i] != 0; i++) {
        if (s[i] == c) {
            n++;
        }
    }
    return n;
}
""",
        "count_eq",
        [("banana", 97), ("mississippi", 115), ("", 120)],
    ),
    (
        """
int max_of(int *a, int n) {
    int best = a[0];
    for (int i = 1; i < n; i++) {
        if (a[i] > best) {
            best = a[i];
        }
    }
    return best;
}
""",
        "max_of",
        [([3, 1, 4, 1, 5, 9, 2, 6], 8), ([-5, -2, -9], 3)],
    ),
    (
        """
void bubble_sort(int *a, int n) {
    for (int i = 0; i < n; i++) {
        for (int j = 0; j + 1 < n - i; j++) {
            if (a[j] > a[j + 1]) {
                int tmp = a[j];
                a[j] = a[j + 1];
                a[j + 1] = tmp;
            }
        }
    }
}
""",
        "bubble_sort",
        [([5, 2, 9, 1, 7, 3], 6), ([2, 1], 2), ([4], 1)],
    ),
    (
        """
int gcd(int a, int b) {
    while (b != 0) {
        int t = a % b;
        a = b;
        b = t;
    }
    return a;
}
""",
        "gcd",
        [(12, 18), (17, 5), (100, 75), (7, 0)],
    ),
    (
        """
int collatz_steps(int n) {
    int steps = 0;
    while (n != 1 && steps < 1000) {
        if (n % 2 == 0) {
            n = n >> 1;
        } else {
            n = 3 * n + 1;
        }
        steps++;
    }
    return steps;
}
""",
        "collatz_steps",
        [(1,), (6,), (27,)],
    ),
    (
        """
double avg(int *a, int n) {
    double total = 0.0;
    for (int i = 0; i < n; i++) {
        total = total + a[i];
    }
    if (n == 0) {
        return 0.0;
    }
    return total / n;
}
""",
        "avg",
        [([1, 2, 3, 4], 4), ([10, -10, 30], 3), ([], 0)],
    ),
    (
        """
double poly(double x) {
    return 3.0 * x * x - 2.0 * x + 1.5;
}
""",
        "poly",
        [(0.0,), (1.0,), (-2.5,), (10.0,)],
    ),
    (
        """
int clamp(int x, int lo, int hi) {
    return x < lo ? lo : (x > hi ? hi : x);
}
""",
        "clamp",
        [(5, 0, 10), (-5, 0, 10), (15, 0, 10)],
    ),
    (
        """
int sum_ptr(int *a, int n) {
    int s = 0;
    int *p = a;
    while (n > 0) {
        s += *p;
        p++;
        n--;
    }
    return s;
}
""",
        "sum_ptr",
        [([1, 2, 3, 4, 5], 5), ([-1, 1], 2), ([], 0)],
    ),
    (
        """
int counter;

int bump(int k) {
    counter += k;
    return counter * 2;
}
""",
        "bump",
        [(1,), (5,), (-2,)],
    ),
    (
        """
unsigned int uwrap(unsigned int a, unsigned int b) {
    return a * b + 7;
}
""",
        "uwrap",
        [(65535, 65537), (4000000000, 2), (3, 5)],
    ),
    (
        """
int skip_sum(int *a, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        if (a[i] < 0) {
            continue;
        }
        if (a[i] > 100) {
            break;
        }
        s += a[i];
    }
    return s;
}
""",
        "skip_sum",
        [([1, -2, 3, 200, 4], 5), ([50, 60, -70], 3)],
    ),
    (
        """
int grid_sum(int *m, int rows, int cols) {
    int s = 0;
    for (int i = 0; i < rows; i++) {
        for (int j = 0; j < cols; j++) {
            s += m[i * cols + j];
        }
    }
    return s;
}
""",
        "grid_sum",
        [([1, 2, 3, 4, 5, 6], 2, 3), ([7], 1, 1)],
    ),
    (
        """
int wrap_shift(int n) {
    return (1 << 33) + n;
}
""",
        "wrap_shift",
        [(0,), (5,), (-2,)],
    ),
    # -- width-sensitive functions: the 32-bit intermediate overflows (or the
    # -- signedness matters) BEFORE the value is stored, so 64-bit codegen
    # -- would silently diverge from the interpreter's wrapped semantics.
    (
        """
int prod_div(int a, int b, int c) {
    return a * b / c;
}
""",
        "prod_div",
        [(100000, 100000, 1000), (-50000, 70000, 9), (46341, 46341, 7), (12, 3, 4)],
    ),
    (
        """
int mac_chain(int a, int b, int c) {
    int acc = a;
    for (int i = 0; i < 6; i++) {
        acc = acc * b + c;
    }
    return acc / 5;
}
""",
        "mac_chain",
        [(3, 1000, 7), (-2, 99991, 12345), (1, 2, 3)],
    ),
    (
        """
int mixed_cmp(int a, unsigned int b) {
    int n = 0;
    if (a < b) {
        n = n + 1;
    }
    if (a > b) {
        n = n + 2;
    }
    if (a == b) {
        n = n + 4;
    }
    return n;
}
""",
        "mixed_cmp",
        [(-1, 1), (-2147483647, 4294967295), (5, 5), (7, 3), (-1, 4294967295)],
    ),
    (
        """
int narrow_cast(long x) {
    int y = (int) x;
    return y / 3;
}
""",
        "narrow_cast",
        [(4294967305,), (-4294967291,), (21,), (8589934592,)],
    ),
    (
        """
int shl_div(int x, int s) {
    return (x << s) / 4;
}
""",
        "shl_div",
        [(1, 31), (3, 30), (-1, 20), (5, 2)],
    ),
    (
        """
unsigned int udiv_wrap(unsigned int a, unsigned int b) {
    return a * a / b + (a * 3 - b) % 7;
}
""",
        "udiv_wrap",
        [(65536, 10), (4000000000, 13), (9, 2)],
    ),
    (
        """
long widen_mix(int a, unsigned int b, long c) {
    long wide = a * b;
    return wide + (a + c) / 3;
}
""",
        "widen_mix",
        [(-3, 5, 1000000000000), (100000, 100000, -9), (2, 2, 2)],
    ),
    (
        """
long to_ulong(int a) {
    unsigned int u = a;
    return u / 3 + u;
}
""",
        "to_ulong",
        [(-1,), (-2147483647,), (9,)],
    ),
    (
        """
int assign_value(int i) {
    char c;
    int r = (c = i);
    return r * 2 + c;
}
""",
        "assign_value",
        [(70000,), (-1,), (56,)],
    ),
    (
        """
int postfix_value(int x) {
    int y = x++;
    int z = x--;
    return y * 100 + z * 10 + x;
}
""",
        "postfix_value",
        [(3,), (-7,), (0,)],
    ),
    # -- char/short-heavy functions: register-promoted narrow locals, C's
    # -- promotion-then-truncate patterns, and narrow unsigned wraparound.
    (
        """
int char_acc(char *s, int n) {
    char acc = 0;
    for (int i = 0; i < n; i++) {
        acc += s[i];
    }
    return acc;
}
""",
        "char_acc",
        [([100, 100, 100], 3), ([-128, -1, 127], 3), ([], 0)],
    ),
    (
        """
int short_div(short a, short b) {
    short s = a + b;
    return s / 3;
}
""",
        "short_div",
        [(32767, 1), (-32768, -1), (100, 23)],
    ),
    (
        """
int uchar_wrap(int n) {
    unsigned char c = 250;
    for (int i = 0; i < n; i++) {
        c++;
    }
    return c;
}
""",
        "uchar_wrap",
        [(0,), (6,), (10,), (300,)],
    ),
    (
        """
int narrow_cmp(int x) {
    unsigned char u = x;
    char s = x;
    int n = 0;
    if (u == s) {
        n += 1;
    }
    if (u > 100) {
        n += 2;
    }
    if (s > 100) {
        n += 4;
    }
    return n;
}
""",
        "narrow_cmp",
        [(0,), (100,), (200,), (-56,)],
    ),
    (
        """
int short_shift(short h, int s) {
    short t = h << (s & 7);
    return t - (h >> 1);
}
""",
        "short_shift",
        [(1000, 6), (-32768, 1), (257, 7)],
    ),
    (
        """
int short_mul_trunc(short a, short b) {
    short p = a * b;
    return p;
}
""",
        "short_mul_trunc",
        [(300, 300), (-200, 180), (181, 181)],
    ),
    (
        """
void caesar(char *s, int k) {
    for (int i = 0; s[i] != 0; i++) {
        s[i] = (char)(s[i] + k);
    }
}
""",
        "caesar",
        [("abc", 3), ("xyz", 2), ("", 7)],
    ),
    (
        """
unsigned short ushort_hash(unsigned short h, int n) {
    for (int i = 0; i < n; i++) {
        h = h * 31 + 7;
    }
    return h;
}
""",
        "ushort_hash",
        [(0, 4), (65535, 3), (52, 8)],
    ),
    # -- scalar globals with nonzero initialisers: the backends must emit
    # -- real .data initialisers (zero-filled .comm would silently diverge).
    (
        """
int scale = 3;
long offset = -7;

long affine(int x) {
    return scale * x + offset;
}
""",
        "affine",
        [(0,), (10,), (-100,)],
    ),
    (
        """
unsigned char seed_byte = 200;

int bump_byte(int k) {
    seed_byte += k;
    return seed_byte;
}
""",
        "bump_byte",
        [(1,), (100,), (-5,)],
    ),
    # -- minimized fuzzer finds (python -m repro.testing.fuzz), kept as
    # -- regressions.  Each one diverged between the interpreter and the
    # -- compiled legs before the corresponding front-end fix.
    (
        # Shift results take the promoted LEFT operand's type: the outer <<
        # must wrap at 32 bits even though the count was an unsigned long.
        """
unsigned long shift_type(unsigned int p, unsigned long s) {
    return ((0 - p) >> s) << 1;
}
""",
        "shift_type",
        [(100, 0), (1, 1), (4294967295, 3)],
    ),
    (
        # ~(0 << v) is the int -1, so the % happens at signed 32 bits.
        """
unsigned int not_shift_mod(unsigned long v) {
    return ~(0 << v) % -2;
}
""",
        "not_shift_mod",
        [(0,), (3,)],
    ),
    (
        # A long global initialiser must not be truncated by the
        # interpreter's static typing of wide literals.
        """
long big_init = -2126999363038860482;

long read_big_init(int unused) {
    return big_init;
}
""",
        "read_big_init",
        [(0,)],
    ),
    (
        # The ternary converts both branches to the common type
        # (unsigned int here): c ? -2 : u is 4294967294.
        """
long pick_unsigned(int c) {
    unsigned int u = 7;
    return c ? -2 : u;
}
""",
        "pick_unsigned",
        [(1,), (0,)],
    ),
    (
        # The value of ++c/--c is the value stored back into c, wrapped to
        # char; at x = 127 the increment must yield -128, not 128.
        """
int prefix_char(int x) {
    char c = (char) x;
    int a = ++c;
    int b = --c;
    return a * 1000 + b * 10 + c;
}
""",
        "prefix_char",
        [(127,), (-128,), (0,)],
    ),
    (
        # Unary minus evaluates in the promoted operand type: -u on an
        # unsigned int is a 32-bit unsigned value, zero-extended to long.
        """
unsigned long neg_unsigned(unsigned int u) {
    return -u;
}
""",
        "neg_unsigned",
        [(1,), (0,), (4294967295,)],
    ),
    (
        # Local arrays must get full-size stack slots: with width-shrunk
        # scalar slots (PR 4), decaying the declared type here would hand
        # each array a pointer-sized slot and the element stores would
        # overrun into the neighbouring slot (code-review find).
        """
int local_array_slots(int n) {
    int a[4];
    long b[3];
    for (int i = 0; i < 4; i++) {
        a[i] = n + i;
    }
    for (int i = 0; i < 3; i++) {
        b[i] = 2 * i + a[i];
    }
    int s = 0;
    for (int i = 0; i < 4; i++) {
        s += a[i];
    }
    for (int i = 0; i < 3; i++) {
        s += (int) b[i];
    }
    return s;
}
""",
        "local_array_slots",
        [(10,), (0,), (-5,)],
    ),
]
