	.arch	armv8-a
	.file	"add2.c"
	.text
	.align	2
	.global	add2
	.type	add2, %function
add2:
	stp	x29, x30, [sp, #-16]!
	mov	x29, sp
	sub	sp, sp, #48
	str	w0, [sp, #8]
	str	w1, [sp, #12]
	mov	x9, sp
	str	x9, [sp, #16]
	ldrsw	x9, [sp, #8]
	ldr	x10, [sp, #16]
	str	w9, [x10]
	add	x9, sp, #4
	str	x9, [sp, #24]
	ldrsw	x9, [sp, #12]
	ldr	x10, [sp, #24]
	str	w9, [x10]
	ldr	x10, [sp, #16]
	ldrsw	x9, [x10]
	str	w9, [sp, #32]
	ldr	x10, [sp, #24]
	ldrsw	x9, [x10]
	str	w9, [sp, #36]
	ldrsw	x9, [sp, #32]
	ldrsw	x10, [sp, #36]
	add	w9, w9, w10
	sxtw	x9, w9
	str	w9, [sp, #40]
	ldrsw	x9, [sp, #40]
	mov	x10, #2
	add	w9, w9, w10
	sxtw	x9, w9
	str	w9, [sp, #44]
	ldrsw	x0, [sp, #44]
.Lret_add2:
	add	sp, sp, #48
	ldp	x29, x30, [sp], #16
	ret
	.size	add2, .-add2
	.section	.note.GNU-stack,"",%progbits
