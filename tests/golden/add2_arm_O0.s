	.arch	armv8-a
	.file	"add2.c"
	.text
	.align	2
	.global	add2
	.type	add2, %function
add2:
	stp	x29, x30, [sp, #-16]!
	mov	x29, sp
	sub	sp, sp, #64
	str	w0, [sp, #16]
	str	w1, [sp, #20]
	mov	x9, sp
	str	x9, [sp, #24]
	ldrsw	x9, [sp, #16]
	ldr	x10, [sp, #24]
	str	w9, [x10]
	add	x9, sp, #8
	str	x9, [sp, #32]
	ldrsw	x9, [sp, #20]
	ldr	x10, [sp, #32]
	str	w9, [x10]
	ldr	x10, [sp, #24]
	ldrsw	x9, [x10]
	str	w9, [sp, #40]
	ldr	x10, [sp, #32]
	ldrsw	x9, [x10]
	str	w9, [sp, #44]
	ldrsw	x9, [sp, #40]
	ldrsw	x10, [sp, #44]
	add	w9, w9, w10
	sxtw	x9, w9
	str	w9, [sp, #48]
	ldrsw	x9, [sp, #48]
	mov	x10, #2
	add	w9, w9, w10
	sxtw	x9, w9
	str	w9, [sp, #52]
	ldrsw	x0, [sp, #52]
.Lret_add2:
	add	sp, sp, #64
	ldp	x29, x30, [sp], #16
	ret
	.size	add2, .-add2
	.section	.note.GNU-stack,"",%progbits
