	.arch	armv8-a
	.file	"add2.c"
	.text
	.align	2
	.global	add2
	.type	add2, %function
add2:
	stp	x29, x30, [sp, #-16]!
	mov	x29, sp
	sub	sp, sp, #80
	str	x0, [sp, #16]
	str	x1, [sp, #24]
	mov	x9, sp
	str	x9, [sp, #32]
	ldr	x9, [sp, #16]
	ldr	x10, [sp, #32]
	str	w9, [x10]
	add	x9, sp, #8
	str	x9, [sp, #40]
	ldr	x9, [sp, #24]
	ldr	x10, [sp, #40]
	str	w9, [x10]
	ldr	x10, [sp, #32]
	ldrsw	x9, [x10]
	str	x9, [sp, #48]
	ldr	x10, [sp, #40]
	ldrsw	x9, [x10]
	str	x9, [sp, #56]
	ldr	x9, [sp, #48]
	ldr	x10, [sp, #56]
	add	x9, x9, x10
	str	x9, [sp, #64]
	ldr	x9, [sp, #64]
	mov	x10, #2
	add	x9, x9, x10
	str	x9, [sp, #72]
	ldr	x0, [sp, #72]
.Lret_add2:
	add	sp, sp, #80
	ldp	x29, x30, [sp], #16
	ret
	.size	add2, .-add2
	.section	.note.GNU-stack,"",%progbits
