	.arch	armv8-a
	.file	"add2.c"
	.text
	.align	2
	.global	add2
	.type	add2, %function
add2:
	stp	x29, x30, [sp, #-16]!
	mov	x29, sp
	sub	sp, sp, #32
	str	x19, [sp, #0]
	str	x20, [sp, #8]
	str	x21, [sp, #16]
	str	x22, [sp, #24]
	mov	x19, x0
	mov	x20, x1
	mov	x9, x19
	mov	x10, x20
	add	w9, w9, w10
	sxtw	x9, w9
	mov	x21, x9
	mov	x9, x21
	mov	x10, #2
	add	w9, w9, w10
	sxtw	x9, w9
	mov	x22, x9
	mov	x0, x22
.Lret_add2:
	ldr	x19, [sp, #0]
	ldr	x20, [sp, #8]
	ldr	x21, [sp, #16]
	ldr	x22, [sp, #24]
	add	sp, sp, #32
	ldp	x29, x30, [sp], #16
	ret
	.size	add2, .-add2
	.section	.note.GNU-stack,"",%progbits
