	.file	"add2.c"
	.text
	.globl	add2
	.type	add2, @function
add2:
	pushq	%rbp
	movq	%rsp, %rbp
	subq	$64, %rsp
	movl	%edi, -20(%rbp)
	movl	%esi, -24(%rbp)
	leaq	-8(%rbp), %r10
	movq	%r10, -32(%rbp)
	movslq	-20(%rbp), %r10
	movq	-32(%rbp), %r11
	movl	%r10d, (%r11)
	leaq	-16(%rbp), %r10
	movq	%r10, -40(%rbp)
	movslq	-24(%rbp), %r10
	movq	-40(%rbp), %r11
	movl	%r10d, (%r11)
	movq	-32(%rbp), %r11
	movslq	(%r11), %r10
	movl	%r10d, -44(%rbp)
	movq	-40(%rbp), %r11
	movslq	(%r11), %r10
	movl	%r10d, -48(%rbp)
	movslq	-44(%rbp), %r10
	movslq	-48(%rbp), %r11
	addl	%r11d, %r10d
	movslq	%r10d, %r10
	movl	%r10d, -52(%rbp)
	movslq	-52(%rbp), %r10
	movq	$2, %r11
	addl	%r11d, %r10d
	movslq	%r10d, %r10
	movl	%r10d, -56(%rbp)
	movslq	-56(%rbp), %rax
.Lret_add2:
	leave
	ret
	.size	add2, .-add2
	.section	.note.GNU-stack,"",@progbits
