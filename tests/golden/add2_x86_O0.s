	.file	"add2.c"
	.text
	.globl	add2
	.type	add2, @function
add2:
	pushq	%rbp
	movq	%rsp, %rbp
	subq	$80, %rsp
	movq	%rdi, -24(%rbp)
	movq	%rsi, -32(%rbp)
	leaq	-8(%rbp), %r10
	movq	%r10, -40(%rbp)
	movq	-24(%rbp), %r10
	movq	-40(%rbp), %r11
	movl	%r10d, (%r11)
	leaq	-16(%rbp), %r10
	movq	%r10, -48(%rbp)
	movq	-32(%rbp), %r10
	movq	-48(%rbp), %r11
	movl	%r10d, (%r11)
	movq	-40(%rbp), %r11
	movslq	(%r11), %r10
	movq	%r10, -56(%rbp)
	movq	-48(%rbp), %r11
	movslq	(%r11), %r10
	movq	%r10, -64(%rbp)
	movq	-56(%rbp), %r10
	movq	-64(%rbp), %r11
	addq	%r11, %r10
	movq	%r10, -72(%rbp)
	movq	-72(%rbp), %r10
	movq	$2, %r11
	addq	%r11, %r10
	movq	%r10, -80(%rbp)
	movq	-80(%rbp), %rax
.Lret_add2:
	leave
	ret
	.size	add2, .-add2
	.section	.note.GNU-stack,"",@progbits
