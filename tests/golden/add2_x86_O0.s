	.file	"add2.c"
	.text
	.globl	add2
	.type	add2, @function
add2:
	pushq	%rbp
	movq	%rsp, %rbp
	subq	$48, %rsp
	movl	%edi, -12(%rbp)
	movl	%esi, -16(%rbp)
	leaq	-4(%rbp), %r10
	movq	%r10, -24(%rbp)
	movslq	-12(%rbp), %r10
	movq	-24(%rbp), %r11
	movl	%r10d, (%r11)
	leaq	-8(%rbp), %r10
	movq	%r10, -32(%rbp)
	movslq	-16(%rbp), %r10
	movq	-32(%rbp), %r11
	movl	%r10d, (%r11)
	movq	-24(%rbp), %r11
	movslq	(%r11), %r10
	movl	%r10d, -36(%rbp)
	movq	-32(%rbp), %r11
	movslq	(%r11), %r10
	movl	%r10d, -40(%rbp)
	movslq	-36(%rbp), %r10
	movslq	-40(%rbp), %r11
	addl	%r11d, %r10d
	movslq	%r10d, %r10
	movl	%r10d, -44(%rbp)
	movslq	-44(%rbp), %r10
	movq	$2, %r11
	addl	%r11d, %r10d
	movslq	%r10d, %r10
	movl	%r10d, -48(%rbp)
	movslq	-48(%rbp), %rax
.Lret_add2:
	leave
	ret
	.size	add2, .-add2
	.section	.note.GNU-stack,"",@progbits
