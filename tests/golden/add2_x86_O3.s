	.file	"add2.c"
	.text
	.globl	add2
	.type	add2, @function
add2:
	pushq	%rbp
	movq	%rsp, %rbp
	subq	$32, %rsp
	movq	%rbx, -8(%rbp)
	movq	%r12, -16(%rbp)
	movq	%r13, -24(%rbp)
	movq	%r14, -32(%rbp)
	movq	%rdi, %rbx
	movq	%rsi, %r12
	movq	%rbx, %r10
	movq	%r12, %r11
	addl	%r11d, %r10d
	movslq	%r10d, %r10
	movq	%r10, %r13
	movq	%r13, %r10
	movq	$2, %r11
	addl	%r11d, %r10d
	movslq	%r10d, %r10
	movq	%r10, %r14
	movq	%r14, %rax
.Lret_add2:
	movq	-8(%rbp), %rbx
	movq	-16(%rbp), %r12
	movq	-24(%rbp), %r13
	movq	-32(%rbp), %r14
	leave
	ret
	.size	add2, .-add2
	.section	.note.GNU-stack,"",@progbits
