"""Unit tests for the -O3 optimisation passes fixed in this PR."""

from repro.compiler import ir
from repro.compiler.opt import (
    _fold_int,
    dead_code_elimination,
    fold_constants_expr,
    optimize_ir,
    remove_redundant_jumps,
)
from repro.lang import ast_nodes as ast
from repro.lang.interpreter import Interpreter
from repro.lang.parser import parse_program


# -- width-aware constant folding -------------------------------------------


def test_fold_int_masks_shift_count_by_width():
    # 32-bit ints mask the count with & 31 (1 << 33 == 1 << 1), 64-bit with & 63.
    assert _fold_int("<<", 1, 33, bits=32) == 2
    assert _fold_int("<<", 1, 33, bits=64) == 1 << 33


def test_fold_int_truncates_to_width():
    assert _fold_int("+", 2000000000, 2000000000, bits=32) == -294967296
    assert _fold_int("*", 1 << 20, 1 << 20, bits=32) == 0
    assert _fold_int("+", 2000000000, 2000000000, bits=64) == 4000000000
    # Unsigned stays non-negative.
    assert _fold_int("-", 0, 1, bits=32, unsigned=True) == 0xFFFFFFFF


def test_fold_int_unsigned_operand_domain():
    # Negative-represented constants are converted into the unsigned domain
    # BEFORE the operation: -1 >> 1 as uint64 is a logical shift of 2**64-1.
    assert _fold_int(">>", -1, 1, bits=64, unsigned=True) == (1 << 63) - 1
    assert _fold_int("/", -1, 2, bits=64, unsigned=True) == (1 << 63) - 1
    assert _fold_int("%", -1, 10, bits=32, unsigned=True) == 0xFFFFFFFF % 10
    # Signed semantics are untouched.
    assert _fold_int(">>", -8, 1, bits=32) == -4
    assert _fold_int("/", -7, 2, bits=32) == -3


def test_fold_matches_interpreter():
    """The folded literal must equal what the interpreter computes."""
    cases = ["1 << 33", "2000000000 + 2000000000", "-17 / 5", "-17 % 5", "7 >> 1"]
    for expr_text in cases:
        program = parse_program(f"long f(void) {{ return {expr_text}; }}")
        expected = Interpreter(program).run_function("f", []).return_value

        folded_program = parse_program(f"long f(void) {{ return {expr_text}; }}")
        body = folded_program.function("f").body
        ret = body.stmts[0]
        ret.value = fold_constants_expr(ret.value)
        assert isinstance(ret.value, ast.IntLiteral), f"{expr_text} did not fold"
        folded = Interpreter(folded_program).run_function("f", []).return_value
        assert folded == expected, (
            f"{expr_text}: folded {folded} != interpreted {expected}"
        )


def test_fold_shift_example_from_issue():
    program = parse_program("int f(void) { return 1 << 33; }")
    ret = program.function("f").body.stmts[0]
    folded = fold_constants_expr(ret.value)
    assert isinstance(folded, ast.IntLiteral)
    assert folded.value == 2  # int-width shift: 1 << (33 & 31)


# -- jump threading ----------------------------------------------------------


def _func_with(instrs):
    func = ir.IRFunction("f")
    func.instrs = instrs
    return func


def test_remove_jump_to_immediate_label():
    func = _func_with([ir.IRJump(".L1"), ir.IRLabel(".L1"), ir.IRRet(None)])
    remove_redundant_jumps(func)
    assert not any(isinstance(i, ir.IRJump) for i in func.instrs)


def test_remove_jump_skips_intervening_labels():
    # jmp L1; L0:; L1: — the jump is redundant even though L0 sits in between.
    func = _func_with(
        [ir.IRJump(".L1"), ir.IRLabel(".L0"), ir.IRLabel(".L1"), ir.IRRet(None)]
    )
    remove_redundant_jumps(func)
    assert not any(isinstance(i, ir.IRJump) for i in func.instrs)


def test_backward_jump_is_kept():
    func = _func_with([ir.IRLabel(".L0"), ir.IRJump(".L0")])
    remove_redundant_jumps(func)
    assert any(isinstance(i, ir.IRJump) for i in func.instrs)


def test_dce_drops_unreferenced_labels():
    func = _func_with(
        [ir.IRJump(".L1"), ir.IRLabel(".L0"), ir.IRLabel(".L1"), ir.IRRet(None)]
    )
    remove_redundant_jumps(func)
    dead_code_elimination(func)
    assert not any(isinstance(i, ir.IRLabel) for i in func.instrs)


def test_optimize_ir_cleans_jump_chains():
    v = ir.VReg(0)
    func = _func_with(
        [
            ir.IRConst(v, 1),
            ir.IRJump(".L1"),
            ir.IRLabel(".L0"),
            ir.IRLabel(".L1"),
            ir.IRRet(v),
        ]
    )
    optimize_ir(func)
    assert not any(isinstance(i, (ir.IRJump, ir.IRLabel)) for i in func.instrs)
    assert isinstance(func.instrs[-1], ir.IRRet)
